//! **spider-repro** — a reproduction of *Spider: Improving Mobile
//! Networking with Concurrent Wi-Fi Connections* (2011).
//!
//! This facade crate re-exports the workspace so downstream users (and
//! the examples/integration tests) have a single dependency:
//!
//! * [`core`] — the Spider system itself (channel scheduling, AP
//!   selection, link management over concurrent connections),
//! * [`model`] — the paper's analytical join model and throughput
//!   optimiser,
//! * [`baselines`] — stock, Cabernet-style and FatVAP-style drivers,
//! * [`workloads`] — the vehicular Wi-Fi world and scenario builders,
//! * the substrates: [`simcore`], [`wire`], [`radio`], [`mobility`],
//!   [`mac80211`], [`netstack`], [`tcpsim`].
//!
//! Start with `examples/quickstart.rs`.

#![forbid(unsafe_code)]

pub use spider_baselines as baselines;
pub use spider_core as core;
pub use spider_mac80211 as mac80211;
pub use spider_mobility as mobility;
pub use spider_model as model;
pub use spider_netstack as netstack;
pub use spider_radio as radio;
pub use spider_simcore as simcore;
pub use spider_tcpsim as tcpsim;
pub use spider_wire as wire;
pub use spider_workloads as workloads;
