//! The chaos-campaign engine's end-to-end contract, on real worlds:
//! a deliberately tightened SLO table must turn seeded chaos schedules
//! into minimized reproducers that (a) are strictly smaller than the
//! schedule they came from, (b) still violate when replayed, and
//! (c) come out byte-identical whether the campaign's sweep runs on
//! one worker or four.

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::Channel;
use spider_repro::workloads::campaign::{
    run_campaign, CampaignConfig, ChaosProfile, MinimizedRepro, SloMetric, SloRule, SloTable,
};
use spider_repro::workloads::scenarios::lab_scenario;
use spider_repro::workloads::{FaultPlan, RunResult, World};

/// A cheap, fault-sensitive world: two same-channel APs, 40 s session.
fn run_lab(plan: &FaultPlan) -> RunResult {
    let mut cfg = lab_scenario(
        &[Channel::CH1, Channel::CH1],
        400_000.0,
        SimDuration::from_secs(40),
        4,
    );
    cfg.faults = plan.clone();
    World::new(
        cfg,
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        )),
    )
    .run()
}

/// Unmeetable on purpose: any detected fault at all is a violation, so
/// seeded chaos schedules reliably fail and exercise the shrinker.
fn tight_table() -> SloTable {
    SloTable {
        rules: vec![
            SloRule {
                metric: SloMetric::MaxDetectS("blackout"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("zombie"),
                budget: 0.0,
            },
        ],
    }
}

fn campaign_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        trials: 4,
        seed: 11,
        num_aps: 2,
        duration: SimDuration::from_secs(40),
        profile: ChaosProfile::standard(),
        slo: tight_table(),
        shrink_budget: 80,
        max_shrinks: 2,
        workers,
        watchdog_ms: None,
    }
}

#[test]
fn tightened_slo_yields_minimized_reproducers_that_replay() {
    let report = run_campaign(&campaign_config(1), run_lab);

    assert!(
        report.violating_trials() > 0,
        "a zero-second detect budget must be violated by chaos schedules"
    );
    assert!(
        !report.minimized.is_empty(),
        "violating trials should have been shrunk"
    );
    for m in &report.minimized {
        // (a) Strictly smaller: the generator never emits single-episode
        // schedules (ChaosProfile::standard() floors at 3), so a working
        // shrinker always removes something.
        assert!(
            m.plan.episodes.len() < m.original_episodes,
            "trial {}: shrinker removed nothing ({} episodes before and after)",
            m.trial,
            m.original_episodes
        );
        assert!(m.evals > 0, "shrinker claims to have run no evaluations");

        // (b) The minimized schedule still violates on replay.
        let replayed = run_lab(&m.plan);
        let violations = tight_table().evaluate(&replayed);
        assert!(
            !violations.is_empty(),
            "trial {}: minimized schedule no longer violates on replay",
            m.trial
        );

        // (c) The serialized artifact round-trips and replays the same.
        let doc = m.to_json();
        let parsed = MinimizedRepro::from_json(&doc).expect("artifact round-trip");
        assert_eq!(parsed.plan.episodes.len(), m.plan.episodes.len());
        let replayed_again = run_lab(&parsed.plan);
        assert_eq!(replayed.bytes, replayed_again.bytes);
        assert_eq!(
            replayed.connectivity.to_bits(),
            replayed_again.connectivity.to_bits()
        );
        assert_eq!(replayed.faults, replayed_again.faults);
    }
}

#[test]
fn campaign_reports_are_byte_identical_across_worker_counts() {
    // The whole report — trial outcomes, measured SLO values, minimized
    // plans, shrink eval counts — rendered to canonical JSON, must not
    // depend on how the sweep was scheduled.
    let serial = run_campaign(&campaign_config(1), run_lab);
    let parallel = run_campaign(&campaign_config(4), run_lab);
    assert_eq!(
        serial.to_json().pretty(),
        parallel.to_json().pretty(),
        "campaign output depends on worker count"
    );
    assert_eq!(serial.minimized.len(), parallel.minimized.len());
    for (s, p) in serial.minimized.iter().zip(&parallel.minimized) {
        assert_eq!(s.to_json().pretty(), p.to_json().pretty());
    }
}
