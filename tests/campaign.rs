//! The chaos-campaign engine's end-to-end contract, on real worlds:
//! a deliberately tightened SLO table must turn seeded chaos schedules
//! into minimized reproducers that (a) are strictly smaller than the
//! schedule they came from, (b) still violate when replayed, and
//! (c) come out byte-identical whether the campaign's sweep runs on
//! one worker or four.

use spider_repro::baselines::{StockConfig, StockDriver};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{SimDuration, SimTime};
use spider_repro::wire::Channel;
use spider_repro::workloads::campaign::{
    run_campaign, run_campaign_forked, run_matrix_cell, shrink_schedule, CampaignConfig,
    ChaosProfile, CheckpointCache, MatrixReport, MinimizedRepro, SloMargins, SloMetric, SloRule,
    SloTable,
};
use spider_repro::workloads::scenarios::lab_scenario;
use spider_repro::workloads::{FaultEpisode, FaultKind, FaultPlan, RunResult, World};

/// A cheap, fault-sensitive world: two same-channel APs, 40 s session.
fn make_lab(plan: &FaultPlan) -> World<SpiderDriver> {
    let mut cfg = lab_scenario(
        &[Channel::CH1, Channel::CH1],
        400_000.0,
        SimDuration::from_secs(40),
        4,
    );
    cfg.faults = plan.clone();
    World::new(
        cfg,
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        )),
    )
}

fn run_lab(plan: &FaultPlan) -> RunResult {
    make_lab(plan).run()
}

/// Unmeetable on purpose: any detected fault at all is a violation, so
/// seeded chaos schedules reliably fail and exercise the shrinker.
fn tight_table() -> SloTable {
    SloTable {
        rules: vec![
            SloRule {
                metric: SloMetric::MaxDetectS("blackout"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("zombie"),
                budget: 0.0,
            },
        ],
    }
}

fn campaign_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        trials: 4,
        seed: 11,
        num_aps: 2,
        duration: SimDuration::from_secs(40),
        profile: ChaosProfile::standard(),
        slo: tight_table(),
        shrink_budget: 80,
        max_shrinks: 2,
        workers,
        watchdog_ms: None,
    }
}

#[test]
fn tightened_slo_yields_minimized_reproducers_that_replay() {
    let report = run_campaign(&campaign_config(1), run_lab);

    assert!(
        report.violating_trials() > 0,
        "a zero-second detect budget must be violated by chaos schedules"
    );
    assert!(
        !report.minimized.is_empty(),
        "violating trials should have been shrunk"
    );
    for m in &report.minimized {
        // (a) Strictly smaller: the generator never emits single-episode
        // schedules (ChaosProfile::standard() floors at 3), so a working
        // shrinker always removes something.
        assert!(
            m.plan.episodes.len() < m.original_episodes,
            "trial {}: shrinker removed nothing ({} episodes before and after)",
            m.trial,
            m.original_episodes
        );
        assert!(m.evals > 0, "shrinker claims to have run no evaluations");

        // (b) The minimized schedule still violates on replay.
        let replayed = run_lab(&m.plan);
        let violations = tight_table().evaluate(&replayed);
        assert!(
            !violations.is_empty(),
            "trial {}: minimized schedule no longer violates on replay",
            m.trial
        );

        // (c) The serialized artifact round-trips and replays the same.
        let doc = m.to_json();
        let parsed = MinimizedRepro::from_json(&doc).expect("artifact round-trip");
        assert_eq!(parsed.plan.episodes.len(), m.plan.episodes.len());
        let replayed_again = run_lab(&parsed.plan);
        assert_eq!(replayed.bytes, replayed_again.bytes);
        assert_eq!(
            replayed.connectivity.to_bits(),
            replayed_again.connectivity.to_bits()
        );
        assert_eq!(replayed.faults, replayed_again.faults);
    }
}

#[test]
fn campaign_reports_are_byte_identical_across_worker_counts() {
    // The whole report — trial outcomes, measured SLO values, minimized
    // plans, shrink eval counts — rendered to canonical JSON, must not
    // depend on how the sweep was scheduled.
    let serial = run_campaign(&campaign_config(1), run_lab);
    let parallel = run_campaign(&campaign_config(4), run_lab);
    assert_eq!(
        serial.to_json().pretty(),
        parallel.to_json().pretty(),
        "campaign output depends on worker count"
    );
    assert_eq!(serial.minimized.len(), parallel.minimized.len());
    for (s, p) in serial.minimized.iter().zip(&parallel.minimized) {
        assert_eq!(s.to_json().pretty(), p.to_json().pretty());
    }
}

#[test]
fn forked_campaign_report_matches_cold_byte_for_byte() {
    // The checkpoint/fork engine is a pure optimization: its report —
    // every outcome, measured SLO value, minimized plan, eval count —
    // must render to exactly the cold path's JSON, at any worker count.
    let cold = run_campaign(&campaign_config(1), run_lab);
    for workers in [1, 4] {
        let (forked, stats) = run_campaign_forked(&campaign_config(workers), make_lab);
        assert_eq!(
            forked.to_json().pretty(),
            cold.to_json().pretty(),
            "forked campaign report diverged from the cold run at {workers} workers"
        );
        assert!(stats.forks > 0, "no run was forked from a checkpoint");
        assert!(stats.checkpoints > 0, "no checkpoint was materialized");
        assert!(
            stats.events_simulated < stats.events_cold,
            "forking saved nothing: simulated {} of {} cold events",
            stats.events_simulated,
            stats.events_cold
        );
        assert!(
            stats.shrink_events_simulated < stats.shrink_events_cold,
            "shrink phase shared no prefixes"
        );
    }
}

#[test]
fn shrinking_never_emits_zero_length_episodes() {
    // Window narrowing halves episodes from both ends; under maximal
    // pressure (a check that accepts every candidate) it must bottom
    // out at the minimum window, never at start == end — a zero-length
    // episode would be silently dropped by plan normalization and the
    // "minimized" artifact would stop reproducing.
    let ep = |kind: FaultKind, start: f64, end: f64| FaultEpisode {
        ap: Some(0),
        kind,
        start: SimTime::ZERO + SimDuration::from_secs_f64(start),
        end: SimTime::ZERO + SimDuration::from_secs_f64(end),
    };
    let plan = FaultPlan::scripted(vec![
        ep(FaultKind::ArpPoison, 5.0, 30.0),
        ep(FaultKind::CaptivePortal, 8.0, 20.0),
        ep(FaultKind::AsymmetricLoss { up: 0.9, down: 0.1 }, 10.0, 26.0),
        ep(FaultKind::Blackout, 12.0, 33.0),
    ]);
    let outcome = shrink_schedule(&plan, 400, |_| true);
    assert_eq!(
        outcome.plan.episodes.len(),
        1,
        "an always-failing check should shrink to a single episode"
    );
    for e in &outcome.plan.episodes {
        assert!(
            e.start < e.end,
            "shrinker produced a zero-length episode at {:?}",
            e.start
        );
    }
    // Round-tripping through normalization keeps every episode: none
    // were degenerate, so none get dropped.
    let renormalized = FaultPlan::scripted(outcome.plan.episodes.clone());
    assert_eq!(renormalized.episodes.len(), outcome.plan.episodes.len());
}

#[test]
fn matrix_cells_are_byte_identical_across_workers_and_forking() {
    // The matrix runner layers envelope calibration and per-cell SLO
    // tables on top of the campaign sweep; none of that may introduce
    // scheduling sensitivity. A two-cell lab matrix (Spider + stock on
    // the same channel) must render to identical JSON at 1 vs 4
    // workers, forked vs cold.
    let make_spider = |plan: &FaultPlan| make_lab(plan);
    let make_stock = |plan: &FaultPlan| {
        let mut cfg = lab_scenario(
            &[Channel::CH1, Channel::CH1],
            400_000.0,
            SimDuration::from_secs(40),
            4,
        );
        cfg.faults = plan.clone();
        let mut sc = StockConfig::quickwifi(1);
        sc.scan_channels = vec![Channel::CH1];
        World::new(cfg, StockDriver::new(sc))
    };
    let margins = SloMargins::spider_paper();
    let stock_margins = SloMargins::stock_monitor();

    let matrix = |workers: usize, forked: bool| {
        let mut cfg = campaign_config(workers);
        cfg.profile = ChaosProfile::adversarial();
        let (spider_cell, _) = run_matrix_cell(
            "single-channel-multi-ap",
            "spider",
            &cfg,
            &margins,
            forked,
            make_spider,
        );
        let (stock_cell, _) = run_matrix_cell(
            "single-channel-multi-ap",
            "stock",
            &cfg,
            &stock_margins,
            forked,
            make_stock,
        );
        MatrixReport {
            seed: cfg.seed,
            cells: vec![spider_cell, stock_cell],
        }
        .to_json()
        .pretty()
    };

    let reference = matrix(1, false);
    for (workers, forked) in [(4, false), (1, true), (4, true)] {
        assert_eq!(
            matrix(workers, forked),
            reference,
            "matrix report diverged at {workers} workers, forked={forked}"
        );
    }
}

#[test]
fn checkpoint_cache_runs_are_bit_identical_to_cold() {
    // The shrinker's exact access pattern, by hand: evaluate ddmin-style
    // candidates against a reference, adopt one, evaluate more. Every
    // result must equal the candidate's cold run bit for bit. Episode
    // starts are fixed mid-run so the divergence boundaries land past
    // t=0 and the fork paths actually engage.
    let ep = |ap: Option<usize>, kind: FaultKind, start: f64, end: f64| FaultEpisode {
        ap,
        kind,
        start: SimTime::ZERO + SimDuration::from_secs_f64(start),
        end: SimTime::ZERO + SimDuration::from_secs_f64(end),
    };
    let plan = FaultPlan::scripted(vec![
        ep(Some(0), FaultKind::Blackout, 8.0, 20.0),
        ep(Some(1), FaultKind::Zombie, 12.0, 26.0),
        ep(None, FaultKind::LossBurst { extra: 0.4 }, 18.0, 30.0),
        ep(Some(0), FaultKind::DhcpSilence, 22.0, 34.0),
    ]);
    let mut cache = CheckpointCache::new(make_lab, plan.clone());

    let back_half = FaultPlan::scripted(plan.episodes[plan.episodes.len() / 2..].to_vec());
    let mut trimmed = plan.clone();
    trimmed.episodes[0].end = SimTime::from_micros(
        (trimmed.episodes[0].start.as_micros() + trimmed.episodes[0].end.as_micros()) / 2,
    );
    for (i, candidate) in [&plan, &back_half, &trimmed].into_iter().enumerate() {
        assert_eq!(
            cache.run_plan(candidate),
            run_lab(candidate),
            "cached run of candidate {i} diverged from cold"
        );
    }

    // Adopt a candidate (the shrinker does this after every successful
    // check) and keep evaluating against the new reference.
    cache.adopt(back_half.clone());
    let rump = FaultPlan::scripted(vec![*back_half.episodes.last().unwrap()]);
    for candidate in [&back_half, &rump] {
        assert_eq!(
            cache.run_plan(candidate),
            run_lab(candidate),
            "cached run diverged from cold after adopt"
        );
    }
    assert!(cache.stats.forks > 0);
    assert!(cache.stats.events_simulated < cache.stats.events_cold);
}
