//! Cross-crate integration: every driver through the full world.

use spider_repro::baselines::{FatVapConfig, FatVapDriver, StockConfig, StockDriver};
use spider_repro::core::adaptive::{AdaptivePolicy, AdaptiveSpider};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{lab_scenario, town_scenario, RouteKind, ScenarioParams};
use spider_repro::workloads::World;

fn short_town(seed: u64) -> ScenarioParams {
    ScenarioParams {
        duration: SimDuration::from_secs(300),
        seed,
        ..Default::default()
    }
}

#[test]
fn all_four_spider_modes_complete_joins_on_a_town_drive() {
    let period = SimDuration::from_millis(600);
    let modes = [
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        OperationMode::SingleChannelSingleAp(Channel::CH1),
        OperationMode::MultiChannelMultiAp { period },
        OperationMode::MultiChannelSingleAp { period },
    ];
    for mode in modes {
        let world = town_scenario(&short_town(5));
        let result = World::new(
            world,
            SpiderDriver::new(SpiderConfig::for_mode(mode.clone(), 1)),
        )
        .run();
        assert!(
            !result.join_log.join.is_empty(),
            "{:?} completed no joins: {result}",
            mode
        );
        assert!(result.bytes > 0, "{:?} moved no data: {result}", mode);
    }
}

#[test]
fn baselines_complete_joins_too() {
    let world = town_scenario(&short_town(6));
    let stock = World::new(world, StockDriver::new(StockConfig::stock(1))).run();
    assert!(!stock.join_log.join.is_empty(), "{stock}");

    let world = town_scenario(&short_town(6));
    let quick = World::new(world, StockDriver::new(StockConfig::quickwifi(1))).run();
    assert!(!quick.join_log.join.is_empty(), "{quick}");
    assert!(
        quick.join_log.join_cdf().median() <= stock.join_log.join_cdf().median() + 1.0,
        "QuickWiFi joins should not be slower than stock"
    );

    let world = town_scenario(&short_town(6));
    let fatvap = World::new(world, FatVapDriver::new(FatVapConfig::default())).run();
    assert!(!fatvap.join_log.assoc.is_empty(), "{fatvap}");
}

#[test]
fn adaptive_driver_runs_and_switches_modes() {
    let mut params = short_town(8);
    params.speed_mps = 3.0; // slow: exploration expected
    let world = town_scenario(&params);
    let inner = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        1,
    ));
    let mut adaptive = AdaptiveSpider::new(inner, AdaptivePolicy::default());
    adaptive.set_speed_hint(3.0);
    let result = World::new(world, adaptive).run();
    assert!(result.switches > 0, "slow adaptive should rotate: {result}");
    assert!(!result.join_log.join.is_empty(), "{result}");
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let run = || {
        let world = town_scenario(&short_town(11));
        World::new(
            world,
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::MultiChannelMultiAp {
                    period: SimDuration::from_millis(600),
                },
                1,
            )),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.join_log.join.len(), b.join_log.join.len());
    assert_eq!(a.tcp_timeouts, b.tcp_timeouts);
    // And a different seed genuinely differs.
    let world = town_scenario(&short_town(12));
    let c = World::new(
        world,
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
            1,
        )),
    )
    .run();
    assert_ne!(a.bytes, c.bytes);
}

#[test]
fn straight_road_first_visit_has_no_cache_hits() {
    let mut params = short_town(13);
    params.route = RouteKind::Straight;
    let world = town_scenario(&params);
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        1,
    ));
    let (result, driver) = World::new(world, driver).run_with();
    assert!(!result.join_log.join.is_empty());
    assert_eq!(
        driver.lease_cache().hits,
        0,
        "every AP is new on a straight road"
    );
}

#[test]
fn loop_route_reuses_cached_leases() {
    let mut params = short_town(13);
    params.duration = SimDuration::from_secs(1_200); // > 2 laps
    let world = town_scenario(&params);
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        1,
    ));
    let (_, driver) = World::new(world, driver).run_with();
    assert!(
        driver.lease_cache().hits > 0,
        "later laps must hit the DHCP cache"
    );
}

#[test]
fn dead_dhcp_aps_never_grant_leases() {
    let mut params = short_town(14);
    params.dead_dhcp_fraction = 1.0; // every AP broken
    let world = town_scenario(&params);
    let result = World::new(
        world,
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        )),
    )
    .run();
    assert_eq!(result.join_log.dhcp.len(), 0, "{result}");
    assert!(result.join_log.dhcp_failures > 0, "{result}");
    assert_eq!(result.bytes, 0);
}

#[test]
fn lab_two_aps_aggregate_like_two_radios() {
    // Fig. 10's micro-benchmark claim as a regression test.
    let backhaul = 125_000.0;
    let run = |channels: &[Channel]| {
        World::new(
            lab_scenario(channels, backhaul, SimDuration::from_secs(30), 2),
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH1),
                1,
            )),
        )
        .run()
    };
    let one = run(&[Channel::CH1]);
    let two = run(&[Channel::CH1, Channel::CH1]);
    assert!(
        two.avg_throughput_bps > 1.6 * one.avg_throughput_bps,
        "one AP: {one}; two APs: {two}"
    );
}
