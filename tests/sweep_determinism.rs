//! The sweep runner's determinism contract, measured on real worlds:
//! a mixed batch of simulation jobs must produce byte-identical results
//! whether it runs serially or across a worker pool.
//!
//! Every `World` run is a pure function of its config and seed — no
//! wall clock, no shared mutable state, no global RNG — so the sweep
//! can hand jobs to threads in any order and still merge results into
//! job-index order. These tests pin that property: `sweep_with(.., 1)`
//! (the exact serial path, also taken under `SPIDER_JOBS=1`) against
//! `sweep_with(.., 4)` on heterogeneous scenarios.

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{sweep_with, try_sweep_with, SimDuration, SweepOptions};
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{lab_scenario, town_scenario, ScenarioParams};
use spider_repro::workloads::{RunResult, World, WorldConfig};

/// One sweep job: a world plus the Spider mode to drive it with.
#[derive(Clone)]
struct Job {
    world: WorldConfig,
    mode: OperationMode,
}

/// A deliberately heterogeneous batch: town drives in three operation
/// modes and seeds (different run lengths, so jobs finish out of
/// order), plus indoor lab worlds on one and two channels.
fn mixed_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for (seed, secs, mode) in [
        (1, 120, OperationMode::SingleChannelMultiAp(Channel::CH1)),
        (2, 90, OperationMode::SingleChannelSingleAp(Channel::CH6)),
        (
            3,
            150,
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
        ),
    ] {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        };
        jobs.push(Job {
            world: town_scenario(&params),
            mode,
        });
    }
    jobs.push(Job {
        world: lab_scenario(&[Channel::CH1], 400_000.0, SimDuration::from_secs(60), 4),
        mode: OperationMode::SingleChannelMultiAp(Channel::CH1),
    });
    jobs.push(Job {
        world: lab_scenario(
            &[Channel::CH1, Channel::CH6],
            400_000.0,
            SimDuration::from_secs(60),
            5,
        ),
        mode: OperationMode::MultiChannelMultiAp {
            period: SimDuration::from_millis(600),
        },
    });
    jobs
}

fn run_job(job: &Job) -> RunResult {
    let driver = SpiderDriver::new(SpiderConfig::for_mode(job.mode.clone(), 1));
    World::new(job.world.clone(), driver).run()
}

/// Everything observable about a run, with floats compared bit-exactly.
/// If the parallel leg diverges anywhere — event count, payload bytes,
/// join timing, TCP behaviour — this fingerprint catches it.
fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64, u64, usize, u64) {
    (
        r.events,
        r.bytes,
        r.avg_throughput_bps.to_bits(),
        r.connectivity.to_bits(),
        r.switches,
        r.tcp_timeouts,
        r.join_log.join.len(),
        r.tcp_retransmits,
    )
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_on_mixed_scenarios() {
    let jobs = mixed_jobs();
    let serial = sweep_with(&jobs, run_job, 1);
    let parallel = sweep_with(&jobs, run_job, 4);
    assert_eq!(serial.len(), jobs.len());
    assert_eq!(parallel.len(), jobs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            fingerprint(s),
            fingerprint(p),
            "job {i}: parallel run diverged from serial"
        );
    }
}

#[test]
fn panicking_job_degrades_identically_at_one_and_four_workers() {
    // One poisoned job in a batch of real simulations: the sweep must
    // quarantine it as a structured failure, return every other result
    // intact, and produce the same degraded report whether it runs on
    // the serial reference leg or a 4-worker pool.
    let jobs = mixed_jobs();
    let poison = 2usize;
    let run = |i_job: &(usize, Job)| {
        let (i, job) = i_job;
        if *i == poison {
            panic!("injected failure for job {i}");
        }
        run_job(job)
    };
    let fp = |i_job: &(usize, Job)| format!("job={}", i_job.0);
    let indexed: Vec<(usize, Job)> = jobs.into_iter().enumerate().collect();

    let opts = |workers| SweepOptions {
        workers,
        watchdog: None,
    };
    let serial = try_sweep_with(&indexed, run, fp, opts(1));
    let parallel = try_sweep_with(&indexed, run, fp, opts(4));

    for report in [&serial, &parallel] {
        assert!(!report.is_complete());
        assert_eq!(report.results.len(), indexed.len());
        assert_eq!(report.successes().count(), indexed.len() - 1);
        assert!(report.results[poison].is_none());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, poison);
        assert!(
            report.failures[0].message.contains("injected failure"),
            "panic payload lost: {:?}",
            report.failures[0].message
        );
        assert_eq!(report.failures[0].fingerprint, format!("job={poison}"));
        assert!(report.hung.is_empty());
    }
    // The surviving results are bit-identical across the two legs.
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        match (s, p) {
            (Some(s), Some(p)) => assert_eq!(
                fingerprint(s),
                fingerprint(p),
                "job {i}: degraded parallel run diverged from serial"
            ),
            (None, None) => assert_eq!(i, poison),
            _ => panic!("job {i}: legs disagree about which job failed"),
        }
    }
}

#[test]
fn repeated_parallel_sweeps_agree_with_each_other() {
    // Scheduling order varies run to run; results must not.
    let jobs = mixed_jobs()[..3].to_vec();
    let first = sweep_with(&jobs, run_job, 4);
    let second = sweep_with(&jobs, run_job, 4);
    for (s, p) in first.iter().zip(&second) {
        assert_eq!(fingerprint(s), fingerprint(p));
    }
}
