//! Chaos tests: fault storms against the recovery machinery.
//!
//! These drive full worlds through scripted and seeded
//! [`FaultPlan`]s and check the robustness properties end to end:
//! dead links are detected within the ping monitor's budget, the
//! blacklist keeps the driver from looping on a dead AP, a zombie AP
//! does not take down the whole client while a healthy neighbour
//! exists, and faulty runs stay deterministic per seed.

use spider_repro::baselines::{FatVapConfig, FatVapDriver, StockConfig, StockDriver};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{SimDuration, SimTime};
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{lab_scenario, town_scenario, ScenarioParams};
use spider_repro::workloads::{FaultEpisode, FaultKind, FaultPlan, FaultProfile, World};

fn spider(mode: OperationMode) -> SpiderDriver {
    SpiderDriver::new(SpiderConfig::for_mode(mode, 1))
}

/// The §3.2.2 detection budget: 30 consecutive losses at 10 pings/s.
const DETECT_BUDGET_S: f64 = 3.0;

#[test]
fn scripted_blackout_is_detected_within_budget() {
    // One AP, static client: connect, then cut the power mid-session.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(30), 2);
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::Blackout,
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(25),
    }]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.faults.frames_dropped_blackout > 0,
        "the blackout never bit: {result}"
    );
    assert!(
        !result.faults.detect_times_s.is_empty(),
        "blackout was never detected (no deauth observed): {result}"
    );
    for &d in &result.faults.detect_times_s {
        assert!(
            d <= DETECT_BUDGET_S + 0.05,
            "detection took {d:.3}s, over the {DETECT_BUDGET_S}s budget"
        );
    }
}

#[test]
fn zombie_ap_is_detected_by_the_ping_monitor() {
    // A zombie keeps beaconing and answering DHCP but forwards nothing;
    // only end-to-end probing can see it (§3.2.2).
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(30), 5);
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::Zombie,
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(30),
    }]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.faults.packets_dropped_zombie > 0,
        "the zombie never swallowed anything: {result}"
    );
    assert!(
        !result.faults.detect_times_s.is_empty(),
        "zombie was never detected: {result}"
    );
    for &d in &result.faults.detect_times_s {
        assert!(d <= DETECT_BUDGET_S + 0.05, "zombie detection took {d:.3}s");
    }
}

#[test]
fn blacklist_prevents_join_looping_on_a_dead_ap() {
    // One AP that goes zombie at t=10s and stays dead: it keeps
    // beaconing and associating, so without the blacklist the driver
    // would cycle join -> verify -> 3s of ping losses -> fail roughly
    // every 3.6 s for the remaining 50 s (~13 failures). Exponential
    // backoff must space the retries out instead.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(60), 2);
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::Zombie,
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(60),
    }]);
    let (result, driver) = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run_with();
    assert!(
        !driver.blacklist().is_empty(),
        "the dead AP should be blacklisted"
    );
    assert!(
        result.join_log.join_failures <= 8,
        "{} failed joins in 50 s of zombie — the blacklist is not \
         spacing retries: {result}",
        result.join_log.join_failures
    );
    // It did keep retrying (backoff, not a permanent ban).
    assert!(
        result.join_log.join_failures >= 2,
        "expected a few backed-off retries: {result}"
    );
}

#[test]
fn zombie_ap_degrades_gracefully_with_a_healthy_neighbour() {
    // Two same-channel APs; one goes zombie. Multi-AP Spider must keep
    // goodput flowing through the healthy one.
    let mut cfg = lab_scenario(
        &[Channel::CH1, Channel::CH1],
        500_000.0,
        SimDuration::from_secs(40),
        3,
    );
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::Zombie,
        start: SimTime::from_secs(5),
        end: SimTime::from_secs(40),
    }]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.faults.packets_dropped_zombie > 0,
        "zombie never bit: {result}"
    );
    assert!(
        result.bytes > 0,
        "goodput must survive with one healthy AP: {result}"
    );
}

#[test]
fn dhcp_exhaustion_falls_back_and_recovers() {
    // Pool exhausted for a window: cached-lease REQUESTs get NAKed and
    // fresh DISCOVERs are ignored. After the window the client must
    // still be able to (re)join and move data.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(40), 4);
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::DhcpExhausted,
        start: SimTime::from_secs(0),
        end: SimTime::from_secs(15),
    }]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.bytes > 0,
        "client never recovered after the pool freed up: {result}"
    );
}

#[test]
fn icmp_blackhole_with_loss_burst_rides_the_gateway_fallback() {
    // Compound episode the seeded profiles never produce: the gateway
    // filters end-to-end ICMP while an interference burst layers extra
    // channel loss over the same window. The ping monitor's
    // gateway-ping fallback (§3.2.2) must keep the link classified as
    // alive through both — the probes redirect to the gateway, and the
    // burst's losses stay far short of 30 consecutive misses — so the
    // driver never deauths and data keeps flowing.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(40), 6);
    cfg.faults = FaultPlan::scripted(vec![
        FaultEpisode {
            ap: Some(0),
            kind: FaultKind::IcmpBlackhole,
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(35),
        },
        FaultEpisode {
            ap: Some(0),
            kind: FaultKind::LossBurst { extra: 0.2 },
            start: SimTime::from_secs(8),
            end: SimTime::from_secs(25),
        },
    ]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.faults.icmp_dropped_filtered > 0,
        "the blackhole never filtered a probe: {result}"
    );
    assert!(
        result.faults.detect_times_s.is_empty(),
        "gateway fallback should keep the link alive — a healthy link \
         was torn down: {result}"
    );
    assert!(
        result.faults.recover_times_s.is_empty(),
        "no outage should open on a link the fallback kept up: {result}"
    );
    assert!(
        result.bytes > 1_000_000,
        "goodput collapsed under the compound episode: {result}"
    );
}

#[test]
fn dhcp_exhaustion_naks_the_cached_lease_rejoin() {
    // Compound episode: a short blackout tears the link down, and the
    // re-join lands inside a DHCP-exhaustion window. The client's
    // cached-lease fast path sends a REQUEST for its old address and
    // must absorb the NAK (§3.2.3 lease caching), fall back to
    // DISCOVER — which the exhausted pool ignores — and still complete
    // the join once the pool frees up.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(60), 8);
    cfg.faults = FaultPlan::scripted(vec![
        FaultEpisode {
            ap: Some(0),
            kind: FaultKind::Blackout,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(15),
        },
        FaultEpisode {
            ap: Some(0),
            kind: FaultKind::DhcpExhausted,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(35),
        },
    ]);
    let result = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run();
    assert!(
        result.faults.frames_dropped_blackout > 0,
        "the blackout never bit: {result}"
    );
    assert!(
        !result.faults.detect_times_s.is_empty(),
        "the blackout was never detected: {result}"
    );
    assert!(
        result.faults.dhcp_naks_exhausted > 0,
        "the cached-lease REQUEST was never NAKed — the compound \
         window missed the re-join: {result}"
    );
    assert!(
        result.join_log.join.len() >= 2,
        "the client never completed the post-exhaustion re-join: {result}"
    );
    assert!(
        result.bytes > 0,
        "no data after the pool freed up: {result}"
    );
}

#[test]
fn arp_poison_is_detected_only_by_the_end_to_end_monitor() {
    // ARP poisoning leaves every control-plane signal green —
    // association holds, DHCP answers, the AP beacons — while the
    // client's upstream unicast rides a hijacked gateway mapping into
    // a black hole. Even the gateway-ping fallback is useless: the
    // poisoned mapping IS the gateway. Only end-to-end probing can
    // notice, within the §3.2.2 budget, and every recovery re-join
    // must re-resolve the gateway.
    // Seed picked so the first swallowed packet lands just before a
    // ping tick: the detect clock starts at the first bite, so an
    // unlucky phase can add up to one 100 ms ping interval on top of
    // the 3.0 s monitor budget.
    let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(40), 7);
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::ArpPoison,
        start: SimTime::from_secs(10),
        end: SimTime::from_secs(25),
    }]);
    let (result, driver) = World::new(
        cfg,
        spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
    )
    .run_with();
    assert!(
        result.faults.frames_blackholed_arp > 0,
        "the poison never swallowed anything: {result}"
    );
    // Control plane stayed green: the mid-episode re-join completed
    // DHCP *during* the poisoning window.
    assert!(
        result.join_log.dhcp.len() >= 2,
        "DHCP should keep succeeding under ARP poison (the fault is \
         invisible to the join path): {result}"
    );
    let detects: Vec<f64> = result.faults.detect_times_for("arp-poison").collect();
    assert!(
        !detects.is_empty(),
        "the poison was never detected: {result}"
    );
    for d in detects {
        assert!(
            d <= DETECT_BUDGET_S + 0.05,
            "ARP-poison detection took {d:.3}s, over the {DETECT_BUDGET_S}s budget"
        );
    }
    // Recovery re-resolved the gateway: one resolution for the initial
    // join, at least one more for a re-join.
    assert!(
        driver.gateway_resolutions() >= 2,
        "recovery never re-resolved the gateway ({} resolutions)",
        driver.gateway_resolutions()
    );
    assert!(
        result.bytes > 0,
        "no data after the poisoning ended: {result}"
    );
}

#[test]
fn captive_portal_defeats_gateway_fallback_but_demotion_recovers() {
    // A captive portal answers DHCP and gateway pings but hijacks
    // everything end-to-end — exactly the trap the §3.2.2 gateway-ping
    // fallback walks into: the client joins while the portal is up,
    // verification succeeds via the fallback, and the monitor stays
    // happy forever while TCP delivers nothing. The zero-progress
    // portal classifier must fire, demote the AP to the blacklist
    // ceiling, and let the healthy neighbour carry the session.
    let mut cfg = lab_scenario(
        &[Channel::CH1, Channel::CH1],
        500_000.0,
        SimDuration::from_secs(40),
        12,
    );
    cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
        ap: Some(0),
        kind: FaultKind::CaptivePortal,
        start: SimTime::ZERO,
        end: SimTime::from_secs(40),
    }]);
    let (result, driver) = World::new(
        cfg,
        spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
    )
    .run_with();
    assert!(
        result.faults.packets_hijacked_portal > 0,
        "the portal never hijacked anything: {result}"
    );
    let detects: Vec<f64> = result.faults.detect_times_for("captive-portal").collect();
    assert!(
        !detects.is_empty(),
        "the portal was never classified: {result}"
    );
    for d in detects {
        assert!(
            d <= 12.0,
            "portal classification took {d:.3}s, over the fallback + \
             zero-progress-window budget"
        );
    }
    // Demoted, not retried forever: the portal AP sits at the
    // blacklist ceiling (strikes past the exponential ladder).
    let end = SimTime::from_secs(40);
    let blocked = driver.blacklist().blocked(end);
    assert!(
        blocked.iter().any(|&b| driver.blacklist().strikes(b) >= 17),
        "the portal AP was not demoted to the ceiling: {blocked:?}"
    );
    assert!(
        result.bytes > 0,
        "the healthy neighbour never carried data: {result}"
    );
}

#[test]
fn asymmetric_loss_up_and_down_take_different_detect_paths() {
    // Directional loss is one fault class with two distinct failure
    // signatures: an uplink-dead episode swallows the client's probes
    // on their way out (the world counts them at the client's
    // transmit), a downlink-dead episode swallows replies and beacons
    // on the way back (counted at the AP's transmit). Both must be
    // detected, and the drop attribution must discriminate the legs.
    let run = |up: f64, down: f64, seed: u64| {
        let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(30), seed);
        cfg.faults = FaultPlan::scripted(vec![FaultEpisode {
            ap: Some(0),
            kind: FaultKind::AsymmetricLoss { up, down },
            start: SimTime::from_secs(8),
            end: SimTime::from_secs(22),
        }]);
        World::new(
            cfg,
            spider(OperationMode::SingleChannelSingleAp(Channel::CH1)),
        )
        .run()
    };

    let up_dead = run(1.0, 0.0, 13);
    assert!(
        up_dead.faults.uplink_dropped_asym > 0,
        "uplink-dead episode never bit: {up_dead}"
    );
    assert!(
        up_dead.faults.uplink_dropped_asym > up_dead.faults.downlink_dropped_asym,
        "uplink-dead run must attribute drops to the up leg \
         (up {} vs down {})",
        up_dead.faults.uplink_dropped_asym,
        up_dead.faults.downlink_dropped_asym
    );
    assert!(
        up_dead
            .faults
            .detect_times_for("asymmetric-loss")
            .next()
            .is_some(),
        "uplink-dead episode was never detected: {up_dead}"
    );

    let down_dead = run(0.0, 1.0, 13);
    assert!(
        down_dead.faults.downlink_dropped_asym > 0,
        "downlink-dead episode never bit: {down_dead}"
    );
    assert!(
        down_dead.faults.downlink_dropped_asym > down_dead.faults.uplink_dropped_asym,
        "downlink-dead run must attribute drops to the down leg \
         (up {} vs down {})",
        down_dead.faults.uplink_dropped_asym,
        down_dead.faults.downlink_dropped_asym
    );
    assert!(
        down_dead
            .faults
            .detect_times_for("asymmetric-loss")
            .next()
            .is_some(),
        "downlink-dead episode was never detected: {down_dead}"
    );
}

#[test]
fn drivers_survive_a_seeded_fault_storm() {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(300),
        seed: 21,
        ..Default::default()
    };
    let stormy = |cfg: &mut spider_repro::workloads::WorldConfig| {
        cfg.faults = FaultPlan::seeded(
            99,
            cfg.deployment.len(),
            cfg.duration,
            &FaultProfile::stormy(),
        );
    };

    let mut cfg = town_scenario(&params);
    stormy(&mut cfg);
    let spider_run = World::new(
        cfg,
        spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
    )
    .run();
    assert!(
        spider_run.faults.total_drops() > 0,
        "the storm never bit: {spider_run}"
    );
    assert!(
        spider_run.bytes > 0,
        "Spider moved no data through the storm: {spider_run}"
    );

    // The baselines must at least run to completion under the same
    // storm (their robustness is what Spider is compared against).
    let mut cfg = town_scenario(&params);
    stormy(&mut cfg);
    let stock = World::new(cfg, StockDriver::new(StockConfig::quickwifi(1))).run();
    assert_eq!(stock.duration, SimDuration::from_secs(300));

    let mut cfg = town_scenario(&params);
    stormy(&mut cfg);
    let fatvap = World::new(cfg, FatVapDriver::new(FatVapConfig::default())).run();
    assert_eq!(fatvap.duration, SimDuration::from_secs(300));
}

#[test]
fn faulty_runs_are_deterministic_per_seed() {
    let run = || {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(200),
            seed: 33,
            ..Default::default()
        };
        let mut cfg = town_scenario(&params);
        cfg.faults =
            FaultPlan::seeded(7, cfg.deployment.len(), cfg.duration, &FaultProfile::calm());
        World::new(
            cfg,
            spider(OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            }),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.join_log.join.len(), b.join_log.join.len());
    assert_eq!(
        a.faults, b.faults,
        "fault attribution must be bit-identical"
    );
}

#[test]
fn dense_deployment_rerun_is_bit_identical() {
    // The benchmark's dense-downtown regime in miniature: >1,000
    // roadside sites on the 5 km loop, single-channel Spider, under a
    // stormy fault plan so the blackout gating and fault sweep are in
    // play. The engine's fast paths — spatial grid queries, shared-frame
    // fan-out, the calendar event queue, scratch-buffer reuse — must not
    // leak any iteration order or buffer state into observable results:
    // every field of the RunResult, floats compared bit-for-bit, has to
    // come out identical on a rerun of the same seed.
    let run = || {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(60),
            seed: 42,
            density_per_km: 220.0,
            ..Default::default()
        };
        let mut cfg = town_scenario(&params);
        assert!(
            cfg.deployment.len() >= 1_000,
            "dense scenario must stay dense ({} sites)",
            cfg.deployment.len()
        );
        cfg.faults = FaultPlan::seeded(
            99,
            cfg.deployment.len(),
            cfg.duration,
            &FaultProfile::stormy(),
        );
        World::new(
            cfg,
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH6),
                1,
            )),
        )
        .run()
    };
    let (mut a, mut b) = (run(), run());
    assert_eq!(a.label, b.label);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(
        a.avg_throughput_bps.to_bits(),
        b.avg_throughput_bps.to_bits()
    );
    assert_eq!(a.connectivity.to_bits(), b.connectivity.to_bits());
    let (sa, sb) = (
        a.instantaneous_bps.sorted_samples().to_vec(),
        b.instantaneous_bps.sorted_samples().to_vec(),
    );
    assert_eq!(sa.len(), sb.len(), "instantaneous-bandwidth sample counts");
    assert!(
        sa.iter().zip(&sb).all(|(x, y)| x.to_bits() == y.to_bits()),
        "instantaneous-bandwidth samples must be bit-identical"
    );
    assert_eq!(a.intervals.on_durations, b.intervals.on_durations);
    assert_eq!(a.intervals.off_durations, b.intervals.off_durations);
    assert_eq!(
        a.intervals.on_fraction.to_bits(),
        b.intervals.on_fraction.to_bits()
    );
    assert_eq!(a.join_log.assoc, b.join_log.assoc);
    assert_eq!(a.join_log.assoc_failures, b.join_log.assoc_failures);
    assert_eq!(a.join_log.dhcp, b.join_log.dhcp);
    assert_eq!(a.join_log.dhcp_failures, b.join_log.dhcp_failures);
    assert_eq!(a.join_log.join, b.join_log.join);
    assert_eq!(a.join_log.join_failures, b.join_log.join_failures);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.aps_encountered, b.aps_encountered);
    assert_eq!(a.tcp_timeouts, b.tcp_timeouts);
    assert_eq!(a.tcp_retransmits, b.tcp_retransmits);
    assert_eq!(
        a.faults.frames_dropped_blackout,
        b.faults.frames_dropped_blackout
    );
    assert_eq!(
        a.faults.packets_dropped_zombie,
        b.faults.packets_dropped_zombie
    );
    assert_eq!(a.faults.dhcp_dropped_silent, b.faults.dhcp_dropped_silent);
    assert_eq!(a.faults.dhcp_naks_exhausted, b.faults.dhcp_naks_exhausted);
    assert_eq!(
        a.faults.icmp_dropped_filtered,
        b.faults.icmp_dropped_filtered
    );
    assert_eq!(
        a.faults.frames_blackholed_arp,
        b.faults.frames_blackholed_arp
    );
    assert_eq!(
        a.faults.packets_hijacked_portal,
        b.faults.packets_hijacked_portal
    );
    assert_eq!(a.faults.uplink_dropped_asym, b.faults.uplink_dropped_asym);
    assert_eq!(
        a.faults.downlink_dropped_asym,
        b.faults.downlink_dropped_asym
    );
    assert_eq!(a.faults.ap_reboots, b.faults.ap_reboots);
    assert_eq!(a.faults.detect_times_s.len(), b.faults.detect_times_s.len());
    assert!(
        a.faults
            .detect_times_s
            .iter()
            .zip(&b.faults.detect_times_s)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "fault detection latencies must be bit-identical"
    );
    assert_eq!(a.events, b.events, "engine event count must be identical");
}
