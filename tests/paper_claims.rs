//! The paper's headline claims as executable assertions.
//!
//! Each test states the claim, the section it comes from, and checks the
//! *shape* (who wins, roughly by how much) at fixed seeds. Absolute
//! numbers differ from the paper's testbed; EXPERIMENTS.md records both.

use spider_repro::baselines::{StockConfig, StockDriver};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::model::{
    simulate_join_probability, ChannelScenario, JoinModel, ThroughputOptimizer,
};
use spider_repro::simcore::{SimDuration, SimRng};
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::{RunResult, World};

fn town_run(mode: OperationMode, seed: u64) -> RunResult {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(900),
        seed,
        ..Default::default()
    };
    let world = town_scenario(&params);
    World::new(world, SpiderDriver::new(SpiderConfig::for_mode(mode, 1))).run()
}

const PERIOD: SimDuration = SimDuration::from_millis(600);

/// §1/§4.3: "we can maximize bandwidth using multiple APs on a single
/// wireless channel ... more than 400% improvement over a multi-channel
/// approach." We assert a ≥2x margin.
#[test]
fn single_channel_multi_ap_beats_multi_channel_on_throughput() {
    let single = town_run(OperationMode::SingleChannelMultiAp(Channel::CH1), 1);
    let multi = town_run(OperationMode::MultiChannelMultiAp { period: PERIOD }, 1);
    assert!(
        single.avg_throughput_bps > 2.0 * multi.avg_throughput_bps,
        "single: {single}; multi: {multi}"
    );
}

/// §1: "if connectivity is a priority, then joining to multiple APs on
/// multiple channels is best."
#[test]
fn multi_channel_multi_ap_wins_connectivity() {
    let single = town_run(OperationMode::SingleChannelMultiAp(Channel::CH1), 1);
    let multi = town_run(OperationMode::MultiChannelMultiAp { period: PERIOD }, 1);
    assert!(
        multi.connectivity > single.connectivity,
        "single: {single}; multi: {multi}"
    );
}

/// §4.4: "Spider provides 2.5x improvement in throughput and 2x
/// improvement in connectivity" over the stock driver. We assert ≥1.5x
/// on both.
#[test]
fn spider_beats_stock_wifi() {
    let spider = town_run(OperationMode::SingleChannelMultiAp(Channel::CH1), 2);
    let params = ScenarioParams {
        duration: SimDuration::from_secs(900),
        seed: 2,
        ..Default::default()
    };
    let world = town_scenario(&params);
    let stock = World::new(world, StockDriver::new(StockConfig::stock(1))).run();
    assert!(
        spider.avg_throughput_bps > 1.5 * stock.avg_throughput_bps,
        "spider: {spider}; stock: {stock}"
    );
    assert!(
        spider.connectivity > 1.5 * stock.connectivity,
        "spider: {spider}; stock: {stock}"
    );
}

/// §4.3/Table 2: multi-AP beats single-AP on the same single channel.
#[test]
fn multi_ap_beats_single_ap_on_one_channel() {
    let multi = town_run(OperationMode::SingleChannelMultiAp(Channel::CH1), 3);
    let single = town_run(OperationMode::SingleChannelSingleAp(Channel::CH1), 3);
    assert!(
        multi.avg_throughput_bps > single.avg_throughput_bps,
        "multi: {multi}; single: {single}"
    );
    assert!(multi.join_log.join.len() >= single.join_log.join.len());
}

/// §2.1.1 (Fig. 2): the closed-form join model and its Monte-Carlo
/// simulation are statistically equivalent.
#[test]
fn join_model_matches_simulation() {
    let model = JoinModel::paper_defaults(5.0);
    let mut rng = SimRng::new(4);
    for fi in [0.25, 0.5, 0.75, 1.0] {
        let analytic = model.p_join(fi, 4.0);
        let mc = simulate_join_probability(&model, fi, 4.0, 50, 100, &mut rng);
        assert!(
            (analytic - mc.mean).abs() < 0.06 + 3.0 * mc.std_dev,
            "fi={fi}: model {analytic:.3} vs sim {:.3}±{:.3}",
            mc.mean,
            mc.std_dev
        );
    }
}

/// §2.1.3 (Fig. 4): "users that travel with an average speed of 10 m/s
/// or faster should form concurrent Wi-Fi connections only within a
/// single channel."
#[test]
fn dividing_speed_at_most_10mps_for_the_joined_heavy_scenario() {
    let optimizer = ThroughputOptimizer::paper(JoinModel::paper_defaults(10.0));
    let scenarios = [
        ChannelScenario {
            joined_frac: 0.75,
            available_frac: 0.0,
        },
        ChannelScenario {
            joined_frac: 0.0,
            available_frac: 0.25,
        },
    ];
    let div = optimizer
        .dividing_speed(&scenarios, &[2.5, 3.3, 5.0, 6.6, 10.0, 20.0])
        .expect("a dividing speed must exist");
    assert!(div <= 10.0, "dividing speed {div}");
}

/// §4.5 (Fig. 14): reduced DHCP timeouts improve the median join time;
/// multi-channel schedules roughly double it.
#[test]
fn reduced_timeouts_speed_joins_and_channels_slow_them() {
    use spider_repro::mac80211::ClientMacConfig;
    use spider_repro::netstack::DhcpClientConfig;

    let run = |multi: bool, reduced: bool, seed: u64| {
        let mode = if multi {
            OperationMode::MultiChannelMultiAp { period: PERIOD }
        } else {
            OperationMode::SingleChannelMultiAp(Channel::CH1)
        };
        let (mac, dhcp) = if reduced {
            (
                ClientMacConfig::reduced(),
                DhcpClientConfig::reduced(SimDuration::from_millis(200)),
            )
        } else {
            (ClientMacConfig::stock(), DhcpClientConfig::stock())
        };
        let params = ScenarioParams {
            duration: SimDuration::from_secs(900),
            seed,
            ..Default::default()
        };
        let world = town_scenario(&params);
        let cfg = SpiderConfig::for_mode(mode, 1).with_timeouts(mac, dhcp);
        World::new(world, SpiderDriver::new(cfg)).run()
    };
    let fast = run(false, true, 5).join_log.join_cdf().median();
    let slow = run(false, false, 5).join_log.join_cdf().median();
    assert!(fast < slow, "reduced {fast}s !< default {slow}s");
    let multi = run(true, true, 5).join_log.join_cdf().median();
    assert!(
        multi > 1.5 * fast,
        "multi-channel joins ({multi}s) should dwarf single-channel ({fast}s)"
    );
}

/// §2.2.1 (Fig. 6 / Table 3): DHCP suffers on fractional schedules —
/// the multi-channel failure rate exceeds the single-channel rate.
#[test]
fn dhcp_fails_more_on_fractional_schedules() {
    let single = town_run(OperationMode::SingleChannelMultiAp(Channel::CH1), 6);
    let multi = town_run(OperationMode::MultiChannelMultiAp { period: PERIOD }, 6);
    let fr = |r: &RunResult| r.join_log.dhcp_failure_ratio().unwrap_or(0.0);
    assert!(
        fr(&multi) > fr(&single),
        "multi {:.2} !> single {:.2}",
        fr(&multi),
        fr(&single)
    );
}

/// §4.2 (Table 1): switch latency grows with associated interfaces and
/// stays in the 4.9–6 ms band the paper measured.
#[test]
fn switch_latency_matches_table1_band() {
    let phy = spider_repro::radio::PhyParams::b11();
    let mut prev = SimDuration::ZERO;
    for n in 0..=4 {
        let lat = phy.switch_latency(n);
        assert!(lat > prev);
        assert!(
            lat.as_millis_f64() >= 4.8 && lat.as_millis_f64() <= 6.2,
            "{lat}"
        );
        prev = lat;
    }
}
