//! Runtime invariant layer, end to end (DESIGN.md §11).
//!
//! Built with `--features validate`, these tests drive the benchmark
//! suite's two heaviest deployments — the dense downtown drive and the
//! dense drive under a seeded fault storm — with every runtime check
//! armed: event-queue pop ordering, air-frame conservation,
//! fault-counter consistency, and the radio's NaN/∞ guards. A clean run
//! *is* the assertion; any invariant violation panics inside the
//! engine with a message naming the broken ledger.
//!
//! The negative tests then prove each guard actually fires: a check
//! that cannot fail verifies nothing.

#[cfg(feature = "validate")]
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
#[cfg(feature = "validate")]
use spider_repro::simcore::SimDuration;
#[cfg(feature = "validate")]
use spider_repro::wire::Channel;
#[cfg(feature = "validate")]
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
#[cfg(feature = "validate")]
use spider_repro::workloads::{FaultPlan, FaultProfile, World};

/// Same fault-plan seed as the benchmark suite's `chaos_storm`.
#[cfg(feature = "validate")]
const STORM_SEED: u64 = 99;

#[cfg(feature = "validate")]
fn dense_params(sim_secs: u64) -> ScenarioParams {
    ScenarioParams {
        duration: SimDuration::from_secs(sim_secs),
        seed: 42,
        density_per_km: 220.0,
        ..Default::default()
    }
}

#[cfg(feature = "validate")]
fn spider_driver() -> SpiderDriver {
    SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        1,
    ))
}

/// Dense downtown (the suite's heaviest fault-free deployment) with all
/// validate checks armed. Durations are shorter than the benchmark's —
/// these run under the dev profile with overflow checks — but the
/// deployment, and so every data structure the invariants watch, is the
/// full >1000-site downtown.
#[cfg(feature = "validate")]
#[test]
fn dense_downtown_upholds_all_invariants() {
    let cfg = town_scenario(&dense_params(120));
    assert!(cfg.deployment.len() >= 1_000, "deployment lost its density");
    let result = World::new(cfg, spider_driver()).run();
    assert!(result.bytes > 0, "dense run delivered nothing: {result}");
    // No fault plan: the audit inside `run_with` has already asserted
    // every fault counter stayed at zero.
    assert_eq!(result.faults.total_drops(), 0);
}

/// The same deployment under the seeded stormy fault plan: blackouts,
/// zombies and DHCP faults exercise every drop path the air-frame
/// ledger accounts for.
#[cfg(feature = "validate")]
#[test]
fn chaos_storm_upholds_all_invariants() {
    let mut cfg = town_scenario(&dense_params(90));
    let sites = cfg.deployment.len();
    assert!(sites >= 1_000, "deployment lost its density");
    cfg.faults = FaultPlan::seeded(STORM_SEED, sites, cfg.duration, &FaultProfile::stormy());
    let result = World::new(cfg, spider_driver()).run();
    assert!(
        result.faults.total_drops() > 0,
        "the storm never bit — fault machinery is dead: {result}"
    );
}

/// Determinism holds with the checks armed: the validate layer must
/// observe, never perturb.
#[cfg(feature = "validate")]
#[test]
fn validate_layer_does_not_perturb_the_run() {
    let run = || {
        let mut cfg = town_scenario(&dense_params(60));
        let sites = cfg.deployment.len();
        cfg.faults = FaultPlan::seeded(STORM_SEED, sites, cfg.duration, &FaultProfile::stormy());
        World::new(cfg, spider_driver()).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.events, b.events);
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.faults.total_drops(), b.faults.total_drops());
}

// ---------------------------------------------------------------------
// Negative tests: each guard must demonstrably fire.
// ---------------------------------------------------------------------

mod negative {
    #[cfg(feature = "validate")]
    use spider_repro::radio::{LossModel, Propagation};
    use spider_repro::simcore::{EventQueue, SimTime};

    /// Causality: scheduling behind the queue's clock panics in every
    /// build — this guard predates the validate feature and stays
    /// unconditional.
    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn event_queue_rejects_scheduling_into_the_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "rssi_dbm: bad distance")]
    fn nan_distance_trips_the_rssi_guard() {
        let _ = Propagation::outdoor().rssi_dbm(f64::NAN);
    }

    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "rssi_dbm: bad distance")]
    fn infinite_distance_trips_the_rssi_guard() {
        let _ = Propagation::outdoor().rssi_dbm(f64::INFINITY);
    }

    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "loss_probability: bad inputs")]
    fn nan_distance_trips_the_loss_guard() {
        let _ = LossModel::paper_default().loss_probability(f64::NAN, 100.0);
    }

    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "loss_probability_sq: bad inputs")]
    fn negative_squared_distance_trips_the_loss_guard() {
        let _ = LossModel::paper_default().loss_probability_sq(-1.0, 100.0);
    }

    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "loss_probability: bad inputs")]
    fn zero_range_trips_the_loss_guard() {
        let m = LossModel::DistanceRamp {
            base: 0.05,
            edge_start: 0.7,
        };
        let _ = m.loss_probability(10.0, 0.0);
    }
}
