//! Checkpoint/fork bit-identity, end to end (DESIGN.md §13).
//!
//! The checkpoint engine's whole contract is one sentence: a forked
//! world resumes **bit-identically** to a from-scratch run. These tests
//! drive the benchmark suite's two heaviest deployments (the dense
//! downtown drive and the same drive under a seeded fault storm) plus a
//! chaos-campaign schedule, snapshot each at three mid-run points, and
//! assert the forked `RunResult` — every metric, the join log, the
//! per-class fault counters — equals the uninterrupted run's. Built
//! with `--features validate` in CI, the air-frame conservation audit
//! additionally replays across every snapshot boundary: frames created
//! before a fork must balance against deliveries after it.

use spider_repro::baselines::{StockConfig, StockDriver};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{forked_sweep_with, SimDuration, SimTime};
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::{
    chaos_plan, ChaosProfile, FaultPlan, FaultProfile, RunResult, World, WorldConfig,
};

/// Same fault-plan seed as the benchmark suite's `chaos_storm`.
const STORM_SEED: u64 = 99;

/// A town drive with the deployment pinned to one seed while the world
/// seed varies — the shape every seed-rebase comparison needs, since a
/// cold world at a different seed would otherwise also get a different
/// physical town.
fn pinned_cfg(seed: u64, deploy_seed: u64, density: f64, sim_secs: u64) -> WorldConfig {
    town_scenario(&ScenarioParams {
        duration: SimDuration::from_secs(sim_secs),
        seed,
        deploy_seed: Some(deploy_seed),
        density_per_km: density,
        ..Default::default()
    })
}

fn dense_cfg(sim_secs: u64, storm: bool) -> WorldConfig {
    let mut cfg = town_scenario(&ScenarioParams {
        duration: SimDuration::from_secs(sim_secs),
        seed: 42,
        density_per_km: 220.0,
        ..Default::default()
    });
    if storm {
        cfg.faults = FaultPlan::seeded(
            STORM_SEED,
            cfg.deployment.len(),
            cfg.duration,
            &FaultProfile::stormy(),
        );
    }
    cfg
}

fn spider_driver() -> SpiderDriver {
    SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        1,
    ))
}

/// Advance one world through `fractions` of its duration, forking at
/// each point and finishing the fork; every forked result — and the
/// original, finished last — must equal the cold run bit for bit.
fn assert_forks_match_cold(cfg: WorldConfig, what: &str) {
    let cold = World::new(cfg.clone(), spider_driver()).run();
    let mut live = World::new(cfg, spider_driver());
    let total = cold.duration;
    for fraction in [0.25, 0.5, 0.75] {
        let at = SimTime::ZERO + SimDuration::from_secs_f64(total.as_secs_f64() * fraction);
        live.run_until(at);
        let forked = live.fork().finish().0;
        assert_eq!(
            forked, cold,
            "{what}: fork at {fraction} of the run diverged from the cold run"
        );
        // The ISSUE's headline counters, asserted on their own so a
        // failure names them even if some other field diverges first.
        assert_eq!(
            forked.faults, cold.faults,
            "{what}: per-class fault counters"
        );
        assert_eq!(forked.events, cold.events, "{what}: event totals");
    }
    // Snapshotting must not perturb the snapshotted world either.
    let original = live.finish().0;
    assert_eq!(
        original, cold,
        "{what}: the forked-from world itself diverged"
    );
}

#[test]
fn dense_downtown_forks_are_bit_identical() {
    let cfg = dense_cfg(60, false);
    assert!(cfg.deployment.len() >= 1_000, "deployment lost its density");
    assert_forks_match_cold(cfg, "dense_downtown");
}

#[test]
fn chaos_storm_forks_are_bit_identical() {
    let cfg = dense_cfg(60, true);
    assert!(!cfg.faults.is_empty(), "storm plan came up empty");
    assert_forks_match_cold(cfg, "chaos_storm");
}

fn campaign_cfg(sim_secs: u64) -> (WorldConfig, FaultPlan) {
    let cfg = town_scenario(&ScenarioParams {
        duration: SimDuration::from_secs(sim_secs),
        seed: 7,
        density_per_km: 40.0,
        ..Default::default()
    });
    let plan = chaos_plan(
        11,
        cfg.deployment.len(),
        cfg.duration,
        &ChaosProfile::standard(),
    );
    (cfg, plan)
}

#[test]
fn campaign_schedule_forks_are_bit_identical() {
    let (mut cfg, plan) = campaign_cfg(120);
    assert!(!plan.is_empty(), "campaign schedule came up empty");
    cfg.faults = plan;
    assert_forks_match_cold(cfg, "campaign_schedule");
}

/// The prefix-sharing primitive itself: a world advanced under a
/// *different* plan that agrees up to the checkpoint — here the empty
/// plan, which agrees with anything before its first episode — forked
/// with the candidate plan swapped in, must equal the candidate's cold
/// run. This is exactly what the campaign trial phase and the shrinker
/// rely on.
#[test]
fn fork_with_plan_from_shared_prefix_matches_cold_run() {
    let (cfg, plan) = campaign_cfg(120);
    let first_start = plan.episodes.iter().map(|e| e.start).min().unwrap();
    let boundary = SimTime::from_micros(first_start.as_micros().saturating_sub(1));

    let mut with_plan = cfg.clone();
    with_plan.faults = plan.clone();
    let cold = World::new(with_plan, spider_driver()).run();

    // `advance_shared` (not a bare `run_until`) so the base stops short
    // of any in-flight medium reservation peeking past the divergence.
    let (base, consumed_to, _) =
        World::new(cfg, spider_driver()).advance_shared(boundary, first_start);
    assert!(consumed_to > SimTime::ZERO, "shared no prefix at all");
    let forked = base.fork_with_plan(plan).finish().0;
    assert_eq!(
        forked, cold,
        "prefix-shared fork diverged from the cold run"
    );
}

/// A forked sweep over plan variants sharing one checkpoint: identical
/// results at `SPIDER_JOBS=1` and `4` (explicit worker counts — the env
/// override feeds the same parameter), and identical to cold runs.
#[test]
fn forked_sweep_is_worker_count_invariant() {
    let (cfg, plan) = campaign_cfg(90);
    // Variants that share the full no-fault prefix: the original plan,
    // a ddmin-style half, and a single-episode rump.
    let half = FaultPlan::scripted(plan.episodes[..plan.episodes.len() / 2].to_vec());
    let rump = FaultPlan::scripted(vec![*plan.episodes.last().unwrap()]);
    let variants = [plan, half, rump];
    let boundary = variants
        .iter()
        .flat_map(|p| p.episodes.iter().map(|e| e.start))
        .min()
        .map(|s| SimTime::from_micros(s.as_micros().saturating_sub(1)))
        .unwrap();

    let cold: Vec<RunResult> = variants
        .iter()
        .map(|p| {
            let mut c = cfg.clone();
            c.faults = p.clone();
            World::new(c, spider_driver()).run()
        })
        .collect();

    let jobs: Vec<(usize, FaultPlan)> = variants.iter().cloned().map(|p| (0, p)).collect();
    let divergence = boundary + SimDuration::from_micros(1);
    for workers in [1, 4] {
        let results = forked_sweep_with(
            &[&cfg],
            &jobs,
            |c| {
                World::new((*c).clone(), spider_driver())
                    .advance_shared(boundary, divergence)
                    .0
            },
            |base, p| base.fork_with_plan(p.clone()).finish().0,
            workers,
        );
        assert_eq!(results, cold, "forked sweep at {workers} workers");
    }
}

/// The seed-rebase primitive (DESIGN.md §13): one constructed world,
/// forked under new root seeds, must equal cold construction at those
/// seeds bit for bit — across all three benchmark scenario shapes.
#[test]
fn seed_rebase_matches_cold_construction_across_scenarios() {
    for (name, density, storm, sim_secs) in [
        ("sparse_commute", 12.0, false, 120u64),
        ("dense_downtown", 220.0, false, 30),
        ("chaos_storm", 220.0, true, 30),
    ] {
        let mk = |seed: u64| {
            let mut cfg = pinned_cfg(seed, 42, density, sim_secs);
            if storm {
                cfg.faults = FaultPlan::seeded(
                    STORM_SEED,
                    cfg.deployment.len(),
                    cfg.duration,
                    &FaultProfile::stormy(),
                );
                assert!(!cfg.faults.is_empty(), "storm plan came up empty");
            }
            cfg
        };
        let base = World::new(mk(42), spider_driver());
        for seed in [5u64, 23] {
            let forked = base.fork_with_seed(seed).run();
            let cold = World::new(mk(seed), spider_driver()).run();
            assert_eq!(
                forked, cold,
                "{name}: seed-rebased fork to seed {seed} diverged from cold construction"
            );
        }
    }
}

/// Seed rebasing is driver-agnostic: the stock single-connection
/// baseline holds the same world-side streams, so its forks must
/// rebase just as cleanly as Spider's.
#[test]
fn seed_rebase_matches_cold_for_the_stock_baseline() {
    let mk = |seed: u64| pinned_cfg(seed, 42, 40.0, 120);
    let base = World::new(mk(42), StockDriver::new(StockConfig::stock(1)));
    let forked = base.fork_with_seed(9).run();
    let cold = World::new(mk(9), StockDriver::new(StockConfig::stock(1))).run();
    assert_eq!(
        forked, cold,
        "stock baseline: seed-rebased fork diverged from cold construction"
    );
}

/// Rebasing after the first event is unsound — streams have drawn under
/// the old seed — and the guard must refuse, not silently corrupt.
#[test]
#[should_panic(expected = "already started")]
fn seed_rebase_after_start_panics() {
    let mut w = World::new(pinned_cfg(42, 42, 12.0, 60), spider_driver());
    w.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    w.rebase_seed(5);
}
