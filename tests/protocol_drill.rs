//! A two-node protocol drill: one Spider interface against one AP (MAC +
//! DHCP server), frames shuttled by hand with no world, no loss, no
//! radio. Proves the state machines interoperate and documents the full
//! join message flow:
//!
//! auth req → auth resp → assoc req → assoc resp → DISCOVER → OFFER →
//! REQUEST → ACK → ping → pong → TCP SYN.

use spider_repro::core::iface::{ClientIface, IfaceEvent, SERVER_IP};
use spider_repro::mac80211::{ApConfig, ApEvent, ApMac, ApTarget, ClientMacConfig, JoinLog};
use spider_repro::netstack::{DhcpClientConfig, DhcpServer, DhcpServerConfig, PingConfig};
use spider_repro::simcore::{SimDuration, SimRng, SimTime};
use spider_repro::wire::ip::L4;
use spider_repro::wire::{AirFrame, Channel, Frame, FrameBody, Ipv4Packet, MacAddr, Ssid};

struct Drill {
    iface: ClientIface,
    ap: ApMac,
    dhcp: DhcpServer,
    log: JoinLog,
    now: SimTime,
    /// DHCP responses waiting for their server-side delay to elapse.
    pending: Vec<(SimTime, spider_repro::wire::DhcpMessage)>,
}

impl Drill {
    fn new() -> Drill {
        let bssid = MacAddr::from_id(500);
        Drill {
            iface: ClientIface::new(
                0,
                MacAddr::from_id(1),
                ClientMacConfig::reduced(),
                DhcpClientConfig::reduced(SimDuration::from_millis(200)),
                PingConfig::paper(0),
                true,
            ),
            ap: ApMac::new(
                ApConfig::open(bssid, Ssid::new("drill"), Channel::CH6),
                SimTime::MAX, // no beacons needed
            ),
            dhcp: DhcpServer::new(DhcpServerConfig::for_ap(0, (0.05, 0.2)), SimRng::new(9)),
            log: JoinLog::new(),
            now: SimTime::ZERO,
            pending: Vec::new(),
        }
    }

    fn tick(&mut self, ms: u64) -> Vec<AirFrame> {
        self.now += SimDuration::from_millis(ms);
        let mut client_tx = Vec::new();
        for ev in self.iface.poll(self.now, true, &mut self.log) {
            if let IfaceEvent::Transmit(f) = ev {
                client_tx.push(f);
            }
        }
        // Release due DHCP responses.
        let now = self.now;
        let due: Vec<_> = {
            let (due, rest): (Vec<_>, Vec<_>) =
                self.pending.drain(..).partition(|(at, _)| *at <= now);
            self.pending = rest;
            due
        };
        let mut ap_tx = Vec::new();
        for (_, msg) in due {
            let chaddr = msg.chaddr;
            let pkt = Ipv4Packet {
                src: self.dhcp.config().gateway,
                dst: msg.yiaddr,
                payload: L4::Dhcp(msg),
            };
            for ev in self.ap.enqueue_downlink(now, chaddr, pkt, false) {
                if let ApEvent::Send(f) = ev {
                    ap_tx.push(f);
                }
            }
        }
        // Client frames hit the AP.
        for frame in client_tx {
            for ev in self.ap.on_frame(now, &frame) {
                match ev {
                    ApEvent::Send(f) => ap_tx.push(f),
                    ApEvent::DeliverUp { from, packet } => match &packet.payload {
                        L4::Dhcp(msg) => {
                            for ds in self.dhcp.on_message(now, msg) {
                                self.pending.push((ds.at, ds.msg));
                            }
                        }
                        L4::Icmp(msg) => {
                            if packet.dst == SERVER_IP {
                                if let Some(reply) = msg.reply_to() {
                                    let pkt = Ipv4Packet {
                                        src: SERVER_IP,
                                        dst: packet.src,
                                        payload: L4::Icmp(reply),
                                    };
                                    for ev in self.ap.enqueue_downlink(now, from, pkt, true) {
                                        if let ApEvent::Send(f) = ev {
                                            ap_tx.push(f);
                                        }
                                    }
                                }
                            }
                        }
                        L4::Tcp(_) => { /* the drill stops at the SYN */ }
                    },
                    _ => {}
                }
            }
        }
        ap_tx
    }

    fn deliver_to_client(&mut self, frames: Vec<AirFrame>) -> Vec<Frame> {
        let mut out = Vec::new();
        for f in frames {
            for ev in self.iface.on_frame(self.now, &f, &mut self.log) {
                if let IfaceEvent::Transmit(t) = ev {
                    out.push(t);
                }
            }
        }
        out
    }
}

#[test]
fn full_join_across_crates_without_a_world() {
    let mut drill = Drill::new();
    let target = ApTarget {
        bssid: MacAddr::from_id(500),
        ssid: Ssid::new("drill"),
        channel: Channel::CH6,
    };
    drill.iface.start_join(SimTime::ZERO, target, None);

    let mut saw_syn = false;
    for _ in 0..600 {
        let ap_frames = drill.tick(10);
        let replies = drill.deliver_to_client(ap_frames);
        // Client's immediate replies (acks, follow-up handshakes) loop
        // straight back to the AP.
        let now = drill.now;
        for f in &replies {
            if let FrameBody::Data { packet, .. } = &f.body {
                if matches!(&packet.payload, L4::Tcp(s) if s.flags.syn) {
                    saw_syn = true;
                }
            }
            for ev in drill.ap.on_frame(now, f) {
                if let ApEvent::DeliverUp { packet, .. } = ev {
                    if let L4::Dhcp(msg) = &packet.payload {
                        for ds in drill.dhcp.on_message(now, msg) {
                            drill.pending.push((ds.at, ds.msg));
                        }
                    }
                }
            }
        }
        if drill.iface.is_connected() && saw_syn {
            break;
        }
    }
    assert!(drill.iface.is_connected(), "join never completed");
    assert!(saw_syn, "no TCP connection was initiated after the join");
    assert_eq!(drill.log.assoc.len(), 1);
    assert_eq!(drill.log.dhcp.len(), 1);
    assert_eq!(drill.log.join.len(), 1);
    assert!(drill.ap.is_associated(MacAddr::from_id(1)));
    // The join took: association (~ms) + DHCP (0.05-0.2s offer + ack)
    // + first ping round trip.
    let join = drill.log.join[0].took;
    assert!(join < SimDuration::from_secs(2), "join took {join}");
}

#[test]
fn wire_codec_roundtrips_frames_from_a_live_exchange() {
    use spider_repro::wire::codec::{decode, encode};
    let mut drill = Drill::new();
    let target = ApTarget {
        bssid: MacAddr::from_id(500),
        ssid: Ssid::new("drill"),
        channel: Channel::CH6,
    };
    drill.iface.start_join(SimTime::ZERO, target, None);
    let mut checked = 0;
    for _ in 0..200 {
        let ap_frames = drill.tick(10);
        for f in &ap_frames {
            let bytes = encode(f);
            let back = decode(&bytes).expect("decode live frame");
            assert_eq!(**f, back);
            checked += 1;
        }
        let replies = drill.deliver_to_client(ap_frames);
        for f in &replies {
            let bytes = encode(f);
            assert_eq!(decode(&bytes).unwrap(), *f);
            checked += 1;
        }
    }
    assert!(checked > 5, "exchange produced too few frames ({checked})");
}
