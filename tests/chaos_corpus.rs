//! Corpus replay: every checked-in `spider-chaos-repro` artifact in
//! `corpus/` is re-run from its nearest checkpoint (through the
//! checkpoint/fork engine, DESIGN.md §13) and its recorded violations
//! must re-measure *exactly* — same rules, same budgets, same measured
//! values to the last bit. A previously-shrunk reproducer that stops
//! reproducing, or reproduces with different numbers, means an engine
//! change silently altered behaviour the campaign already pinned down.
//!
//! The world and SLO table here mirror the generating command recorded
//! in `corpus/README.md`: the tight-table campaign on the town drive,
//! world seed 7, 60 s duration.

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{Json, SimDuration};
use spider_repro::wire::Channel;
use spider_repro::workloads::campaign::{
    CheckpointCache, MinimizedRepro, SloMetric, SloRule, SloTable,
};
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::{FaultPlan, World};
use std::path::PathBuf;

/// The campaign's fixed world seed (`chaos_campaign`'s `WORLD_SEED`).
const WORLD_SEED: u64 = 7;

/// Drive length every corpus artifact was recorded under.
const DURATION_SECS: u64 = 60;

/// The same world `chaos_campaign` builds per trial: the town drive
/// with Spider in single-channel multi-AP mode on channel 6.
fn corpus_world(plan: &FaultPlan) -> World<SpiderDriver> {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(DURATION_SECS),
        seed: WORLD_SEED,
        ..Default::default()
    };
    let mut cfg = town_scenario(&params);
    cfg.faults = plan.clone();
    World::new(
        cfg,
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH6),
            1,
        )),
    )
}

/// The `--tight` table the corpus campaigns were judged by: any
/// detection at all — blackout, zombie, or one of the adversarial
/// classes — is a violation. Rules that an old artifact's plan cannot
/// trigger measure nothing, so widening the table keeps every
/// previously-recorded violation list stable.
fn tight_table() -> SloTable {
    SloTable {
        rules: vec![
            SloRule {
                metric: SloMetric::MaxDetectS("blackout"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("zombie"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("arp-poison"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("captive-portal"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("asymmetric-loss"),
                budget: 0.0,
            },
        ],
    }
}

fn corpus_artifacts() -> Vec<(String, MinimizedRepro)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus/ directory exists")
        .map(|e| {
            e.expect("readable corpus entry")
                .file_name()
                .into_string()
                .unwrap()
        })
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(&name))
                .unwrap_or_else(|e| panic!("read corpus/{name}: {e}"));
            let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse corpus/{name}: {e}"));
            let repro = MinimizedRepro::from_json(&doc)
                .unwrap_or_else(|| panic!("corpus/{name} is not a spider-chaos-repro artifact"));
            (name, repro)
        })
        .collect()
}

#[test]
fn corpus_artifacts_replay_identically_from_checkpoints() {
    let artifacts = corpus_artifacts();
    assert!(
        !artifacts.is_empty(),
        "corpus/ holds at least one artifact (see corpus/README.md)"
    );

    // One cache for the whole corpus: the fault-free reference means
    // every artifact forks at its own first episode, and artifacts
    // share whatever prefix checkpoints earlier ones already paid for.
    // Replaying in divergence order keeps the chain advancing
    // incrementally — an early-diverging artifact after a late one
    // would find no usable earlier snapshot and rebuild from scratch.
    let mut artifacts = artifacts;
    artifacts.sort_by_key(|(_, r)| {
        r.plan
            .episodes
            .iter()
            .map(|e| e.start)
            .min()
            .expect("minimized plans keep at least one episode")
    });
    let table = tight_table();
    let mut cache = CheckpointCache::new(corpus_world, FaultPlan::none());
    for (name, repro) in &artifacts {
        assert!(
            repro.plan.episodes.len() <= repro.original_episodes,
            "{name}: minimized plan grew past its original schedule"
        );
        let result = cache.run_plan(&repro.plan);
        let measured = table.evaluate(&result);
        assert_eq!(
            measured, repro.violations,
            "{name}: replay from checkpoint measured different violations \
             than the artifact recorded"
        );
    }

    // The engine must actually have shared prefixes, not just agreed.
    assert!(
        cache.stats.forks >= artifacts.len(),
        "every artifact replays via a fork"
    );
    assert!(
        cache.stats.events_simulated < cache.stats.events_cold,
        "checkpoint replay simulated {} events but cold runs would cost {} — \
         no prefix was shared",
        cache.stats.events_simulated,
        cache.stats.events_cold
    );
}
