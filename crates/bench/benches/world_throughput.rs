//! Micro-bench: simulator performance — wall time for a short town
//! drive in both Spider channel modes. The tracked macro figures live
//! in `BENCH_world.json` (see the `bench_world` binary); this target is
//! the quick interactive cross-check. Hermetic harness; run with
//! `cargo bench`.

use spider_bench::harness::micro;
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::World;
use std::hint::black_box;

fn run(mode: OperationMode) -> u64 {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(60),
        seed: 1,
        ..Default::default()
    };
    let world = town_scenario(&params);
    let driver = SpiderDriver::new(SpiderConfig::for_mode(mode, 1));
    World::new(world, driver).run().events
}

fn main() {
    micro("town_60s_single_channel", || {
        black_box(run(OperationMode::SingleChannelMultiAp(Channel::CH1)))
    })
    .print_row();
    micro("town_60s_three_channel", || {
        black_box(run(OperationMode::MultiChannelMultiAp {
            period: SimDuration::from_millis(600),
        }))
    })
    .print_row();
}
