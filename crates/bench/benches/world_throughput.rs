#[cfg(feature = "criterion-benches")]
mod real {
//! Criterion bench: simulator performance — simulated seconds per
//! wall-clock second for a town drive. This is the figure that bounds
//! how many evaluation configurations a sweep can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::World;
use std::hint::black_box;

fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("town_60s_single_channel", |b| {
        b.iter(|| {
            let params = ScenarioParams {
                duration: SimDuration::from_secs(60),
                seed: 1,
                ..Default::default()
            };
            let world = town_scenario(&params);
            let driver = SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH1),
                1,
            ));
            black_box(World::new(world, driver).run())
        })
    });
    group.bench_function("town_60s_three_channel", |b| {
        b.iter(|| {
            let params = ScenarioParams {
                duration: SimDuration::from_secs(60),
                seed: 1,
                ..Default::default()
            };
            let world = town_scenario(&params);
            let driver = SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::MultiChannelMultiAp {
                    period: SimDuration::from_millis(600),
                },
                1,
            ));
            black_box(World::new(world, driver).run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_world);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    real::benches();
}

// Hermetic builds have no `criterion` dependency; the bench target
// still has to link, so provide a no-op entry point.
#[cfg(not(feature = "criterion-benches"))]
fn main() {}
