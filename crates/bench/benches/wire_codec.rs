//! Micro-bench: the frame capture codec (encode/decode round trips),
//! including the reusable-buffer `encode_into` path the capture writer
//! uses. Hermetic harness; run with `cargo bench`.

use spider_bench::harness::micro;
use spider_simcore::SimDuration;
use spider_wire::codec::{decode, encode, encode_into};
use spider_wire::ip::L4;
use spider_wire::{Frame, FrameBody, Ipv4Addr, Ipv4Packet, MacAddr, TcpFlags, TcpSegment};
use std::hint::black_box;

fn data_frame() -> Frame {
    Frame {
        src: MacAddr::from_id(1),
        dst: MacAddr::from_id(2),
        bssid: MacAddr::from_id(2),
        body: FrameBody::Data {
            packet: Ipv4Packet {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(192, 0, 2, 1),
                payload: L4::Tcp(TcpSegment {
                    src_port: 5000,
                    dst_port: 80,
                    seq: 123456,
                    ack: 654321,
                    window: 65535,
                    flags: TcpFlags::ACK,
                    payload_len: 1448,
                }),
            },
            more_data: false,
        },
    }
}

fn beacon() -> Frame {
    Frame {
        src: MacAddr::from_id(9),
        dst: MacAddr::BROADCAST,
        bssid: MacAddr::from_id(9),
        body: FrameBody::Beacon {
            ssid: "downtown-open-wifi".into(),
            channel: spider_wire::Channel::CH6,
            interval: SimDuration::from_micros(102_400),
        },
    }
}

fn main() {
    let frames = [data_frame(), beacon()];
    micro("encode_data_and_beacon", || {
        for f in &frames {
            black_box(encode(f));
        }
    })
    .print_row();
    let mut buf = Vec::with_capacity(64);
    micro("encode_into_data_and_beacon", || {
        for f in &frames {
            encode_into(f, &mut buf);
            black_box(buf.len());
        }
    })
    .print_row();
    let encoded: Vec<Vec<u8>> = frames.iter().map(encode).collect();
    micro("decode_data_and_beacon", || {
        for bytes in &encoded {
            black_box(decode(bytes).unwrap());
        }
    })
    .print_row();
}
