#[cfg(feature = "criterion-benches")]
mod real {
//! Criterion bench: evaluating the analytical join model (Eq. 7) and the
//! two-channel optimiser (Eqs. 8-10) — these run inside parameter sweeps,
//! so their cost bounds how fine a grid the figures can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_model::{ChannelScenario, JoinModel, ThroughputOptimizer};
use std::hint::black_box;

fn bench_p_join(c: &mut Criterion) {
    let model = JoinModel::paper_defaults(10.0);
    c.bench_function("p_join_t4s", |b| {
        b.iter(|| black_box(model.p_join(black_box(0.4), black_box(4.0))))
    });
    c.bench_function("p_join_t40s", |b| {
        b.iter(|| black_box(model.p_join(black_box(0.4), black_box(40.0))))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let mut optimizer = ThroughputOptimizer::paper(JoinModel::paper_defaults(10.0));
    optimizer.grid = 20;
    let scenarios = [
        ChannelScenario { joined_frac: 0.5, available_frac: 0.0 },
        ChannelScenario { joined_frac: 0.0, available_frac: 0.5 },
    ];
    c.bench_function("two_channel_optimize_grid20", |b| {
        b.iter(|| black_box(optimizer.optimize(black_box(&scenarios), 6.6)))
    });
}

criterion_group!(benches, bench_p_join, bench_optimizer);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    real::benches();
}

// Hermetic builds have no `criterion` dependency; the bench target
// still has to link, so provide a no-op entry point.
#[cfg(not(feature = "criterion-benches"))]
fn main() {}
