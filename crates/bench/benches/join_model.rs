//! Micro-bench: evaluating the analytical join model (Eq. 7) and the
//! two-channel optimiser (Eqs. 8-10) — these run inside parameter
//! sweeps, so their cost bounds how fine a grid the figures can afford.
//! Hermetic harness; run with `cargo bench`.

use spider_bench::harness::micro;
use spider_model::{ChannelScenario, JoinModel, ThroughputOptimizer};
use std::hint::black_box;

fn main() {
    let model = JoinModel::paper_defaults(10.0);
    micro("p_join_t4s", || {
        black_box(model.p_join(black_box(0.4), black_box(4.0)))
    })
    .print_row();
    micro("p_join_t40s", || {
        black_box(model.p_join(black_box(0.4), black_box(40.0)))
    })
    .print_row();

    let mut optimizer = ThroughputOptimizer::paper(JoinModel::paper_defaults(10.0));
    optimizer.grid = 20;
    let scenarios = [
        ChannelScenario {
            joined_frac: 0.5,
            available_frac: 0.0,
        },
        ChannelScenario {
            joined_frac: 0.0,
            available_frac: 0.5,
        },
    ];
    micro("two_channel_optimize_grid20", || {
        black_box(optimizer.optimize(black_box(&scenarios), 6.6))
    })
    .print_row();
}
