#[cfg(feature = "criterion-benches")]
mod real {
//! Criterion bench: AP selection — Spider's utility ranking vs the exact
//! knapsack solver (Appendix A's complexity argument in numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spider_core::utility::{UtilityConfig, UtilityTable};
use spider_model::selection::{density_score, greedy_select, optimal_select, ApOption};
use spider_simcore::{SimRng, SimTime};
use spider_wire::{Channel, MacAddr, Ssid};
use std::hint::black_box;

fn options(n: usize) -> Vec<ApOption> {
    let mut rng = SimRng::new(5);
    (0..n)
        .map(|_| ApOption {
            value: rng.uniform_in(1.0, 100.0),
            cost: rng.uniform_in(0.5, 10.0),
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for n in [8usize, 16, 64] {
        let opts = options(n);
        group.bench_with_input(BenchmarkId::new("greedy", n), &opts, |b, opts| {
            b.iter(|| black_box(greedy_select(opts, 30.0, density_score)))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &opts, |b, opts| {
            b.iter(|| black_box(optimal_select(opts, 30.0, 1_000)))
        });
    }
    group.finish();
}

fn bench_utility_table(c: &mut Criterion) {
    let mut table = UtilityTable::new(UtilityConfig::default());
    let now = SimTime::from_secs(1);
    for i in 0..200u64 {
        table.observe(now, MacAddr::from_id(i), &Ssid::new("x"), Channel::CH6, -60.0);
    }
    c.bench_function("utility_best_candidate_200aps", |b| {
        b.iter(|| black_box(table.best_candidate(now, &[Channel::CH6], &[])))
    });
}

criterion_group!(benches, bench_selection, bench_utility_table);
}

#[cfg(feature = "criterion-benches")]
fn main() {
    real::benches();
}

// Hermetic builds have no `criterion` dependency; the bench target
// still has to link, so provide a no-op entry point.
#[cfg(not(feature = "criterion-benches"))]
fn main() {}
