//! Micro-bench: AP selection — Spider's utility ranking vs the exact
//! knapsack solver (Appendix A's complexity argument in numbers).
//! Hermetic harness; run with `cargo bench`.

use spider_bench::harness::micro;
use spider_core::utility::{UtilityConfig, UtilityTable};
use spider_model::selection::{density_score, greedy_select, optimal_select, ApOption};
use spider_simcore::{SimRng, SimTime};
use spider_wire::{Channel, MacAddr, Ssid};
use std::hint::black_box;

fn options(n: usize) -> Vec<ApOption> {
    let mut rng = SimRng::new(5);
    (0..n)
        .map(|_| ApOption {
            value: rng.uniform_in(1.0, 100.0),
            cost: rng.uniform_in(0.5, 10.0),
        })
        .collect()
}

fn main() {
    for n in [8usize, 16, 64] {
        let opts = options(n);
        micro(&format!("selection/greedy/{n}"), || {
            black_box(greedy_select(&opts, 30.0, density_score))
        })
        .print_row();
        micro(&format!("selection/exact/{n}"), || {
            black_box(optimal_select(&opts, 30.0, 1_000))
        })
        .print_row();
    }

    let mut table = UtilityTable::new(UtilityConfig::default());
    let now = SimTime::from_secs(1);
    for i in 0..200u64 {
        table.observe(
            now,
            MacAddr::from_id(i),
            &Ssid::new("x"),
            Channel::CH6,
            -60.0,
        );
    }
    micro("utility_best_candidate_200aps", || {
        black_box(table.best_candidate(now, &[Channel::CH6], &[]))
    })
    .print_row();
}
