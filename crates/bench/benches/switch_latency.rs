//! Micro-bench: the radio switch path (Table 1's subject) — state
//! machine cost of initiating/settling a channel switch, and the full
//! driver-side PSM choreography around a schedule boundary. Hermetic
//! harness; run with `cargo bench`.

use spider_bench::harness::micro;
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientSystem;
use spider_radio::{PhyParams, Radio};
use spider_simcore::{SimDuration, SimTime};
use spider_wire::Channel;
use std::hint::black_box;

fn driver_channel(t_ms: u64) -> Channel {
    match (t_ms / 200) % 3 {
        0 => Channel::CH1,
        1 => Channel::CH6,
        _ => Channel::CH11,
    }
}

fn main() {
    let phy = PhyParams::b11();
    micro("radio_switch_cycle", || {
        let mut radio = Radio::new(Channel::CH1);
        let done = radio.start_switch(SimTime::ZERO, Channel::CH6, &phy, 4);
        black_box(radio.listening_on(done))
    })
    .print_row();

    let mut driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::MultiChannelMultiAp {
            period: SimDuration::from_millis(600),
        },
        1,
    ));
    let mut t = 0u64;
    micro("spider_schedule_boundary_poll", || {
        t += 200;
        let actions = driver.poll(SimTime::from_millis(t));
        driver.on_switch_complete(SimTime::from_millis(t + 5), driver_channel(t));
        black_box(actions.len())
    })
    .print_row();
}
