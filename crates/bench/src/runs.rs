//! Standard experiment runs shared across binaries.

use spider_baselines::{StockConfig, StockDriver};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientSystem;
use spider_simcore::{forked_sweep_with, sweep, sweep_with, worker_count, Json, SimDuration};
use spider_wire::Channel;
use spider_workloads::metrics::RunResult;
use spider_workloads::scenarios::{boston_scenario, town_scenario, ScenarioParams};
use spider_workloads::{World, WorldConfig};

// Send/Sync audit for the parallel sweep runner: every input a sweep
// job needs to *build* a world (and every output it hands back) must
// cross a thread boundary. Spelling the bounds out here turns a lost
// `Send` — say, an `Rc` slipping into a config — into a compile error
// at the layer that owns the jobs, not an opaque one inside a closure.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ScenarioParams>();
    assert_send_sync::<WorldConfig>();
    assert_send_sync::<SpiderConfig>();
    assert_send_sync::<StockConfig>();
    assert_send_sync::<ChannelSchedule>();
    assert_send::<RunResult>();
};

/// Emit one labelled batch of runs as a JSON artifact under
/// `target/experiments/`. Each entry is [`RunResult::to_json`], so two
/// deterministic batches produce byte-identical files — diffing
/// artifacts across machines or worker counts doubles as a determinism
/// check. Returns the path written.
pub fn emit_runs_json(name: &str, runs: &[(String, RunResult)]) -> std::path::PathBuf {
    let doc = Json::obj([(
        "runs",
        Json::arr(runs.iter().map(|(label, r)| {
            Json::obj([("config", Json::str(label.clone())), ("run", r.to_json())])
        })),
    )]);
    crate::output::write_json(name, &doc)
}

/// Standard town-drive parameters used by the §4 experiments (30-minute
/// loop drive at 10 m/s through the measured channel mix).
pub fn town_params(seed: u64) -> ScenarioParams {
    ScenarioParams {
        duration: SimDuration::from_secs(1_800),
        seed,
        ..Default::default()
    }
}

/// Deployment seed pinned across the Table 2 seed fan. Every seed
/// shares one physical town (and one Boston variant), so seeds diverge
/// only in world RNG — beacon phases, DHCP draws, loss — which is
/// exactly the shape [`World::rebase_seed`] can serve from a single
/// constructed world per row (DESIGN.md §13).
pub const TABLE2_DEPLOY_SEED: u64 = 1;

/// [`town_params`] with the deployment pinned to
/// [`TABLE2_DEPLOY_SEED`]: the Table 2 fan's per-seed parameters.
pub fn table2_params(seed: u64) -> ScenarioParams {
    ScenarioParams {
        deploy_seed: Some(TABLE2_DEPLOY_SEED),
        ..town_params(seed)
    }
}

/// Whether seed fans fork from one constructed world per configuration
/// (the default) or reconstruct every world cold. `SPIDER_FORK=0`
/// forces the cold leg; output is byte-identical either way, and CI
/// diffs the two legs' artifacts.
pub fn fork_enabled() -> bool {
    std::env::var("SPIDER_FORK").map_or(true, |v| v.trim() != "0")
}

/// Run any client system through a world.
pub fn run_driver<C: ClientSystem>(cfg: WorldConfig, client: C) -> RunResult {
    World::new(cfg, client).run()
}

/// A constructed Table 2 row world, ready to fan across seeds via
/// [`World::rebase_seed`]. Rows 0–4 drive Spider and row 5 the stock
/// baseline; one enum lets the heterogeneous rows share a single
/// forked sweep.
// Both variants are full Worlds (kilobytes each, six instances per
// fan run); boxing would add indirection without meaningfully
// shrinking anything that matters at this scale.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum Table2Base {
    /// A Spider-driven row (rows 0–4).
    Spider(World<SpiderDriver>),
    /// The stock-driver baseline row (row 5).
    Stock(World<StockDriver>),
}

impl Table2Base {
    /// Construct row `row`'s world under `seed`. The deployment is
    /// always pinned to [`TABLE2_DEPLOY_SEED`]; `seed` sets only the
    /// world RNG streams.
    pub fn build_for(row: usize, seed: u64) -> Table2Base {
        Self::build_scaled(row, seed, None)
    }

    /// [`Table2Base::build_for`] with an optional duration override —
    /// bench and smoke miniatures of the fan run shortened drives.
    pub fn build_scaled(row: usize, seed: u64, duration: Option<SimDuration>) -> Table2Base {
        let params = |seed| {
            let mut p = table2_params(seed);
            if let Some(d) = duration {
                p.duration = d;
            }
            p
        };
        let period = StdConfigs::period();
        let spider_mode = match row {
            0 => OperationMode::SingleChannelMultiAp(Channel::CH1),
            1 => OperationMode::SingleChannelSingleAp(Channel::CH1),
            2 => OperationMode::MultiChannelMultiAp { period },
            3 => OperationMode::MultiChannelSingleAp { period },
            // Cambridge (Boston mix): channel 6 single-AP, the external
            // validation row.
            4 => {
                let spider =
                    SpiderConfig::for_mode(OperationMode::SingleChannelSingleAp(Channel::CH6), 1);
                return Table2Base::Spider(World::new(
                    boston_scenario(&params(seed)),
                    SpiderDriver::new(spider),
                ));
            }
            5 => {
                return Table2Base::Stock(World::new(
                    town_scenario(&params(seed)),
                    StockDriver::new(StockConfig::stock(1)),
                ));
            }
            _ => panic!("table2 has {} rows", StdConfigs::TABLE2_ROWS),
        };
        Table2Base::Spider(World::new(
            town_scenario(&params(seed)),
            SpiderDriver::new(SpiderConfig::for_mode(spider_mode, 1)),
        ))
    }

    /// Construct row `row`'s shared fan base (seeded with
    /// [`TABLE2_DEPLOY_SEED`]; per-seed forks rebase from it).
    pub fn build(row: usize) -> Table2Base {
        Self::build_for(row, TABLE2_DEPLOY_SEED)
    }

    /// Run the world as constructed.
    pub fn run(self) -> RunResult {
        match self {
            Table2Base::Spider(w) => w.run(),
            Table2Base::Stock(w) => w.run(),
        }
    }

    /// Run one seed of the fan: re-derive every RNG stream under `seed`
    /// and run. Bit-identical to [`Table2Base::build_for`]`(row, seed)`
    /// followed by [`run`](Self::run) — the prefix-tree gate in
    /// `bench_world` byte-diffs exactly that.
    pub fn run_seed(self, seed: u64) -> RunResult {
        match self {
            Table2Base::Spider(mut w) => {
                w.rebase_seed(seed);
                w.run()
            }
            Table2Base::Stock(mut w) => {
                w.rebase_seed(seed);
                w.run()
            }
        }
    }
}

/// Run Spider with the given configuration.
pub fn spider_run(cfg: WorldConfig, spider: SpiderConfig) -> RunResult {
    run_driver(cfg, SpiderDriver::new(spider))
}

/// The standard §4 configurations, each paired with the label used in
/// the paper's Table 2.
pub struct StdConfigs;

impl StdConfigs {
    /// The paper's multi-channel scheduling period (600 ms over 1/6/11).
    pub fn period() -> SimDuration {
        SimDuration::from_millis(600)
    }

    /// Number of rows in [`StdConfigs::table2`].
    pub const TABLE2_ROWS: usize = 6;

    /// Label of Table 2 row `row` (see [`StdConfigs::table2`]).
    pub fn table2_label(row: usize) -> &'static str {
        match row {
            0 => "(1) Channel 1, Multi-AP",
            1 => "(2) Channel 1, Single-AP",
            2 => "(3) Multi-channel, Multi-AP",
            3 => "(4) Multi-channel, Single-AP",
            4 => "(2) Channel 6, Single-AP (Cambridge)",
            5 => "MadWiFi driver",
            _ => panic!("table2 has {} rows", Self::TABLE2_ROWS),
        }
    }

    /// Run Table 2 row `row` on `seed` cold — construct the world from
    /// scratch and run it. The unit of work of the cold leg, and the
    /// reference the forked leg must match byte-for-byte.
    pub fn table2_row(row: usize, seed: u64) -> RunResult {
        Table2Base::build_for(row, seed).run()
    }

    /// Table 2's four Spider rows on the town drive (plus MadWiFi), with
    /// the Cambridge rows from the Boston scenario. Rows run as one
    /// parallel sweep; the returned order is always the row order.
    pub fn table2(seed: u64) -> Vec<(String, RunResult)> {
        let jobs: Vec<usize> = (0..Self::TABLE2_ROWS).collect();
        let results = sweep(&jobs, |&row| Self::table2_row(row, seed));
        jobs.iter()
            .zip(results)
            .map(|(&row, result)| (Self::table2_label(row).to_string(), result))
            .collect()
    }

    /// [`StdConfigs::table2`] across several seeds as one flat sweep:
    /// one entry per row, carrying that row's per-seed results in seed
    /// order. Honours [`fork_enabled`] (`SPIDER_FORK=0` runs the cold
    /// leg).
    pub fn table2_seeds(seeds: &[u64]) -> Vec<(String, Vec<RunResult>)> {
        Self::table2_fan(seeds, fork_enabled(), worker_count())
    }

    /// The Table 2 seed fan with explicit legs. `forked` constructs
    /// each row's world once ([`Table2Base::build`]) and serves every
    /// seed by [`World::rebase_seed`] forks; cold reconstructs per
    /// `(row, seed)`. Both legs are byte-identical at any worker count
    /// — the `prefix_tree` gate in `bench_world` enforces it.
    pub fn table2_fan(
        seeds: &[u64],
        forked: bool,
        workers: usize,
    ) -> Vec<(String, Vec<RunResult>)> {
        Self::table2_fan_scaled(seeds, forked, workers, None)
    }

    /// [`StdConfigs::table2_fan`] with an optional duration override,
    /// so the `prefix_tree` bench can gate byte-identity on a
    /// shortened miniature of the real fan.
    pub fn table2_fan_scaled(
        seeds: &[u64],
        forked: bool,
        workers: usize,
        duration: Option<SimDuration>,
    ) -> Vec<(String, Vec<RunResult>)> {
        // Seed-major job order; each job's base index is its row.
        let jobs: Vec<(usize, u64)> = seeds
            .iter()
            .flat_map(|&seed| (0..Self::TABLE2_ROWS).map(move |row| (row, seed)))
            .collect();
        let flat: Vec<RunResult> = if forked {
            let rows: Vec<usize> = (0..Self::TABLE2_ROWS).collect();
            forked_sweep_with(
                &rows,
                &jobs,
                |&row| Table2Base::build_scaled(row, TABLE2_DEPLOY_SEED, duration),
                |base, &seed| base.run_seed(seed),
                workers,
            )
        } else {
            sweep_with(
                &jobs,
                |&(row, seed)| Table2Base::build_scaled(row, seed, duration).run(),
                workers,
            )
        };
        let mut results: Vec<Option<RunResult>> = flat.into_iter().map(Some).collect();
        (0..Self::TABLE2_ROWS)
            .map(|row| {
                let per_seed = (0..seeds.len())
                    .map(|s| {
                        results[s * Self::TABLE2_ROWS + row]
                            .take()
                            .expect("each (row, seed) job runs exactly once")
                    })
                    .collect();
                (Self::table2_label(row).to_string(), per_seed)
            })
            .collect()
    }

    /// A Spider run on the town drive with an arbitrary channel schedule
    /// (used by the figure-5/6/7/8 style schedule sweeps).
    pub fn scheduled_town(seed: u64, schedule: ChannelSchedule) -> RunResult {
        let world = town_scenario(&town_params(seed));
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: schedule.period(),
            },
            1,
        )
        .with_schedule(schedule);
        spider_run(world, cfg)
    }

    /// The §2.2 schedule family: fraction `x` of the period on channel 6,
    /// the remainder split between channels 1 and 11 (`D = 400 ms`).
    pub fn f6_schedule(x: f64) -> ChannelSchedule {
        let period = SimDuration::from_millis(400);
        if x >= 1.0 {
            ChannelSchedule::single(Channel::CH6)
        } else {
            let rest = (1.0 - x) / 2.0;
            ChannelSchedule::custom(
                period,
                vec![
                    (Channel::CH6, x),
                    (Channel::CH1, rest),
                    (Channel::CH11, rest),
                ],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_labels_cover_every_row() {
        let labels: Vec<&str> = (0..StdConfigs::TABLE2_ROWS)
            .map(StdConfigs::table2_label)
            .collect();
        assert_eq!(labels.len(), 6);
        assert!(labels[0].contains("Multi-AP"));
        assert!(labels[4].contains("Cambridge"));
        assert!(labels[5].contains("MadWiFi"));
    }

    #[test]
    fn f6_schedule_fractions() {
        let s = StdConfigs::f6_schedule(0.5);
        assert!((s.fraction(Channel::CH6) - 0.5).abs() < 1e-9);
        assert!((s.fraction(Channel::CH1) - 0.25).abs() < 1e-9);
        let full = StdConfigs::f6_schedule(1.0);
        assert!(full.is_single_channel());
    }

    #[test]
    fn rebase_fan_matches_cold_on_a_short_drive() {
        // A 60-second miniature of the Table 2 fan: one constructed
        // base serving two seeds must be byte-identical to cold
        // construction under each seed.
        let short = |seed| {
            let mut p = table2_params(seed);
            p.duration = SimDuration::from_secs(60);
            p
        };
        let driver = || {
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::MultiChannelMultiAp {
                    period: StdConfigs::period(),
                },
                1,
            ))
        };
        let base = World::new(town_scenario(&short(TABLE2_DEPLOY_SEED)), driver());
        for seed in [2u64, 9] {
            let forked = base.fork_with_seed(seed).run();
            let cold = World::new(town_scenario(&short(seed)), driver()).run();
            assert_eq!(
                forked.to_json().pretty(),
                cold.to_json().pretty(),
                "seed {seed}: forked fan diverged from cold construction"
            );
        }
    }

    #[test]
    fn short_table2_smoke() {
        // A 60-second version of the Table 2 run as a smoke test.
        let mut params = town_params(3);
        params.duration = SimDuration::from_secs(60);
        let world = town_scenario(&params);
        let result = spider_run(
            world,
            SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH1), 1),
        );
        assert!(result.duration == SimDuration::from_secs(60));
    }
}
