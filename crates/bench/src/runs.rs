//! Standard experiment runs shared across binaries.

use spider_baselines::{StockConfig, StockDriver};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientSystem;
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::metrics::RunResult;
use spider_workloads::scenarios::{boston_scenario, town_scenario, ScenarioParams};
use spider_workloads::{World, WorldConfig};

/// Standard town-drive parameters used by the §4 experiments (30-minute
/// loop drive at 10 m/s through the measured channel mix).
pub fn town_params(seed: u64) -> ScenarioParams {
    ScenarioParams {
        duration: SimDuration::from_secs(1_800),
        seed,
        ..Default::default()
    }
}

/// Run any client system through a world.
pub fn run_driver<C: ClientSystem>(cfg: WorldConfig, client: C) -> RunResult {
    World::new(cfg, client).run()
}

/// Run Spider with the given configuration.
pub fn spider_run(cfg: WorldConfig, spider: SpiderConfig) -> RunResult {
    run_driver(cfg, SpiderDriver::new(spider))
}

/// The standard §4 configurations, each paired with the label used in
/// the paper's Table 2.
pub struct StdConfigs;

impl StdConfigs {
    /// The paper's multi-channel scheduling period (600 ms over 1/6/11).
    pub fn period() -> SimDuration {
        SimDuration::from_millis(600)
    }

    /// Table 2's four Spider rows on the town drive (plus MadWiFi), with
    /// the Cambridge rows from the Boston scenario.
    pub fn table2(seed: u64) -> Vec<(String, RunResult)> {
        let period = Self::period();
        let mut out = Vec::new();
        let configs = [
            (
                "(1) Channel 1, Multi-AP",
                OperationMode::SingleChannelMultiAp(Channel::CH1),
            ),
            (
                "(2) Channel 1, Single-AP",
                OperationMode::SingleChannelSingleAp(Channel::CH1),
            ),
            (
                "(3) Multi-channel, Multi-AP",
                OperationMode::MultiChannelMultiAp { period },
            ),
            (
                "(4) Multi-channel, Single-AP",
                OperationMode::MultiChannelSingleAp { period },
            ),
        ];
        for (label, mode) in configs {
            let world = town_scenario(&town_params(seed));
            let result = spider_run(world, SpiderConfig::for_mode(mode, 1));
            out.push((label.to_string(), result));
        }
        // Cambridge (Boston mix): channel 6 single-AP, the external
        // validation row.
        let world = boston_scenario(&town_params(seed));
        let result = spider_run(
            world,
            SpiderConfig::for_mode(OperationMode::SingleChannelSingleAp(Channel::CH6), 1),
        );
        out.push(("(2) Channel 6, Single-AP (Cambridge)".to_string(), result));
        // Stock MadWiFi.
        let world = town_scenario(&town_params(seed));
        let result = run_driver(world, StockDriver::new(StockConfig::stock(1)));
        out.push(("MadWiFi driver".to_string(), result));
        out
    }

    /// A Spider run on the town drive with an arbitrary channel schedule
    /// (used by the figure-5/6/7/8 style schedule sweeps).
    pub fn scheduled_town(seed: u64, schedule: ChannelSchedule) -> RunResult {
        let world = town_scenario(&town_params(seed));
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: schedule.period(),
            },
            1,
        )
        .with_schedule(schedule);
        spider_run(world, cfg)
    }

    /// The §2.2 schedule family: fraction `x` of the period on channel 6,
    /// the remainder split between channels 1 and 11 (`D = 400 ms`).
    pub fn f6_schedule(x: f64) -> ChannelSchedule {
        let period = SimDuration::from_millis(400);
        if x >= 1.0 {
            ChannelSchedule::single(Channel::CH6)
        } else {
            let rest = (1.0 - x) / 2.0;
            ChannelSchedule::custom(
                period,
                vec![
                    (Channel::CH6, x),
                    (Channel::CH1, rest),
                    (Channel::CH11, rest),
                ],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f6_schedule_fractions() {
        let s = StdConfigs::f6_schedule(0.5);
        assert!((s.fraction(Channel::CH6) - 0.5).abs() < 1e-9);
        assert!((s.fraction(Channel::CH1) - 0.25).abs() < 1e-9);
        let full = StdConfigs::f6_schedule(1.0);
        assert!(full.is_single_channel());
    }

    #[test]
    fn short_table2_smoke() {
        // A 60-second version of the Table 2 run as a smoke test.
        let mut params = town_params(3);
        params.duration = SimDuration::from_secs(60);
        let world = town_scenario(&params);
        let result = spider_run(
            world,
            SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH1), 1),
        );
        assert!(result.duration == SimDuration::from_secs(60));
    }
}
