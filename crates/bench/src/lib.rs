//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! prints the same rows/series the paper reports and drops a CSV under
//! `target/experiments/`. Run them with `--release`; a full experiment
//! is a 30-minute simulated drive and takes well under a second of wall
//! time per configuration.
//!
//! Performance tracking lives here too: [`harness`] is the hermetic
//! micro-bench runner behind `cargo bench`, and [`worldbench`] plus the
//! `bench_world` binary produce the repository's tracked
//! `BENCH_world.json` engine figures.

#![forbid(unsafe_code)]

pub mod harness;
pub mod output;
pub mod runs;
pub mod worldbench;

pub use harness::{cdf_quantiles, CdfRow};
pub use output::{print_table, write_csv, write_json, write_text, OutDir};
pub use runs::{emit_runs_json, run_driver, spider_run, town_params, StdConfigs};
