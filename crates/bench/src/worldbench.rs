//! The macro benchmark: full `World` runs under fixed-seed workloads.
//!
//! Three scenarios exercise the engine's distinct regimes:
//!
//! * `sparse_commute` — a 10-minute drive at the default suburban AP
//!   density. Dominated by TCP/beacon traffic to a handful of in-range
//!   APs; the historical steady state.
//! * `dense_downtown` — a 30-minute drive through a deployment of more
//!   than 1,000 sites. This is the scenario the spatial grid index
//!   exists for: without it every tick scans every AP.
//! * `chaos_storm` — the dense deployment under a seeded stormy
//!   [`FaultPlan`](spider_workloads::FaultPlan), stressing the fault
//!   lookup path on every frame and the periodic fault sweep.
//!
//! Every scenario is a pure function of its seed, so the numbers in
//! `BENCH_world.json` are reproducible modulo machine speed. The
//! `--check` mode of the `bench_world` binary compares fresh
//! events/sec against the checked-in JSON and fails on a >2x drop.

use crate::runs::StdConfigs;
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{worker_count, Json, SimDuration, SimTime};
use spider_wire::Channel;
use spider_workloads::campaign::{
    run_campaign, run_campaign_forked, shrink_schedule, CampaignConfig, ChaosProfile,
    CheckpointCache, SloMetric, SloRule, SloTable,
};
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::{FaultEpisode, FaultKind, FaultPlan, FaultProfile, World};
use std::time::Instant;

/// Factor by which events/sec may drop versus the checked-in baseline
/// before `--check` fails the run.
pub const REGRESSION_FACTOR: f64 = 2.0;

/// One fixed-seed benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Stable name, used as the JSON key and the `--check` join key.
    pub name: &'static str,
    /// Simulated run length in seconds.
    pub sim_secs: u64,
    /// Deployment density (open APs per km of road).
    pub density_per_km: f64,
    /// World seed (deployment, DHCP, loss, backhaul draws).
    pub seed: u64,
    /// Overlay a seeded stormy fault plan (seed [`STORM_SEED`]).
    pub storm: bool,
    /// Minimum deployment size the run asserts (0 = no floor).
    pub min_sites: usize,
}

/// Seed for the `chaos_storm` fault plan.
pub const STORM_SEED: u64 = 99;

/// The benchmark suite. `fast` shortens simulated durations for CI
/// smoke runs; the deployments (and therefore the engine's data-
/// structure sizes) are identical in both modes, so events/sec stays
/// comparable across modes.
pub fn scenarios(fast: bool) -> Vec<ScenarioSpec> {
    let scale = |secs: u64| if fast { (secs / 10).max(30) } else { secs };
    vec![
        ScenarioSpec {
            name: "sparse_commute",
            sim_secs: scale(600),
            density_per_km: 12.0,
            seed: 42,
            storm: false,
            min_sites: 0,
        },
        ScenarioSpec {
            name: "dense_downtown",
            sim_secs: scale(1_800),
            density_per_km: 220.0,
            seed: 42,
            storm: false,
            min_sites: 1_000,
        },
        ScenarioSpec {
            name: "chaos_storm",
            sim_secs: scale(300),
            density_per_km: 220.0,
            seed: 42,
            storm: true,
            min_sites: 1_000,
        },
    ]
}

/// Measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Deployment size actually generated.
    pub sites: usize,
    /// World seed.
    pub seed: u64,
    /// Simulated seconds.
    pub sim_secs: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Discrete events processed.
    pub events: u64,
    /// Events per wall-clock second — the headline figure.
    pub events_per_sec: f64,
    /// Application bytes delivered (a cheap cross-run sanity anchor).
    pub bytes: u64,
}

/// Build and run one scenario, timing the whole `World::run`.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioResult {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(spec.sim_secs),
        seed: spec.seed,
        density_per_km: spec.density_per_km,
        ..Default::default()
    };
    let mut cfg = town_scenario(&params);
    let sites = cfg.deployment.len();
    assert!(
        sites >= spec.min_sites,
        "{}: deployment has {sites} sites, benchmark requires >= {}",
        spec.name,
        spec.min_sites
    );
    if spec.storm {
        cfg.faults = FaultPlan::seeded(STORM_SEED, sites, cfg.duration, &FaultProfile::stormy());
    }
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        1,
    ));
    let t = Instant::now();
    let result = World::new(cfg, driver).run();
    let wall_secs = t.elapsed().as_secs_f64();
    ScenarioResult {
        name: spec.name.to_string(),
        sites,
        seed: spec.seed,
        sim_secs: spec.sim_secs,
        wall_secs,
        events: result.events,
        events_per_sec: result.events as f64 / wall_secs.max(1e-9),
        bytes: result.bytes,
    }
}

/// Pre-rewrite engine figures, measured on the same scenarios at commit
/// `cb89511` (linear AP scans, deep-copied frames, flat fault plan).
/// Kept in the JSON so the speedup claim travels with the numbers.
pub const PRE_PR_DENSE_EVENTS_PER_SEC: f64 = 2_489_000.0;

/// Measured outcome of the sweep-runner suite benchmark: the same
/// batch of experiment jobs run cold on one worker and as the forked
/// seed fan on the worker pool.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Number of independent experiment jobs in the batch.
    pub jobs: usize,
    /// Worker threads used for the parallel (forked) leg.
    pub workers: usize,
    /// Wall-clock seconds for the serial cold leg (1 worker, every
    /// world constructed from scratch).
    pub serial_wall_secs: f64,
    /// Wall-clock seconds for the parallel forked leg.
    pub parallel_wall_secs: f64,
    /// Total simulated events of the cold leg. Deterministic — a pure
    /// function of the job list — unlike wall seconds.
    pub events_cold: u64,
    /// Total simulated events of the forked leg. Equal to
    /// [`events_cold`](Self::events_cold) exactly when the fan is
    /// bit-identical (forking shares construction, not events).
    pub events_forked: u64,
    /// The forked fan's results equalled the cold leg byte for byte —
    /// the deterministic gate. Wall-clock speedup stays informational:
    /// a 1-vCPU CI runner legitimately measures 1.00.
    pub fan_identical: bool,
}

impl SuiteResult {
    /// Serial / parallel wall-time ratio (informational; machine
    /// dependent).
    pub fn speedup(&self) -> f64 {
        self.serial_wall_secs / self.parallel_wall_secs.max(1e-9)
    }
}

/// Benchmark the sweep runner on a representative slice of the
/// experiment suite: Table 2's six configurations across three seeds
/// (one seed in fast mode), i.e. real 30-minute `World` drives, not a
/// synthetic load. Runs the identical batch twice — once cold on one
/// worker, once as the [`StdConfigs::table2_fan`] forked leg on
/// [`worker_count`] workers — and asserts the results are byte-
/// identical, which is the sweep *and* fork determinism contract
/// measured on the real workload. The event totals of both legs are
/// recorded so the gate rests on deterministic numbers, not on
/// machine-dependent wall-clock speedup.
pub fn run_suite_bench(fast: bool) -> SuiteResult {
    let seeds: &[u64] = if fast { &[1] } else { &[1, 2, 3] };

    let t = Instant::now();
    let cold = StdConfigs::table2_fan(seeds, false, 1);
    let serial_wall_secs = t.elapsed().as_secs_f64();

    let workers = worker_count();
    let t = Instant::now();
    let forked = StdConfigs::table2_fan(seeds, true, workers);
    let parallel_wall_secs = t.elapsed().as_secs_f64();

    let render = |fan: &[(String, Vec<spider_workloads::RunResult>)]| -> Vec<String> {
        fan.iter()
            .flat_map(|(_, rs)| rs.iter().map(|r| r.to_json().pretty()))
            .collect()
    };
    let fan_identical = render(&cold) == render(&forked);
    assert!(
        fan_identical,
        "suite bench: forked seed fan diverged from the cold serial leg"
    );
    let events = |fan: &[(String, Vec<spider_workloads::RunResult>)]| -> u64 {
        fan.iter()
            .flat_map(|(_, rs)| rs.iter().map(|r| r.events))
            .sum()
    };

    SuiteResult {
        jobs: seeds.len() * StdConfigs::TABLE2_ROWS,
        workers,
        serial_wall_secs,
        parallel_wall_secs,
        events_cold: events(&cold),
        events_forked: events(&forked),
        fan_identical,
    }
}

/// Measured outcome of the checkpoint/fork engine benchmark
/// (DESIGN.md §13): one cold run vs the same run resumed from a
/// mid-run checkpoint, and a full shrink campaign evaluated cold vs
/// through a [`CheckpointCache`].
#[derive(Debug, Clone)]
pub struct CheckpointResult {
    /// Deployment size of the benchmark world.
    pub sites: usize,
    /// Simulated seconds per world run.
    pub sim_secs: u64,
    /// Wall-clock seconds for the cold run of the failing schedule.
    pub cold_wall_secs: f64,
    /// Wall-clock seconds to finish the same run from a checkpoint
    /// taken just before the first episode (prefix already paid).
    pub fork_wall_secs: f64,
    /// The forked run's `RunResult` equalled the cold run's, bit for
    /// bit — the identity anchor the wall-clock comparison rests on.
    pub identical: bool,
    /// `still_fails` evaluations the shrinker spent (same in both legs
    /// by construction).
    pub shrink_evals: usize,
    /// Wall-clock seconds for the shrink campaign with every
    /// evaluation simulated from `t = 0`.
    pub shrink_cold_wall_secs: f64,
    /// Wall-clock seconds for the same campaign through the
    /// checkpoint cache.
    pub shrink_forked_wall_secs: f64,
    /// Events a cold evaluation of every candidate would have cost.
    pub shrink_events_cold: u64,
    /// Events the forked campaign actually simulated (advances plus
    /// post-divergence suffixes).
    pub shrink_events_simulated: u64,
    /// Both legs minimized to the identical schedule in the same
    /// number of evaluations.
    pub minimized_identical: bool,
}

impl CheckpointResult {
    /// Simulated-event reduction of the forked shrink campaign — the
    /// machine-independent headline (event counts are deterministic).
    pub fn events_ratio(&self) -> f64 {
        self.shrink_events_cold as f64 / self.shrink_events_simulated.max(1) as f64
    }

    /// Render as the `checkpoint` section of `BENCH_world.json`. Keys
    /// are distinct from the scenario `name`/`events_per_sec` keys so
    /// the line-oriented `--check` parser never sees them.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "note",
                Json::str(
                    "checkpoint/fork engine on a late-fault schedule: resume vs cold, \
                     and the shrink campaign through the checkpoint cache",
                ),
            ),
            ("sites", Json::UInt(self.sites as u64)),
            ("sim_seconds", Json::UInt(self.sim_secs)),
            (
                "resume",
                Json::obj([
                    ("cold_wall_seconds", Json::Num(self.cold_wall_secs)),
                    ("forked_wall_seconds", Json::Num(self.fork_wall_secs)),
                    ("bit_identical", Json::Bool(self.identical)),
                ]),
            ),
            (
                "shrink_campaign",
                Json::obj([
                    ("evals", Json::UInt(self.shrink_evals as u64)),
                    ("cold_wall_seconds", Json::Num(self.shrink_cold_wall_secs)),
                    (
                        "forked_wall_seconds",
                        Json::Num(self.shrink_forked_wall_secs),
                    ),
                    ("events_cold", Json::UInt(self.shrink_events_cold)),
                    ("events_simulated", Json::UInt(self.shrink_events_simulated)),
                    ("events_ratio", Json::Num(self.events_ratio())),
                    ("minimized_identical", Json::Bool(self.minimized_identical)),
                ]),
            ),
        ])
    }
}

/// Seed for the checkpoint benchmark's world (campaign-style town).
const CHECKPOINT_WORLD_SEED: u64 = 7;

/// The failing schedule the checkpoint benchmark shrinks: compound
/// faults concentrated in the final tenth of the drive. This is the
/// regime the fork engine targets — shrink candidates differ from the
/// reference only late in simulated time, so evaluations resume a long
/// shared prefix instead of re-simulating it. The window is kept this
/// late deliberately: fault episodes are event-dense (retries,
/// rescans), so the events saved by sharing the prefix track the
/// *quiet* fraction of the drive, not just the time fraction.
fn checkpoint_bench_plan(duration: SimDuration) -> FaultPlan {
    let at = |f: f64| SimTime::ZERO + SimDuration::from_secs_f64(duration.as_secs_f64() * f);
    FaultPlan::scripted(vec![
        FaultEpisode {
            ap: None,
            kind: FaultKind::LossBurst { extra: 0.4 },
            start: at(0.90),
            end: at(0.98),
        },
        FaultEpisode {
            ap: None,
            kind: FaultKind::Blackout,
            start: at(0.905),
            end: at(0.925),
        },
        FaultEpisode {
            ap: None,
            kind: FaultKind::Zombie,
            start: at(0.93),
            end: at(0.95),
        },
        FaultEpisode {
            ap: None,
            kind: FaultKind::DhcpSilence,
            start: at(0.955),
            end: at(0.975),
        },
    ])
}

/// Benchmark the checkpoint/fork engine (DESIGN.md §13) on a
/// campaign-style town drive with [`checkpoint_bench_plan`] faults.
///
/// Two legs, both asserting bit-identity against cold runs:
///
/// * **resume** — the failing schedule run cold, then finished from a
///   checkpoint taken just before its first episode;
/// * **shrink campaign** — [`shrink_schedule`] under an unmeetable SLO
///   table, once evaluating every candidate from `t = 0` and once
///   through a [`CheckpointCache`], comparing wall-clock, simulated
///   events, and the minimized artifact.
pub fn run_checkpoint_bench(fast: bool) -> CheckpointResult {
    let sim_secs: u64 = if fast { 120 } else { 300 };
    let duration = SimDuration::from_secs(sim_secs);
    let params = ScenarioParams {
        duration,
        seed: CHECKPOINT_WORLD_SEED,
        density_per_km: 40.0,
        ..Default::default()
    };
    let sites = town_scenario(&params).deployment.len();
    let make = |plan: &FaultPlan| {
        let mut cfg = town_scenario(&params);
        cfg.faults = plan.clone();
        World::new(
            cfg,
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH6),
                1,
            )),
        )
    };
    let plan = checkpoint_bench_plan(duration);
    // Any detection at all violates: forces the shrinker to work.
    let slo = SloTable {
        rules: vec![
            SloRule {
                metric: SloMetric::MaxDetectS("blackout"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("zombie"),
                budget: 0.0,
            },
        ],
    };

    // Leg 1: cold run vs fork-resumed run of the same schedule.
    let t = Instant::now();
    let cold = make(&plan).run();
    let cold_wall_secs = t.elapsed().as_secs_f64();
    let first_start = plan
        .episodes
        .iter()
        .map(|e| e.start)
        .min()
        .expect("bench plan has episodes");
    let boundary = SimTime::from_micros(first_start.as_micros() - 1);
    let (base, _, _) = make(&FaultPlan::none()).advance_shared(boundary, first_start);
    let t = Instant::now();
    let forked = base.fork_with_plan(plan.clone()).finish().0;
    let fork_wall_secs = t.elapsed().as_secs_f64();
    let identical = forked == cold;

    // Leg 2: the shrink campaign, cold vs through the checkpoint cache.
    let budget = 60;
    let mut events_cold_total = 0u64;
    let t = Instant::now();
    let cold_outcome = shrink_schedule(&plan, budget, |p| {
        let r = make(p).run();
        events_cold_total += r.events;
        !slo.evaluate(&r).is_empty()
    });
    let shrink_cold_wall_secs = t.elapsed().as_secs_f64();

    let mut cache = CheckpointCache::new(&make, plan.clone());
    let t = Instant::now();
    let forked_outcome = shrink_schedule(&plan, budget, |p| {
        let fails = !slo.evaluate(&cache.run_plan(p)).is_empty();
        if fails {
            cache.adopt(p.clone());
        }
        fails
    });
    let shrink_forked_wall_secs = t.elapsed().as_secs_f64();

    CheckpointResult {
        sites,
        sim_secs,
        cold_wall_secs,
        fork_wall_secs,
        identical,
        shrink_evals: cold_outcome.evals,
        shrink_cold_wall_secs,
        shrink_forked_wall_secs,
        shrink_events_cold: events_cold_total,
        shrink_events_simulated: cache.stats.events_simulated,
        minimized_identical: cold_outcome.plan == forked_outcome.plan
            && cold_outcome.evals == forked_outcome.evals,
    }
}

/// Measured outcome of the checkpoint prefix-tree benchmark: the
/// Table 2 seed fan served by [`World::rebase_seed`]
/// forks of one constructed world per row, and a chaos campaign whose
/// trials fork from a divergence trie instead of each simulating its
/// own prefix (DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct PrefixTreeResult {
    /// Seeds in the fan leg.
    pub fan_seeds: usize,
    /// `(row, seed)` jobs in the fan leg.
    pub fan_jobs: usize,
    /// Simulated seconds per fan job (a shortened miniature of the
    /// real 1800 s fan; identity is duration-independent).
    pub fan_sim_secs: u64,
    /// Wall seconds for the cold fan leg (every world from scratch).
    pub fan_cold_wall_secs: f64,
    /// Wall seconds for the forked fan leg.
    pub fan_forked_wall_secs: f64,
    /// Forked fan output byte-identical to cold on 1 worker.
    pub fan_identical_w1: bool,
    /// Forked fan output byte-identical to cold on 4 workers.
    pub fan_identical_w4: bool,
    /// Trials in the campaign leg.
    pub campaign_trials: usize,
    /// Wall seconds for the cold campaign ([`run_campaign`]).
    pub campaign_cold_wall_secs: f64,
    /// Wall seconds for the forked campaign through the trie.
    pub campaign_forked_wall_secs: f64,
    /// Events the cold path would simulate for the same campaign
    /// (deterministic, from [`ForkStats`]).
    pub campaign_events_cold: u64,
    /// Events the forked campaign actually simulated (tree advances
    /// plus post-divergence suffixes, shrink phase included).
    pub campaign_events_simulated: u64,
    /// Forked [`CampaignReport`] byte-identical to the cold report.
    pub campaign_identical: bool,
    /// Depth of the campaign's divergence trie.
    pub tree_depth: usize,
    /// Checkpoints the forked campaign materialized.
    pub checkpoints: usize,
    /// Events trials served from shared checkpoints (per-edge sum).
    pub events_shared: u64,
}

impl PrefixTreeResult {
    /// Simulated-event reduction of the forked campaign — the
    /// machine-independent headline the `bench_world` gate enforces
    /// (>= 1.3 in both modes).
    pub fn campaign_events_ratio(&self) -> f64 {
        self.campaign_events_cold as f64 / self.campaign_events_simulated.max(1) as f64
    }

    /// Render as the `prefix_tree` section of `BENCH_world.json`. Keys
    /// are distinct from the scenario `name`/`events_per_sec` keys so
    /// the line-oriented `--check` parser never sees them.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "note",
                Json::str(
                    "checkpoint prefix-tree: Table 2 seed fan via World::rebase_seed forks, \
                     and cross-trial checkpoint sharing through the campaign divergence trie",
                ),
            ),
            (
                "seed_fan",
                Json::obj([
                    ("seeds", Json::UInt(self.fan_seeds as u64)),
                    ("jobs", Json::UInt(self.fan_jobs as u64)),
                    ("sim_seconds", Json::UInt(self.fan_sim_secs)),
                    ("cold_wall_seconds", Json::Num(self.fan_cold_wall_secs)),
                    ("forked_wall_seconds", Json::Num(self.fan_forked_wall_secs)),
                    ("identical_1_worker", Json::Bool(self.fan_identical_w1)),
                    ("identical_4_workers", Json::Bool(self.fan_identical_w4)),
                ]),
            ),
            (
                "campaign_trie",
                Json::obj([
                    ("trials", Json::UInt(self.campaign_trials as u64)),
                    ("cold_wall_seconds", Json::Num(self.campaign_cold_wall_secs)),
                    (
                        "forked_wall_seconds",
                        Json::Num(self.campaign_forked_wall_secs),
                    ),
                    ("events_cold", Json::UInt(self.campaign_events_cold)),
                    (
                        "events_simulated",
                        Json::UInt(self.campaign_events_simulated),
                    ),
                    ("events_ratio", Json::Num(self.campaign_events_ratio())),
                    ("report_identical", Json::Bool(self.campaign_identical)),
                    ("tree_depth", Json::UInt(self.tree_depth as u64)),
                    ("checkpoints", Json::UInt(self.checkpoints as u64)),
                    ("events_shared", Json::UInt(self.events_shared)),
                ]),
            ),
        ])
    }
}

/// Benchmark the checkpoint prefix-tree (DESIGN.md §13) in both the
/// shapes this repo fans out over:
///
/// * **seed fan** — a shortened Table 2 fan run cold and forked
///   ([`StdConfigs::table2_fan_scaled`]); the forked leg must be
///   byte-identical to cold on 1 and on 4 workers;
/// * **campaign trie** — a tight-SLO chaos campaign run cold
///   ([`run_campaign`]) and through the divergence trie
///   ([`run_campaign_forked`]); reports must be byte-identical while
///   the trie simulates measurably fewer events.
pub fn run_prefix_tree_bench(fast: bool) -> PrefixTreeResult {
    // Seed-fan leg.
    let fan_sim_secs: u64 = if fast { 60 } else { 300 };
    let seeds: &[u64] = if fast { &[1, 2] } else { &[1, 2, 3] };
    let duration = Some(SimDuration::from_secs(fan_sim_secs));
    let render = |fan: &[(String, Vec<spider_workloads::RunResult>)]| -> Vec<String> {
        fan.iter()
            .flat_map(|(_, rs)| rs.iter().map(|r| r.to_json().pretty()))
            .collect()
    };
    let t = Instant::now();
    let cold = StdConfigs::table2_fan_scaled(seeds, false, 4, duration);
    let fan_cold_wall_secs = t.elapsed().as_secs_f64();
    let forked_w1 = StdConfigs::table2_fan_scaled(seeds, true, 1, duration);
    let t = Instant::now();
    let forked_w4 = StdConfigs::table2_fan_scaled(seeds, true, 4, duration);
    let fan_forked_wall_secs = t.elapsed().as_secs_f64();
    let cold_rendered = render(&cold);

    // Campaign leg: a tight-SLO chaos campaign on the checkpoint
    // bench's town, once cold and once through the divergence trie.
    // Back-loaded schedules (every episode in the second half of the
    // drive) are the regime the trie targets — long shared fault-free
    // prefixes — matching the checkpoint bench's final-tenth scenario.
    let campaign_sim_secs: u64 = if fast { 120 } else { 300 };
    let params = ScenarioParams {
        duration: SimDuration::from_secs(campaign_sim_secs),
        seed: CHECKPOINT_WORLD_SEED,
        density_per_km: 40.0,
        ..Default::default()
    };
    let sites = town_scenario(&params).deployment.len();
    let make = |plan: &FaultPlan| {
        let mut cfg = town_scenario(&params);
        cfg.faults = plan.clone();
        World::new(
            cfg,
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH6),
                1,
            )),
        )
    };
    let campaign_cfg = CampaignConfig {
        trials: if fast { 8 } else { 16 },
        seed: CHECKPOINT_WORLD_SEED,
        num_aps: sites,
        duration: SimDuration::from_secs(campaign_sim_secs),
        profile: ChaosProfile::back_loaded(0.5),
        // Any detection at all violates: failing trials exercise the
        // shrink phase of both legs.
        slo: SloTable {
            rules: vec![
                SloRule {
                    metric: SloMetric::MaxDetectS("blackout"),
                    budget: 0.0,
                },
                SloRule {
                    metric: SloMetric::MaxDetectS("zombie"),
                    budget: 0.0,
                },
            ],
        },
        shrink_budget: 60,
        max_shrinks: 2,
        workers: 4,
        watchdog_ms: None,
    };
    let t = Instant::now();
    let report_cold = run_campaign(&campaign_cfg, |p| make(p).run());
    let campaign_cold_wall_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (report_forked, stats) = run_campaign_forked(&campaign_cfg, make);
    let campaign_forked_wall_secs = t.elapsed().as_secs_f64();

    PrefixTreeResult {
        fan_seeds: seeds.len(),
        fan_jobs: seeds.len() * StdConfigs::TABLE2_ROWS,
        fan_sim_secs,
        fan_cold_wall_secs,
        fan_forked_wall_secs,
        fan_identical_w1: render(&forked_w1) == cold_rendered,
        fan_identical_w4: render(&forked_w4) == cold_rendered,
        campaign_trials: campaign_cfg.trials,
        campaign_cold_wall_secs,
        campaign_forked_wall_secs,
        campaign_events_cold: stats.events_cold,
        campaign_events_simulated: stats.events_simulated,
        campaign_identical: report_forked.to_json().pretty() == report_cold.to_json().pretty(),
        tree_depth: stats.tree_depth,
        checkpoints: stats.checkpoints,
        events_shared: stats.events_shared(),
    }
}

/// Render the results as the `BENCH_world.json` document. The engine
/// scenarios are always single-threaded; `suite`, when present, adds a
/// section for the parallel sweep runner, `checkpoint` one for the
/// checkpoint/fork engine, and `prefix_tree` one for the seed-fan and
/// campaign-trie sharing benchmark. Their keys are deliberately
/// distinct from the per-scenario `name`/`events_per_sec` keys so the
/// line-oriented `--check` parser never sees them.
pub fn to_json(
    mode: &str,
    results: &[ScenarioResult],
    suite: Option<&SuiteResult>,
    checkpoint: Option<&CheckpointResult>,
    prefix_tree: Option<&PrefixTreeResult>,
) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str("  \"bench\": \"world\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"pre_pr_baseline\": {\n");
    s.push_str(
        "    \"note\": \"engine at commit cb89511, before the spatial grid / shared-frame rewrite\",\n",
    );
    s.push_str(&format!(
        "    \"dense_downtown_events_per_sec\": {PRE_PR_DENSE_EVENTS_PER_SEC:.1},\n"
    ));
    s.push_str("    \"wall_seconds\": { \"sparse_commute\": 0.130, \"dense_downtown\": 1.744, \"chaos_storm\": 7.194 }\n");
    s.push_str("  },\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"sites\": {},\n", r.sites));
        s.push_str(&format!("      \"seed\": {},\n", r.seed));
        s.push_str(&format!("      \"sim_seconds\": {},\n", r.sim_secs));
        s.push_str(&format!("      \"wall_seconds\": {:.4},\n", r.wall_secs));
        s.push_str(&format!("      \"events\": {},\n", r.events));
        s.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            r.events_per_sec
        ));
        s.push_str(&format!("      \"bytes\": {}\n", r.bytes));
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]");
    if let Some(suite) = suite {
        s.push_str(",\n");
        s.push_str("  \"suite\": {\n");
        s.push_str(
            "    \"note\": \"sweep runner on Table 2 drives: identical batch, cold on 1 worker vs the forked fan on the pool; the gate is the deterministic event accounting and byte-identity, wall seconds are informational\",\n",
        );
        s.push_str(&format!("    \"experiment_jobs\": {},\n", suite.jobs));
        s.push_str(&format!("    \"workers\": {},\n", suite.workers));
        s.push_str(&format!(
            "    \"serial_wall_seconds\": {:.4},\n",
            suite.serial_wall_secs
        ));
        s.push_str(&format!(
            "    \"parallel_wall_seconds\": {:.4},\n",
            suite.parallel_wall_secs
        ));
        s.push_str(&format!(
            "    \"parallel_speedup\": {:.2},\n",
            suite.speedup()
        ));
        s.push_str(&format!("    \"events_cold\": {},\n", suite.events_cold));
        s.push_str(&format!(
            "    \"events_forked\": {},\n",
            suite.events_forked
        ));
        s.push_str(&format!("    \"fan_identical\": {}\n", suite.fan_identical));
        s.push_str("  }");
    }
    if let Some(cp) = checkpoint {
        s.push_str(",\n  \"checkpoint\": ");
        // Re-indent the simcore-rendered object to sit two levels deep.
        for (i, line) in cp.to_json().pretty().lines().enumerate() {
            if i > 0 {
                s.push_str("\n  ");
            }
            s.push_str(line);
        }
    }
    if let Some(pt) = prefix_tree {
        s.push_str(",\n  \"prefix_tree\": ");
        for (i, line) in pt.to_json().pretty().lines().enumerate() {
            if i > 0 {
                s.push_str("\n  ");
            }
            s.push_str(line);
        }
    }
    s.push_str("\n}\n");
    s
}

/// Extract `(name, events_per_sec)` pairs from a `BENCH_world.json`
/// document. Not a general JSON parser — it reads exactly the format
/// [`to_json`] writes, which is all `--check` needs.
pub fn parse_events_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            if let Some(end) = rest.find('"') {
                name = Some(rest[..end].to_string());
            }
        } else if let Some(rest) = line.strip_prefix("\"events_per_sec\": ") {
            let num = rest.trim_end_matches(',');
            if let (Some(n), Ok(v)) = (name.take(), num.parse::<f64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

/// Compare fresh results against a baseline document. Returns one
/// message per scenario whose events/sec dropped by more than
/// [`REGRESSION_FACTOR`]; empty means the gate passes. Scenarios
/// missing on either side are skipped (renames should not fail CI).
pub fn check_regressions(baseline_json: &str, results: &[ScenarioResult]) -> Vec<String> {
    let baseline = parse_events_per_sec(baseline_json);
    let mut failures = Vec::new();
    for r in results {
        if let Some((_, base)) = baseline.iter().find(|(n, _)| n == &r.name) {
            if r.events_per_sec * REGRESSION_FACTOR < *base {
                failures.push(format!(
                    "{}: {:.0} events/sec is more than {REGRESSION_FACTOR}x below baseline {:.0}",
                    r.name, r.events_per_sec, base
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, eps: f64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            sites: 10,
            seed: 1,
            sim_secs: 60,
            wall_secs: 0.5,
            events: (eps * 0.5) as u64,
            events_per_sec: eps,
            bytes: 1234,
        }
    }

    #[test]
    fn json_roundtrips_through_the_check_parser() {
        let results = vec![
            result("sparse_commute", 1_500_000.0),
            result("dense_downtown", 9_000_000.5),
        ];
        let json = to_json("full", &results, None, None, None);
        let parsed = parse_events_per_sec(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "sparse_commute");
        assert!((parsed[0].1 - 1_500_000.0).abs() < 0.2);
        assert_eq!(parsed[1].0, "dense_downtown");
        assert!((parsed[1].1 - 9_000_000.5).abs() < 0.2);
    }

    #[test]
    fn suite_section_is_rendered_and_invisible_to_the_check_parser() {
        let suite = SuiteResult {
            jobs: 18,
            workers: 4,
            serial_wall_secs: 12.0,
            parallel_wall_secs: 3.0,
            events_cold: 5_000_000,
            events_forked: 5_000_000,
            fan_identical: true,
        };
        assert!((suite.speedup() - 4.0).abs() < 1e-9);
        let results = vec![result("sparse_commute", 1_500_000.0)];
        let json = to_json("full", &results, Some(&suite), None, None);
        assert!(json.contains("\"experiment_jobs\": 18"));
        assert!(json.contains("\"parallel_speedup\": 4.00"));
        assert!(json.contains("\"events_cold\": 5000000"));
        assert!(json.contains("\"events_forked\": 5000000"));
        assert!(json.contains("\"fan_identical\": true"));
        // The regression-gate parser must see exactly the scenarios,
        // with or without the suite section.
        assert_eq!(
            parse_events_per_sec(&json),
            parse_events_per_sec(&to_json("full", &results, None, None, None))
        );
    }

    #[test]
    fn checkpoint_section_is_rendered_and_invisible_to_the_check_parser() {
        let cp = CheckpointResult {
            sites: 69,
            sim_secs: 300,
            cold_wall_secs: 0.2,
            fork_wall_secs: 0.05,
            identical: true,
            shrink_evals: 12,
            shrink_cold_wall_secs: 2.4,
            shrink_forked_wall_secs: 0.7,
            shrink_events_cold: 3_000_000,
            shrink_events_simulated: 900_000,
            minimized_identical: true,
        };
        assert!((cp.events_ratio() - 10.0 / 3.0).abs() < 1e-9);
        let results = vec![result("sparse_commute", 1_500_000.0)];
        let json = to_json("full", &results, None, Some(&cp), None);
        assert!(json.contains("\"checkpoint\":"));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"events_ratio\":"));
        // The regression-gate parser must see exactly the scenarios.
        assert_eq!(
            parse_events_per_sec(&json),
            parse_events_per_sec(&to_json("full", &results, None, None, None))
        );
        // And the document itself must stay parseable JSON.
        Json::parse(&json).expect("BENCH_world.json with checkpoint section parses");
    }

    #[test]
    fn prefix_tree_section_is_rendered_and_invisible_to_the_check_parser() {
        let pt = PrefixTreeResult {
            fan_seeds: 3,
            fan_jobs: 18,
            fan_sim_secs: 300,
            fan_cold_wall_secs: 9.0,
            fan_forked_wall_secs: 6.0,
            fan_identical_w1: true,
            fan_identical_w4: true,
            campaign_trials: 16,
            campaign_cold_wall_secs: 4.0,
            campaign_forked_wall_secs: 1.5,
            campaign_events_cold: 2_600_000,
            campaign_events_simulated: 2_000_000,
            campaign_identical: true,
            tree_depth: 2,
            checkpoints: 9,
            events_shared: 400_000,
        };
        assert!((pt.campaign_events_ratio() - 1.3).abs() < 1e-9);
        let results = vec![result("sparse_commute", 1_500_000.0)];
        let json = to_json("full", &results, None, None, Some(&pt));
        assert!(json.contains("\"prefix_tree\":"));
        assert!(json.contains("\"identical_1_worker\": true"));
        assert!(json.contains("\"identical_4_workers\": true"));
        assert!(json.contains("\"report_identical\": true"));
        assert!(json.contains("\"tree_depth\": 2"));
        // The regression-gate parser must see exactly the scenarios.
        assert_eq!(
            parse_events_per_sec(&json),
            parse_events_per_sec(&to_json("full", &results, None, None, None))
        );
        // And the document itself must stay parseable JSON.
        Json::parse(&json).expect("BENCH_world.json with prefix_tree section parses");
    }

    #[test]
    fn regression_gate_fires_only_past_the_factor() {
        let baseline = to_json(
            "full",
            &[result("dense_downtown", 8_000_000.0)],
            None,
            None,
            None,
        );
        // 2x slower exactly: passes (gate is strict >2x).
        assert!(check_regressions(&baseline, &[result("dense_downtown", 4_000_000.0)]).is_empty());
        // Slightly worse than 2x: fails.
        let failures = check_regressions(&baseline, &[result("dense_downtown", 3_900_000.0)]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dense_downtown"));
        // Unknown scenario on either side: skipped, not failed.
        assert!(check_regressions(&baseline, &[result("brand_new", 1.0)]).is_empty());
    }

    #[test]
    fn suite_has_the_three_scenarios_and_fast_mode_keeps_density() {
        let full = scenarios(false);
        let fast = scenarios(true);
        assert_eq!(full.len(), 3);
        assert_eq!(fast.len(), 3);
        for (f, s) in full.iter().zip(&fast) {
            assert_eq!(f.name, s.name);
            assert_eq!(f.density_per_km, s.density_per_km);
            assert_eq!(f.seed, s.seed);
            assert!(s.sim_secs <= f.sim_secs);
        }
        assert!(full
            .iter()
            .any(|s| s.name == "dense_downtown" && s.min_sites >= 1_000));
        assert!(full.iter().any(|s| s.storm));
    }

    #[test]
    fn sparse_scenario_runs_and_reports_consistent_figures() {
        // A tiny world run end-to-end through the harness path.
        let spec = ScenarioSpec {
            name: "smoke",
            sim_secs: 30,
            density_per_km: 12.0,
            seed: 7,
            storm: false,
            min_sites: 1,
        };
        let r = run_scenario(&spec);
        assert_eq!(r.name, "smoke");
        assert!(r.sites >= 1);
        assert!(r.events > 0);
        assert!(r.wall_secs > 0.0);
        assert!((r.events_per_sec - r.events as f64 / r.wall_secs).abs() < 1.0);
    }
}
