//! Result output: aligned console tables, CSV files, and JSON
//! artifacts.

use spider_simcore::Json;
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The experiment output directory (`target/experiments`), created on
/// first use.
pub struct OutDir(PathBuf);

impl OutDir {
    /// Open (and create) the output directory.
    pub fn open() -> OutDir {
        // Walk up from the current dir to find the workspace target/.
        let base = std::env::var("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target"));
        let dir = base.join("experiments");
        fs::create_dir_all(&dir).expect("create target/experiments");
        OutDir(dir)
    }

    /// Path for a named artifact.
    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

/// Write rows to a CSV file under the experiment directory. Returns the
/// path written.
pub fn write_csv<R, C>(name: &str, headers: &[&str], rows: R) -> PathBuf
where
    R: IntoIterator<Item = Vec<C>>,
    C: Display,
{
    let out = OutDir::open();
    let path = out.path(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        writeln!(f, "{}", cells.join(",")).unwrap();
    }
    path
}

/// Write a text artifact under the experiment directory. Returns the
/// path written.
pub fn write_text(name: &str, text: &str) -> PathBuf {
    let out = OutDir::open();
    let path = out.path(name);
    fs::write(&path, text).expect("write artifact");
    path
}

/// Write a JSON artifact under the experiment directory using the
/// in-tree emitter — byte-deterministic for a deterministic value, so
/// `diff` on two artifacts doubles as a determinism check. Returns the
/// path written.
pub fn write_json(name: &str, value: &Json) -> PathBuf {
    write_text(name, &value.pretty())
}

/// Print an aligned table to stdout.
pub fn print_table<C: Display>(title: &str, headers: &[&str], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cols: &[String]| {
        cols.iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in &cells {
        println!("{}", fmt_row(row));
    }
}

/// Convenience: does a path exist (used by tests).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "unit_test.csv",
            &["a", "b"],
            vec![vec![1.0, 2.0], vec![3.5, 4.25]],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("3.5,4.25"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_artifact_roundtrip() {
        let doc = Json::obj([
            ("label", Json::str("unit")),
            ("bytes", Json::UInt(12345)),
            ("connectivity", Json::Num(0.75)),
        ]);
        let path = write_json("unit_test.json", &doc);
        let text = std::fs::read_to_string(&path).unwrap();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("bytes").and_then(Json::as_u64), Some(12345));
        assert_eq!(back.get("connectivity").and_then(Json::as_f64), Some(0.75));
        // Re-emission is byte-identical: artifacts are diffable.
        assert_eq!(back.pretty(), text);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "test",
            &["config", "throughput"],
            &[vec!["x".to_string(), "1.0".to_string()]],
        );
    }
}
