//! Appendix A: multi-AP selection is NP-hard (0-1 knapsack).
//!
//! The appendix motivates Spider's cheap join-history heuristic by
//! showing optimal subset selection is a knapsack. This experiment
//! quantifies the price of greediness: exact (DP/exhaustive) vs greedy
//! selection quality over random encounter sets, with the knapsack
//! construction of the proof (`V_i = T_i·W_i`, `C_i = T_i + ⌈T_i/T⌉·D_i`).

use spider_bench::{print_table, write_csv};
use spider_model::selection::{density_score, greedy_select, optimal_select, ApOption};
use spider_simcore::{forked_sweep, OnlineStats, SimRng};

const TRIALS: u64 = 200;
const ROOT_SEED: u64 = 11;

fn main() {
    let budget = 30.0; // seconds of radio time on a road segment
    let groups = [4usize, 8, 12, 16];

    // One knapsack instance per job, each drawing from its own derived
    // RNG stream — the instance depends only on (group, trial), not on
    // which worker ran the trials before it. All instances fan from a
    // single shared root via `forked_sweep` (the prefix-sharing API):
    // deriving a trial's stream from the cloned root is bit-identical
    // to seeding cold inside the job.
    let mut jobs = Vec::new();
    for &n_aps in &groups {
        for trial in 0..TRIALS {
            jobs.push((n_aps, trial));
        }
    }
    let fan: Vec<(usize, (usize, u64))> = jobs.iter().map(|&j| (0, j)).collect();
    let trials = forked_sweep(
        &[ROOT_SEED],
        &fan,
        |&seed| SimRng::new(seed),
        |root, &(n_aps, trial)| {
            let mut rng = root.stream_indexed("appendix-a", (n_aps as u64) * 1_000 + trial);
            let options: Vec<ApOption> = (0..n_aps)
                .map(|_| {
                    let t_i = rng.uniform_in(2.0, 25.0); // time in range
                    let w_i = rng.uniform_in(50_000.0, 1_000_000.0); // bytes/s
                    let d_i = rng.uniform_in(0.1, 1.5); // join/switch overhead
                    ApOption::from_encounter(t_i, w_i, d_i, budget)
                })
                .collect();
            let exact = optimal_select(&options, budget, 2_000);
            let greedy = greedy_select(&options, budget, density_score);
            let ratio = (exact.value > 0.0).then(|| greedy.value / exact.value);
            let exact_match = (greedy.value - exact.value).abs() < 1e-9;
            (ratio, exact_match)
        },
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (g, &n_aps) in groups.iter().enumerate() {
        let mut ratio = OnlineStats::new();
        let mut greedy_wins = 0u32;
        for &(r, exact_match) in &trials[g * TRIALS as usize..(g + 1) * TRIALS as usize] {
            if let Some(r) = r {
                ratio.push(r);
            }
            if exact_match {
                greedy_wins += 1;
            }
        }
        rows.push(vec![
            n_aps as f64,
            ratio.mean(),
            ratio.min(),
            greedy_wins as f64 / TRIALS as f64,
        ]);
        table.push(vec![
            format!("{n_aps}"),
            format!("{:.4}", ratio.mean()),
            format!("{:.4}", ratio.min()),
            format!("{:.1}%", 100.0 * greedy_wins as f64 / TRIALS as f64),
        ]);
    }
    print_table(
        "Appendix A: greedy selection quality vs exact knapsack optimum",
        &["APs", "mean(greedy/opt)", "worst", "exact matches"],
        &table,
    );
    let path = write_csv(
        "appendix_a.csv",
        &["n_aps", "mean_ratio", "worst_ratio", "exact_match_rate"],
        rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\nThe greedy family Spider belongs to is near-optimal on realistic\n\
         encounter sets while running in O(n log n) — the appendix's point."
    );
}
