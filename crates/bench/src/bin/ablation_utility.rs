//! Ablation: Spider's join-history AP selection vs alternatives.
//!
//! * paper weights (va=0.3, vb=0.6, vc=1.0, α=0.5),
//! * no history (α=0: every AP keeps its optimistic bootstrap; selection
//!   degenerates to signal strength),
//! * harsh memory (α=0.9: one failure nearly disqualifies an AP),
//! * FatVAP-style bandwidth-estimate selection (the full FatVAP driver).

use spider_baselines::{FatVapConfig, FatVapDriver};
use spider_bench::{print_table, town_params, write_csv};
use spider_core::utility::UtilityConfig;
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, OnlineStats};
use spider_wire::Channel;
use spider_workloads::scenarios::{town_scenario, RouteKind, ScenarioParams};
use spider_workloads::World;

/// An environment where selection history matters: the usual loop, but
/// 30 % of the open APs are broken (their DHCP never answers — captive
/// portals, filtered DHCP) and the working ones are slow. Without
/// history, the client re-tries the broken APs on every lap.
fn harsh(seed: u64) -> ScenarioParams {
    let mut p = town_params(seed);
    p.route = RouteKind::Loop;
    p.dead_dhcp_fraction = 0.30;
    p.dhcp_beta = (0.5, 6.0);
    p
}

/// The policies measured, in row order: three recency settings for
/// Spider's utility, then the FatVAP driver.
enum Policy {
    Spider { alpha: f64 },
    FatVap,
}

fn run_policy(policy: &Policy, seed: u64) -> (f64, f64) {
    let world = town_scenario(&harsh(seed));
    let result = match policy {
        Policy::Spider { alpha } => {
            // Single-AP mode: with one connection at a time, a join
            // wasted on a broken AP is connectivity lost — this is where
            // selection policy shows. (With 7 concurrent interfaces the
            // driver simply tries everything and selection errors are
            // masked; see EXPERIMENTS.md.)
            let mut cfg =
                SpiderConfig::for_mode(OperationMode::SingleChannelSingleAp(Channel::CH1), 1);
            cfg.utility = UtilityConfig {
                recency: *alpha,
                ..UtilityConfig::default()
            };
            World::new(world, SpiderDriver::new(cfg)).run()
        }
        Policy::FatVap => World::new(world, FatVapDriver::new(FatVapConfig::default())).run(),
    };
    (result.throughput_kbs(), result.connectivity_pct())
}

fn main() {
    let policies: Vec<(&str, Policy)> = vec![
        ("paper (alpha=0.5)", Policy::Spider { alpha: 0.5 }),
        ("no history (alpha=0)", Policy::Spider { alpha: 0.0 }),
        ("harsh (alpha=0.9)", Policy::Spider { alpha: 0.9 }),
        ("FatVAP (AP-sliced, bw-estimate)", Policy::FatVap),
    ];
    let seeds: Vec<u64> = (1..=3).collect();

    let mut jobs = Vec::new();
    for (p, _) in policies.iter().enumerate() {
        for &seed in &seeds {
            jobs.push((p, seed));
        }
    }
    let results = sweep(&jobs, |&(p, seed)| run_policy(&policies[p].1, seed));

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (p, (label, _)) in policies.iter().enumerate() {
        let mut thr = OnlineStats::new();
        let mut conn = OnlineStats::new();
        for &(kbs, pct) in &results[p * seeds.len()..(p + 1) * seeds.len()] {
            thr.push(kbs);
            conn.push(pct);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", thr.mean()),
            format!("{:.1}", conn.mean()),
        ]);
        table.push(vec![
            label.to_string(),
            format!("{:.1} KB/s", thr.mean()),
            format!("{:.1}%", conn.mean()),
        ]);
    }
    print_table(
        "Ablation: AP-selection policy (town drive)",
        &["policy", "throughput", "connectivity"],
        &table,
    );
    let path = write_csv(
        "ablation_utility.csv",
        &["policy", "throughput_kbs", "connectivity_pct"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
