//! Figure 13: CDF of instantaneous bandwidth (KB/s during seconds with
//! data) for the four Spider configurations.
//!
//! The paper: single-channel multi-AP is best (60th pct ≈ 300 KB/s,
//! 90th ≈ 1000 KB/s); multi-channel multi-AP is strangled by join
//! overhead on orthogonal channels.
//!
//! The four runs come from [`StdConfigs::table2`], which fans them out
//! as one parallel sweep.

use spider_bench::{cdf_quantiles, print_table, write_csv, StdConfigs};

fn main() {
    let quantiles = [0.1, 0.25, 0.5, 0.6, 0.75, 0.9];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, mut result) in StdConfigs::table2(1).into_iter().take(4) {
        let cdf = &mut result.instantaneous_bps;
        let mut cells = vec![label.clone(), format!("{}", cdf.len())];
        let mut row = vec![label.clone()];
        for v in cdf_quantiles(cdf, &quantiles, 1.0 / 1_000.0) {
            row.push(format!("{v:.1}"));
            cells.push(format!("{v:.0}"));
        }
        rows.push(row);
        table.push(cells);
    }
    print_table(
        "Fig 13: instantaneous bandwidth quantiles (KB/s while connected)",
        &["config", "n", "p10", "p25", "p50", "p60", "p75", "p90"],
        &table,
    );
    let path = write_csv(
        "fig13.csv",
        &[
            "config", "p10_kbs", "p25_kbs", "p50_kbs", "p60_kbs", "p75_kbs", "p90_kbs",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
