//! Chaos campaign: randomized compound-fault schedules against Spider
//! on the town drive, judged by the recovery-SLO table.
//!
//! Each trial generates a seeded chaos schedule (overlapping and
//! compound fault episodes — the combinations the scripted chaos tests
//! never cover), runs a full world under it, and checks the §3.2.2
//! detection budget, recovery budget, DHCP timing budget, and payload
//! floor. A trial that breaks an SLO is delta-debugged down to a
//! minimal reproducer and written to `target/experiments/` as a
//! replayable JSON artifact.
//!
//! Usage:
//!
//! ```text
//! chaos_campaign [--trials N] [--seed S] [--duration-secs D]
//!                [--shrink-budget N] [--workers N] [--tight]
//!                [--tight-class CLASS] [--adversarial] [--no-fork]
//!                [--forkstats PATH] [--replay PATH] [--matrix]
//! ```
//!
//! * default mode exits non-zero when any trial violates an SLO or
//!   panics the simulator (CI runs this); trials and shrink candidates
//!   run through the checkpoint prefix-tree (DESIGN.md §13) and the
//!   work saved is reported — trie depth, checkpoints reused, and
//!   events served from shared checkpoints included,
//! * `--adversarial` arms the generator's adversarial tail (ARP
//!   poisoning, captive portals, asymmetric loss) alongside the
//!   standard classes,
//! * `--no-fork` runs every world cold from `t = 0` — the report must
//!   come out byte-identical either way, and CI diffs the two,
//! * `--forkstats PATH` writes the fork-stats sidecar JSON to an
//!   explicit path instead of `target/experiments/`,
//! * `--tight` swaps in a deliberately unmeetable SLO table to
//!   exercise the shrinking pipeline end to end,
//! * `--tight-class CLASS` narrows the tight table to one fault class
//!   (e.g. `arp-poison`), so the minimized reproducer is guaranteed to
//!   pin that class — how the corpus artifacts for the adversarial
//!   classes were harvested,
//! * `--replay PATH` re-runs a minimized artifact and exits zero only
//!   if the violation reproduces,
//! * `--matrix` runs the full campaign matrix instead: all four
//!   operation modes × {spider, stock, fatvap}, each cell calibrated
//!   against its own fault-free envelope and hammered by the *same*
//!   adversarial schedules (DESIGN.md §12). Exits non-zero only on
//!   simulator panics — per-cell SLO violations are triage output, a
//!   comparative result rather than a gate.

use spider_baselines::{FatVapConfig, FatVapDriver, StockConfig, StockDriver};
use spider_bench::{write_json, OutDir};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{Json, SimDuration};
use spider_wire::Channel;
use spider_workloads::campaign::{
    run_campaign, run_campaign_forked, run_matrix_cell, CampaignConfig, ChaosProfile,
    CheckpointCache, MatrixCell, MatrixReport, MinimizedRepro, SloMargins, SloMetric, SloRule,
    SloTable,
};
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::{FaultPlan, World};
use std::process::ExitCode;

/// World seed for the campaign's drive (fixed: the campaign explores
/// fault-schedule space, not world space).
const WORLD_SEED: u64 = 7;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match parse_flag(args, name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} wants a number, got {v:?}")),
        None => default,
    }
}

/// Build the per-trial world factory: a pure function of the fault
/// plan, as both [`run_campaign_forked`] and [`CheckpointCache`] want.
fn make_factory(
    duration: SimDuration,
) -> (usize, impl Fn(&FaultPlan) -> World<SpiderDriver> + Sync) {
    let params = ScenarioParams {
        duration,
        seed: WORLD_SEED,
        ..Default::default()
    };
    let num_aps = town_scenario(&params).deployment.len();
    let make = move |plan: &FaultPlan| {
        let mut cfg = town_scenario(&params);
        cfg.faults = plan.clone();
        World::new(
            cfg,
            SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH6),
                1,
            )),
        )
    };
    (num_aps, make)
}

/// An intentionally unmeetable table: any detection at all violates.
/// Exercises the shrinking pipeline deterministically.
fn tight_table() -> SloTable {
    SloTable {
        rules: vec![
            SloRule {
                metric: SloMetric::MaxDetectS("blackout"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("zombie"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("arp-poison"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("captive-portal"),
                budget: 0.0,
            },
            SloRule {
                metric: SloMetric::MaxDetectS("asymmetric-loss"),
                budget: 0.0,
            },
        ],
    }
}

/// The tight table narrowed to one class: only detections of `class`
/// violate, so ddmin cannot trade the episode under study away for a
/// faster-detected blackout.
fn tight_class_table(class: &str) -> SloTable {
    let class = match class {
        "blackout" => "blackout",
        "zombie" => "zombie",
        "arp-poison" => "arp-poison",
        "captive-portal" => "captive-portal",
        "asymmetric-loss" => "asymmetric-loss",
        other => panic!("--tight-class {other}: not a detectable fault class"),
    };
    SloTable {
        rules: vec![SloRule {
            metric: SloMetric::MaxDetectS(class),
            budget: 0.0,
        }],
    }
}

fn replay(path: &str) -> ExitCode {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let repro = MinimizedRepro::from_json(&doc)
        .unwrap_or_else(|| panic!("{path} is not a spider-chaos-repro artifact"));
    let duration = SimDuration::from_secs(
        std::env::args()
            .nth(3)
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let (_, make) = make_factory(duration);
    // Both the replay and its no-fault baseline resume from the
    // fault-free prefix's nearest checkpoint rather than running cold
    // — same results, one shared prefix.
    let mut cache = CheckpointCache::new(&make, FaultPlan::none());
    let result = cache.run_plan(&repro.plan);
    let table = SloTable::paper_default();
    let violations = table.evaluate(&result);
    println!(
        "replayed trial {} ({} episodes): {result}",
        repro.trial,
        repro.plan.episodes.len()
    );
    for v in &violations {
        println!("  violation: {v}");
    }
    if !repro.violations.is_empty() && violations != repro.violations {
        println!(
            "  note: measured violations differ from the artifact's \
             (recorded under a different duration or SLO table?)"
        );
    }
    // Triage aid: the same drive with no faults at all. A "recovery"
    // time close to a natural disruption means the client was simply
    // out of coverage — a mobility bound, not a recovery defect.
    let baseline = cache.run_plan(&FaultPlan::none());
    let natural_max = baseline
        .intervals
        .off_durations
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max);
    println!(
        "  baseline (no faults): worst natural disruption {natural_max:.1}s, \
         {} bytes, {:.1}% connectivity",
        baseline.bytes,
        baseline.connectivity * 100.0
    );
    if violations.is_empty() {
        println!("violation did NOT reproduce against the default SLO table");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The four §4.1 configurations, as matrix rows.
fn matrix_modes() -> Vec<OperationMode> {
    let period = SimDuration::from_millis(600);
    vec![
        OperationMode::SingleChannelSingleAp(Channel::CH6),
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        OperationMode::MultiChannelMultiAp { period },
        OperationMode::MultiChannelSingleAp { period },
    ]
}

/// Project an operation mode onto the stock driver's knobs: the only
/// mode dimension it has is which channels it sweeps (it is single-AP
/// by construction, so both single-AP and multi-AP rows get the same
/// client — the rows stay comparable column-wise).
fn stock_for_mode(mode: &OperationMode) -> StockConfig {
    let mut c = StockConfig::quickwifi(1);
    if let OperationMode::SingleChannelSingleAp(ch) | OperationMode::SingleChannelMultiAp(ch) = mode
    {
        c.scan_channels = vec![*ch];
    }
    c
}

/// Project an operation mode onto FatVAP's knobs: channel restriction
/// for the single-channel rows, connection fan-out for the multi-AP
/// rows.
fn fatvap_for_mode(mode: &OperationMode) -> FatVapConfig {
    let mut c = FatVapConfig::default();
    if let OperationMode::SingleChannelSingleAp(ch) | OperationMode::SingleChannelMultiAp(ch) = mode
    {
        c.scan_channels = vec![*ch];
    }
    if let OperationMode::SingleChannelSingleAp(_) | OperationMode::MultiChannelSingleAp { .. } =
        mode
    {
        c.num_conns = 1;
    }
    c
}

/// Per-cell triage line(s) for the matrix run.
fn triage_cell(cell: &MatrixCell) {
    let r = &cell.report;
    println!(
        "[{} / {}] envelope {} bytes, {:.1}% connectivity -> {} trials, {} violating, {} panicked",
        cell.mode,
        cell.driver,
        cell.envelope.bytes,
        cell.envelope.connectivity * 100.0,
        r.trials,
        r.violating_trials(),
        r.job_failures.len()
    );
    for o in &r.outcomes {
        for v in &o.violations {
            println!("    trial {:>3}: {v}", o.trial);
        }
    }
    for f in &r.job_failures {
        println!(
            "    trial {:>3}: PANIC {} [{}]",
            f.index, f.message, f.fingerprint
        );
    }
}

/// The full campaign matrix: modes × drivers, every cell calibrated
/// then judged against the same generated schedules.
fn run_matrix(args: &[String]) -> ExitCode {
    let trials = parse_num(args, "--trials", 4usize);
    let seed = parse_num(args, "--seed", 1u64);
    let duration = SimDuration::from_secs(parse_num(args, "--duration-secs", 120u64));
    let shrink_budget = parse_num(args, "--shrink-budget", 40usize);
    let workers = parse_num(args, "--workers", 0usize);
    let no_fork = args.iter().any(|a| a == "--no-fork");

    let params = ScenarioParams {
        duration,
        seed: WORLD_SEED,
        ..Default::default()
    };
    let num_aps = town_scenario(&params).deployment.len();
    let cfg = CampaignConfig {
        trials,
        seed,
        num_aps,
        duration,
        // The adversarial tail is the matrix's reason to exist.
        profile: ChaosProfile::adversarial(),
        // Placeholder; every cell swaps in its calibrated table.
        slo: SloTable::paper_default(),
        shrink_budget,
        max_shrinks: 1,
        workers,
        watchdog_ms: Some(120_000),
    };

    let spider_margins = SloMargins::spider_paper();
    let stock_margins = SloMargins::stock_monitor();
    // FatVAP shares Spider's §3.2.2 monitor (same iface stack) but
    // recovers by re-estimation and rescans, without lease caches or a
    // blacklist ladder — looser recovery and byte floors.
    let fatvap_margins = SloMargins {
        recover_s: 60.0,
        bytes_frac: 0.01,
        ..SloMargins::spider_paper()
    };

    println!(
        "chaos matrix: {} modes x 3 drivers, {trials} trials/cell, seed {seed}, \
         {num_aps} APs, {}s drives{}",
        matrix_modes().len(),
        duration.as_secs_f64(),
        if no_fork { " (cold, no forking)" } else { "" }
    );

    let mut cells = Vec::new();
    let mut stats_json = Vec::new();
    for mode in matrix_modes() {
        let label = mode.label();
        {
            let mode = mode.clone();
            let make = |plan: &FaultPlan| {
                let mut wc = town_scenario(&params);
                wc.faults = plan.clone();
                World::new(
                    wc,
                    SpiderDriver::new(SpiderConfig::for_mode(mode.clone(), 1)),
                )
            };
            let (cell, fs) =
                run_matrix_cell(&label, "spider", &cfg, &spider_margins, !no_fork, make);
            triage_cell(&cell);
            stats_json.push(Json::obj([
                ("mode", Json::str(label.clone())),
                ("driver", Json::str("spider")),
                ("forkstats", fs.to_json()),
            ]));
            cells.push(cell);
        }
        {
            let stock_cfg = stock_for_mode(&mode);
            let make = |plan: &FaultPlan| {
                let mut wc = town_scenario(&params);
                wc.faults = plan.clone();
                World::new(wc, StockDriver::new(stock_cfg.clone()))
            };
            let (cell, fs) = run_matrix_cell(&label, "stock", &cfg, &stock_margins, !no_fork, make);
            triage_cell(&cell);
            stats_json.push(Json::obj([
                ("mode", Json::str(label.clone())),
                ("driver", Json::str("stock")),
                ("forkstats", fs.to_json()),
            ]));
            cells.push(cell);
        }
        {
            let fv_cfg = fatvap_for_mode(&mode);
            let make = |plan: &FaultPlan| {
                let mut wc = town_scenario(&params);
                wc.faults = plan.clone();
                World::new(wc, FatVapDriver::new(fv_cfg.clone()))
            };
            let (cell, fs) =
                run_matrix_cell(&label, "fatvap", &cfg, &fatvap_margins, !no_fork, make);
            triage_cell(&cell);
            stats_json.push(Json::obj([
                ("mode", Json::str(label.clone())),
                ("driver", Json::str("fatvap")),
                ("forkstats", fs.to_json()),
            ]));
            cells.push(cell);
        }
    }

    let matrix = MatrixReport { seed, cells };
    let panicked: usize = matrix
        .cells
        .iter()
        .map(|c| c.report.job_failures.len())
        .sum();

    let _out = OutDir::open();
    let report_path = write_json("chaos_matrix_report.json", &matrix.to_json());
    println!("\nwrote {}", report_path.display());
    if !no_fork {
        // Sidecar, never part of the byte-diffed report (CI compares
        // the forked and cold matrix reports byte for byte).
        let stats_path = write_json("chaos_matrix_forkstats.json", &Json::Arr(stats_json));
        println!("wrote {}", stats_path.display());
    }

    println!(
        "\nmatrix: {} cells, {} with violations, {} simulator panics",
        matrix.cells.len(),
        matrix.violating_cells(),
        panicked
    );
    if panicked == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = parse_flag(&args, "--replay") {
        return replay(&path);
    }
    if args.iter().any(|a| a == "--matrix") {
        return run_matrix(&args);
    }

    let trials = parse_num(&args, "--trials", 8usize);
    let seed = parse_num(&args, "--seed", 1u64);
    let duration = SimDuration::from_secs(parse_num(&args, "--duration-secs", 300u64));
    let shrink_budget = parse_num(&args, "--shrink-budget", 120usize);
    let workers = parse_num(&args, "--workers", 0usize);
    let tight_class = parse_flag(&args, "--tight-class");
    let tight = args.iter().any(|a| a == "--tight") || tight_class.is_some();
    let adversarial = args.iter().any(|a| a == "--adversarial");
    let no_fork = args.iter().any(|a| a == "--no-fork");
    let forkstats_path = parse_flag(&args, "--forkstats");

    let (num_aps, make) = make_factory(duration);
    let mut cfg = CampaignConfig {
        trials,
        seed,
        num_aps,
        duration,
        profile: if adversarial {
            ChaosProfile::adversarial()
        } else {
            ChaosProfile::standard()
        },
        slo: match &tight_class {
            Some(class) => tight_class_table(class),
            None if tight => tight_table(),
            None => SloTable::paper_default(),
        },
        shrink_budget,
        max_shrinks: 4,
        workers,
        watchdog_ms: Some(120_000),
    };
    if tight {
        cfg.max_shrinks = 1;
    }

    println!(
        "chaos campaign: {trials} trials, seed {seed}, {num_aps} APs, {}s drives{}{}",
        duration.as_secs_f64(),
        if tight { " (tight SLO)" } else { "" },
        if no_fork { " (cold, no forking)" } else { "" }
    );
    let (report, fork_stats) = if no_fork {
        (run_campaign(&cfg, |plan| make(plan).run()), None)
    } else {
        let (report, stats) = run_campaign_forked(&cfg, &make);
        (report, Some(stats))
    };

    for o in &report.outcomes {
        if o.violations.is_empty() {
            println!(
                "trial {:>3}: ok    ({} episodes, {} bytes, {:.1}% connectivity)",
                o.trial,
                o.episodes,
                o.bytes,
                o.connectivity * 100.0
            );
        } else {
            println!(
                "trial {:>3}: SLO VIOLATION ({} episodes)",
                o.trial, o.episodes
            );
            for v in &o.violations {
                println!("           {v}");
            }
        }
    }
    for f in &report.job_failures {
        println!(
            "trial {:>3}: PANIC {} [{}]",
            f.index, f.message, f.fingerprint
        );
    }
    for &h in &report.hung {
        println!("trial {h:>3}: flagged by the watchdog (still running past deadline)");
    }

    let out = OutDir::open();
    let report_path = write_json("chaos_campaign_report.json", &report.to_json());
    println!("\nwrote {}", report_path.display());
    if let Some(stats) = fork_stats {
        // Kept out of the report file on purpose: CI diffs the forked
        // and cold reports byte for byte, and the fork engine's own
        // accounting must not show up in that comparison.
        let stats_path = match &forkstats_path {
            Some(p) => {
                let doc = stats.to_json().pretty();
                std::fs::write(p, &doc).unwrap_or_else(|e| panic!("write {p}: {e}"));
                std::path::PathBuf::from(p)
            }
            None => write_json("chaos_campaign_forkstats.json", &stats.to_json()),
        };
        println!(
            "wrote {} (checkpoint prefix-tree: {:.2}x overall, {:.2}x in the shrink phase, \
             {} checkpoints, {} forks)",
            stats_path.display(),
            stats.speedup(),
            stats.shrink_speedup(),
            stats.checkpoints,
            stats.forks
        );
        println!(
            "  divergence trie: depth {}, {} trials forked off shared checkpoints, \
             {} events served from shared prefixes",
            stats.tree_depth,
            stats.edges.len(),
            stats.events_shared()
        );
    }
    for m in &report.minimized {
        let name = format!("chaos_repro_trial{}.json", m.trial);
        let path = write_json(&name, &m.to_json());
        println!(
            "wrote {} ({} -> {} episodes, {} shrink evals)",
            path.display(),
            m.original_episodes,
            m.plan.episodes.len(),
            m.evals
        );
    }
    let _ = out;

    if report.is_clean() {
        println!("\ncampaign clean: {} trials, 0 violations", report.trials);
        ExitCode::SUCCESS
    } else {
        println!(
            "\ncampaign FAILED: {} violating trials, {} panicked trials (minimized artifacts above)",
            report.violating_trials(),
            report.job_failures.len()
        );
        ExitCode::from(1)
    }
}
