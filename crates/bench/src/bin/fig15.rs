//! Figure 15: join delay (association + DHCP, verified end-to-end) for
//! six scheduling policies — interface counts, channel splits and timer
//! settings.
//!
//! The paper: a single channel with reduced timeouts joins fastest;
//! splitting time across channels roughly doubles join delay.

use spider_bench::{print_table, town_params, write_csv, CdfRow};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientMacConfig;
use spider_netstack::DhcpClientConfig;
use spider_simcore::{sweep, Cdf, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let period = SimDuration::from_millis(600);
    let reduced = || {
        (
            ClientMacConfig::reduced(),
            DhcpClientConfig::reduced(SimDuration::from_millis(200)),
        )
    };
    let stock = || (ClientMacConfig::stock(), DhcpClientConfig::stock());
    let ch1 = OperationMode::SingleChannelMultiAp(Channel::CH1);
    let multi = OperationMode::MultiChannelMultiAp { period };
    let half = ChannelSchedule::custom(
        SimDuration::from_millis(400),
        vec![(Channel::CH1, 0.5), (Channel::CH6, 0.5)],
    );

    let mk = |mode: OperationMode, timers: (ClientMacConfig, DhcpClientConfig), n: usize| {
        SpiderConfig::for_mode(mode, 1)
            .with_timeouts(timers.0, timers.1)
            .with_ifaces(n)
    };
    let configs: Vec<(&str, SpiderConfig)> = vec![
        ("1 iface, ch1 100%, default TO", mk(ch1.clone(), stock(), 1)),
        (
            "7 ifaces, ch1 100%, default TO",
            mk(ch1.clone(), stock(), 7),
        ),
        (
            "7 ifaces, ch1 100%, dhcp 200ms ll 100ms",
            mk(ch1.clone(), reduced(), 7),
        ),
        (
            "7 ifaces, ch1 50% ch6 50%, default TO",
            mk(multi.clone(), stock(), 7).with_schedule(half),
        ),
        (
            "7 ifaces, 3 chans eq, default TO",
            mk(multi.clone(), stock(), 7),
        ),
        (
            "7 ifaces, 3 chans eq, dhcp 200ms ll 100ms",
            mk(multi, reduced(), 7),
        ),
    ];
    let seeds: Vec<u64> = (1..=5).collect();
    let probe_s = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 15.0];

    let mut jobs = Vec::new();
    for (_, cfg) in &configs {
        for &seed in &seeds {
            jobs.push((cfg.clone(), seed));
        }
    }
    let cdfs = sweep(&jobs, |(cfg, seed)| {
        let world = town_scenario(&town_params(*seed));
        let result = World::new(world, SpiderDriver::new(cfg.clone())).run();
        result.join_log.join_cdf()
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (c, (label, _)) in configs.iter().enumerate() {
        let mut cdf = Cdf::new();
        for per_seed in &cdfs[c * seeds.len()..(c + 1) * seeds.len()] {
            cdf.merge(per_seed);
        }
        let row = CdfRow::probe(&mut cdf, &probe_s);
        let mut cells = vec![label.to_string(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.2}s", row.median));
        let mut csv = vec![label.to_string()];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 15: join delay CDF by scheduling policy",
        &[
            "policy", "n", "0.5s", "1s", "2s", "3s", "5s", "10s", "15s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig15.csv",
        &[
            "policy", "le_05s", "le_1s", "le_2s", "le_3s", "le_5s", "le_10s", "le_15s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
