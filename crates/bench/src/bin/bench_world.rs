//! `bench_world` — the engine's macro benchmark.
//!
//! Runs the three fixed-seed world workloads (sparse commute, dense
//! downtown, chaos storm), prints events/sec and wall-clock per
//! scenario, then times the parallel sweep runner on a batch of
//! Table 2 drives (serial vs worker pool), and writes
//! `BENCH_world.json` at the repository root.
//!
//! Flags:
//!
//! * `--fast`  — shorten simulated durations for CI smoke runs
//!   (identical deployments, so events/sec stays comparable).
//! * `--check` — before overwriting the JSON, compare fresh events/sec
//!   against the checked-in copy and exit non-zero if any scenario
//!   regressed by more than 2x.
//! * `--out PATH` — write the JSON somewhere else.
//! * `--engine-only` — skip the (slow) suite-sweep section; useful for
//!   checking the engine scenarios at full simulated durations without
//!   paying for a whole Table 2 batch. Implies no JSON write, so a
//!   checked-in baseline is never clobbered by a partial run.

use spider_bench::worldbench::{
    check_regressions, run_checkpoint_bench, run_prefix_tree_bench, run_scenario, run_suite_bench,
    scenarios, to_json,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn default_out() -> PathBuf {
    // crates/bench -> repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_world.json")
}

fn main() -> ExitCode {
    let mut fast = false;
    let mut check = false;
    let mut engine_only = false;
    let mut out = default_out();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--check" => check = true,
            "--engine-only" => engine_only = true,
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}; valid: --fast --check --engine-only --out PATH");
                return ExitCode::FAILURE;
            }
        }
    }

    let mode = if fast { "fast" } else { "full" };
    let baseline = if check {
        std::fs::read_to_string(&out).ok()
    } else {
        None
    };
    if check && baseline.is_none() {
        eprintln!("--check: no baseline at {}; gate skipped", out.display());
    }

    println!("world benchmark ({mode} mode)");
    let mut results = Vec::new();
    for spec in scenarios(fast) {
        let r = run_scenario(&spec);
        println!(
            "  {:<16} {:>5} sites  {:>4}s sim  {:>8.3}s wall  {:>9} events  {:>12.0} events/sec",
            r.name, r.sites, r.sim_secs, r.wall_secs, r.events, r.events_per_sec,
        );
        results.push(r);
    }

    if !engine_only {
        // The engine scenarios above are deliberately single-threaded;
        // this second section times the sweep runner on a batch of real
        // Table 2 drives, serial vs the worker pool.
        let suite = run_suite_bench(fast);
        println!(
            "  suite sweep      {:>2} jobs  {:>2} workers  {:>8.3}s cold-serial  {:>8.3}s forked-parallel  {:.2}x  {} events ({})",
            suite.jobs,
            suite.workers,
            suite.serial_wall_secs,
            suite.parallel_wall_secs,
            suite.speedup(),
            suite.events_cold,
            if suite.fan_identical { "fan bit-identical" } else { "FAN DIVERGED" },
        );
        // The wall-clock speedup is machine dependent (1.00 on a 1-vCPU
        // runner); the deterministic gate is the event accounting and
        // byte-identity of the forked fan.
        if !suite.fan_identical || suite.events_cold != suite.events_forked {
            eprintln!("suite bench: forked fan diverged from the cold serial leg");
            return ExitCode::FAILURE;
        }

        // Third section: the checkpoint/fork engine — a fork-resumed
        // run vs its cold twin, and a shrink campaign evaluated cold
        // vs through the checkpoint cache (DESIGN.md §13).
        let cp = run_checkpoint_bench(fast);
        println!(
            "  checkpoint       resume {:>7.3}s vs cold {:>7.3}s ({})  shrink {:>7.3}s vs {:>7.3}s, {:.2}x fewer events ({})",
            cp.fork_wall_secs,
            cp.cold_wall_secs,
            if cp.identical { "bit-identical" } else { "DIVERGED" },
            cp.shrink_forked_wall_secs,
            cp.shrink_cold_wall_secs,
            cp.events_ratio(),
            if cp.minimized_identical { "same artifact" } else { "ARTIFACT DIVERGED" },
        );
        if !cp.identical || !cp.minimized_identical {
            eprintln!("checkpoint bench: forked results diverged from cold runs");
            return ExitCode::FAILURE;
        }
        // Event counts are deterministic, so the sharing ratio is a
        // machine-independent figure — gate it, not just report it.
        if cp.events_ratio() < 3.0 {
            eprintln!(
                "checkpoint bench: shrink phase simulated only {:.2}x fewer events (target >=3x)",
                cp.events_ratio()
            );
            return ExitCode::FAILURE;
        }

        // Fourth section: the checkpoint prefix-tree — the Table 2
        // seed fan served by seed-rebased forks of one constructed
        // world per row, and a chaos campaign whose trials share
        // checkpoints through the divergence trie.
        let pt = run_prefix_tree_bench(fast);
        println!(
            "  prefix tree      fan {:>2} jobs: {:>7.3}s cold vs {:>7.3}s forked ({})  campaign {:>2} trials: {:>7.3}s vs {:>7.3}s, {:.2}x fewer events, depth {} ({})",
            pt.fan_jobs,
            pt.fan_cold_wall_secs,
            pt.fan_forked_wall_secs,
            if pt.fan_identical_w1 && pt.fan_identical_w4 { "bit-identical @1/@4 workers" } else { "DIVERGED" },
            pt.campaign_trials,
            pt.campaign_cold_wall_secs,
            pt.campaign_forked_wall_secs,
            pt.campaign_events_ratio(),
            pt.tree_depth,
            if pt.campaign_identical { "report identical" } else { "REPORT DIVERGED" },
        );
        if !pt.fan_identical_w1 || !pt.fan_identical_w4 {
            eprintln!("prefix-tree bench: forked seed fan diverged from cold construction");
            return ExitCode::FAILURE;
        }
        if !pt.campaign_identical {
            eprintln!("prefix-tree bench: forked campaign report diverged from the cold report");
            return ExitCode::FAILURE;
        }
        // Deterministic event accounting: the trie must actually share
        // work across trials, not just break even.
        if pt.campaign_events_ratio() < 1.3 {
            eprintln!(
                "prefix-tree bench: campaign trie simulated only {:.2}x fewer events (target >=1.3x)",
                pt.campaign_events_ratio()
            );
            return ExitCode::FAILURE;
        }

        let json = to_json(mode, &results, Some(&suite), Some(&cp), Some(&pt));
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("failed to write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", out.display());
    }

    if let Some(baseline) = baseline {
        let failures = check_regressions(&baseline, &results);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("check passed: no scenario regressed more than 2x");
    }
    ExitCode::SUCCESS
}
