//! Ablation: *why* do multi-channel joins fail? The paper's answer: the
//! join's DHCP responses cannot be PSM-buffered while the client serves
//! another channel (§1). This counterfactual grants APs a magic ability
//! real 802.11 lacks — buffering DHCP responses for sleeping clients —
//! and measures how much of the multi-channel join penalty disappears.

use spider_bench::{print_table, town_params, write_csv};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, Cdf, OnlineStats, SimDuration};
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let worlds = [
        ("real 802.11 (join traffic unbufferable)", false),
        ("counterfactual (APs buffer DHCP for sleepers)", true),
    ];
    let seeds: Vec<u64> = (1..=5).collect();

    let mut jobs = Vec::new();
    for &(_, magic_buffering) in &worlds {
        for &seed in &seeds {
            jobs.push((magic_buffering, seed));
        }
    }
    let drives = sweep(&jobs, |&(magic_buffering, seed)| {
        let mut world = town_scenario(&town_params(seed));
        world.psm_buffers_join_traffic = magic_buffering;
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
            1,
        );
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        (
            result.join_log.dhcp_failure_ratio(),
            result.throughput_kbs(),
            result.join_log.join_cdf(),
        )
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (w, &(label, _)) in worlds.iter().enumerate() {
        let mut fail = OnlineStats::new();
        let mut thr = OnlineStats::new();
        let mut joins = Cdf::new();
        for (fail_ratio, kbs, join_cdf) in &drives[w * seeds.len()..(w + 1) * seeds.len()] {
            if let Some(r) = fail_ratio {
                fail.push(r * 100.0);
            }
            thr.push(*kbs);
            joins.merge(join_cdf);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", fail.mean()),
            format!("{:.2}", joins.median()),
            format!("{:.1}", thr.mean()),
        ]);
        table.push(vec![
            label.to_string(),
            format!("{:.1}%", fail.mean()),
            format!("{:.2}s", joins.median()),
            format!("{:.1} KB/s", thr.mean()),
        ]);
    }
    print_table(
        "Ablation: is the multi-channel penalty really the unbufferable join?",
        &["world", "dhcp failures", "median join", "throughput"],
        &table,
    );
    let path = write_csv(
        "ablation_psm.csv",
        &["world", "dhcp_fail_pct", "median_join_s", "throughput_kbs"],
        rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\n3-channel schedule, 30-minute drives. If the counterfactual closes\n\
         most of the failure gap, the paper's mechanism is confirmed: it is\n\
         the DHCP exchange's intolerance of absence — not switching cost or\n\
         airtime — that breaks fractional schedules."
    );
}
