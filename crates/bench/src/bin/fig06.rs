//! Figure 6: rate of successful DHCP leases on channel 6 as a function
//! of the schedule and the DHCP timeout.
//!
//! Series: f₆ ∈ {25, 50, 100} % with 100 ms DHCP message timeouts, plus
//! f₆ = 100 % with default (stock) timers. The paper's findings: reduced
//! timers cut the median lease time (2.5 s → 1.3 s at f₆ = 100 %), and
//! DHCP — unlike association — is *not* robust to small channel
//! fractions.

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientMacConfig;
use spider_netstack::DhcpClientConfig;
use spider_simcore::{sweep, Cdf, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

/// Lease CDF + failure/success counts from one drive.
struct DriveStats {
    cdf: Cdf,
    failures: u64,
    successes: u64,
}

fn main() {
    let configs: Vec<(String, f64, DhcpClientConfig)> = vec![
        (
            "25% - 100ms".into(),
            0.25,
            DhcpClientConfig::reduced(SimDuration::from_millis(100)),
        ),
        (
            "50% - 100ms".into(),
            0.50,
            DhcpClientConfig::reduced(SimDuration::from_millis(100)),
        ),
        (
            "100% - 100ms".into(),
            1.00,
            DhcpClientConfig::reduced(SimDuration::from_millis(100)),
        ),
        ("100% - default".into(), 1.00, DhcpClientConfig::stock()),
    ];
    let seeds: Vec<u64> = (1..=5).collect();
    let probe_s = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 15.0];

    let mut jobs = Vec::new();
    for (c, (_, f6, dhcp)) in configs.iter().enumerate() {
        for &seed in &seeds {
            jobs.push((c, *f6, dhcp.clone(), seed));
        }
    }
    let drives = sweep(&jobs, |(_, f6, dhcp, seed)| {
        let schedule = StdConfigs::f6_schedule(*f6);
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: schedule.period(),
            },
            1,
        )
        .with_schedule(schedule)
        .with_candidates(vec![Channel::CH6])
        .with_timeouts(ClientMacConfig::reduced(), dhcp.clone());
        let world = town_scenario(&spider_bench::town_params(*seed));
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        DriveStats {
            cdf: result.join_log.dhcp_cdf(),
            failures: result.join_log.dhcp_failures,
            successes: result.join_log.dhcp.len() as u64,
        }
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (c, (label, f6, _)) in configs.iter().enumerate() {
        let mut cdf = Cdf::new();
        let mut failures = 0u64;
        let mut successes = 0u64;
        for drive in &drives[c * seeds.len()..(c + 1) * seeds.len()] {
            cdf.merge(&drive.cdf);
            failures += drive.failures;
            successes += drive.successes;
        }
        let fail_rate = failures as f64 / (failures + successes).max(1) as f64;
        let row = CdfRow::probe(&mut cdf, &probe_s);
        let mut cells = vec![label.clone(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.2}s", row.median));
        cells.push(format!("{:.0}%", fail_rate * 100.0));
        let mut csv = vec![format!("{f6}")];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 6: fraction of successful DHCP leases within t",
        &[
            "config", "n", "0.5s", "1s", "2s", "3s", "5s", "10s", "15s", "median", "fail%",
        ],
        &table,
    );
    let path = write_csv(
        "fig06.csv",
        &[
            "f6", "le_05s", "le_1s", "le_2s", "le_3s", "le_5s", "le_10s", "le_15s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
