//! Figure 14: rate of successful joins (association + DHCP, verified by
//! ping) as a function of the DHCP timeout — 200/400/600 ms and default
//! timers on channel 1, plus default and 200 ms over three channels.
//!
//! The paper's finding: reduced timeouts improve the median join time,
//! but "the cost of switching among channels overshadows the benefit";
//! multi-channel joins take ~2x longer.

use spider_bench::{print_table, town_params, write_csv, CdfRow};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientMacConfig;
use spider_netstack::DhcpClientConfig;
use spider_simcore::{sweep, Cdf, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let ll = ClientMacConfig::reduced;
    let configs: Vec<(&str, bool, ClientMacConfig, DhcpClientConfig)> = vec![
        (
            "200ms, channel 1",
            false,
            ll(),
            DhcpClientConfig::reduced(SimDuration::from_millis(200)),
        ),
        (
            "400ms, channel 1",
            false,
            ll(),
            DhcpClientConfig::reduced(SimDuration::from_millis(400)),
        ),
        (
            "600ms, channel 1",
            false,
            ll(),
            DhcpClientConfig::reduced(SimDuration::from_millis(600)),
        ),
        (
            "default, channel 1",
            false,
            ClientMacConfig::stock(),
            DhcpClientConfig::stock(),
        ),
        (
            "default, 3 channels",
            true,
            ClientMacConfig::stock(),
            DhcpClientConfig::stock(),
        ),
        (
            "200ms, 3 channels",
            true,
            ll(),
            DhcpClientConfig::reduced(SimDuration::from_millis(200)),
        ),
    ];
    let seeds: Vec<u64> = (1..=5).collect();
    let probe_s = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 15.0];

    let mut jobs = Vec::new();
    for (multi, mac, dhcp) in configs.iter().map(|(_, m, mac, dhcp)| (*m, mac, dhcp)) {
        for &seed in &seeds {
            jobs.push((multi, mac.clone(), dhcp.clone(), seed));
        }
    }
    let cdfs = sweep(&jobs, |(multi, mac, dhcp, seed)| {
        let mode = if *multi {
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            }
        } else {
            OperationMode::SingleChannelMultiAp(Channel::CH1)
        };
        let spider = SpiderConfig::for_mode(mode, 1).with_timeouts(mac.clone(), dhcp.clone());
        let world = town_scenario(&town_params(*seed));
        let result = World::new(world, SpiderDriver::new(spider)).run();
        result.join_log.join_cdf()
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (c, (label, ..)) in configs.iter().enumerate() {
        let mut cdf = Cdf::new();
        for per_seed in &cdfs[c * seeds.len()..(c + 1) * seeds.len()] {
            cdf.merge(per_seed);
        }
        let row = CdfRow::probe(&mut cdf, &probe_s);
        let mut cells = vec![label.to_string(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.2}s", row.median));
        let mut csv = vec![label.to_string()];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 14: fraction of successful joins within t, by DHCP timeout",
        &[
            "config", "n", "0.5s", "1s", "2s", "3s", "5s", "10s", "15s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig14.csv",
        &[
            "config", "le_05s", "le_1s", "le_2s", "le_3s", "le_5s", "le_10s", "le_15s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
