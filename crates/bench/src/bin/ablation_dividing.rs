//! Ablation: sensitivity of the dividing speed (Fig. 4) to the AP
//! response time βmax and frame loss h.
//!
//! Slower APs and lossier channels push the dividing speed down: the
//! faster you move, the less tolerance there is for joining elsewhere.

use spider_bench::{print_table, write_csv};
use spider_model::{ChannelScenario, JoinModel, ThroughputOptimizer};
use spider_simcore::sweep;

fn main() {
    let speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 13.3, 20.0];
    let scenarios = [
        ChannelScenario {
            joined_frac: 0.75,
            available_frac: 0.0,
        },
        ChannelScenario {
            joined_frac: 0.0,
            available_frac: 0.25,
        },
    ];
    let mut jobs = Vec::new();
    for beta_max in [2.0, 5.0, 10.0] {
        for h in [0.0, 0.1, 0.3] {
            jobs.push((beta_max, h));
        }
    }
    let dividing = sweep(&jobs, |&(beta_max, h)| {
        let mut model = JoinModel::paper_defaults(beta_max);
        model.h = h;
        let optimizer = ThroughputOptimizer::paper(model);
        optimizer.dividing_speed(&scenarios, &speeds)
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&(beta_max, h), div) in jobs.iter().zip(&dividing) {
        rows.push(vec![
            format!("{beta_max}"),
            format!("{h}"),
            format!("{:?}", div),
        ]);
        table.push(vec![
            format!("{beta_max}"),
            format!("{h}"),
            div.map(|v| format!("{v} m/s")).unwrap_or("> 20 m/s".into()),
        ]);
    }
    print_table(
        "Ablation: dividing speed vs beta_max and loss h (75/25 scenario)",
        &["beta_max(s)", "h", "dividing speed"],
        &table,
    );
    let path = write_csv(
        "ablation_dividing.csv",
        &["beta_max", "h", "dividing_speed"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
