//! Ablation: the §4.8 adaptive scheduler vs the four static modes,
//! across speeds.
//!
//! The adaptive policy should track the best static mode at each speed:
//! multi-channel at walking pace (connectivity-rich), single-channel at
//! vehicular speed (the dividing-speed result).

use spider_bench::{print_table, write_csv, town_params};
use spider_core::adaptive::{AdaptivePolicy, AdaptiveSpider};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let period = SimDuration::from_millis(600);
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for speed in [2.5, 5.0, 10.0, 20.0] {
        let mut params = town_params(1);
        params.speed_mps = speed;
        // Static modes.
        let mut cells = vec![format!("{speed}")];
        let mut row = vec![speed];
        for (name, mode) in [
            ("ch1 multi-AP", OperationMode::SingleChannelMultiAp(Channel::CH1)),
            ("3ch multi-AP", OperationMode::MultiChannelMultiAp { period }),
        ] {
            let world = town_scenario(&params);
            let result = World::new(world, SpiderDriver::new(SpiderConfig::for_mode(mode, 1))).run();
            let _ = name;
            row.push(result.throughput_kbs());
            row.push(result.connectivity_pct());
            cells.push(format!("{:.0}/{:.0}%", result.throughput_kbs(), result.connectivity_pct()));
        }
        // Adaptive.
        let world = town_scenario(&params);
        let inner = SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH6),
            1,
        ));
        let mut adaptive = AdaptiveSpider::new(inner, AdaptivePolicy::default());
        adaptive.set_speed_hint(speed);
        let result = World::new(world, adaptive).run();
        row.push(result.throughput_kbs());
        row.push(result.connectivity_pct());
        cells.push(format!("{:.0}/{:.0}%", result.throughput_kbs(), result.connectivity_pct()));
        rows.push(row);
        table.push(cells);
    }
    print_table(
        "Ablation: adaptive scheduling vs static modes (KB/s / connectivity)",
        &["speed(m/s)", "static ch1 multi-AP", "static 3ch multi-AP", "adaptive"],
        &table,
    );
    let path = write_csv(
        "ablation_adaptive.csv",
        &["speed", "ch1_kbs", "ch1_conn", "m3_kbs", "m3_conn", "adaptive_kbs", "adaptive_conn"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
