//! Ablation: the §4.8 adaptive scheduler vs the four static modes,
//! across speeds.
//!
//! The adaptive policy should track the best static mode at each speed:
//! multi-channel at walking pace (connectivity-rich), single-channel at
//! vehicular speed (the dividing-speed result).

use spider_bench::{print_table, town_params, write_csv};
use spider_core::adaptive::{AdaptivePolicy, AdaptiveSpider};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

/// Policies measured per speed, in column order.
const POLICIES: usize = 3;

fn run_policy(policy: usize, speed: f64) -> (f64, f64) {
    let period = SimDuration::from_millis(600);
    let mut params = town_params(1);
    params.speed_mps = speed;
    let world = town_scenario(&params);
    let result = match policy {
        0 => {
            let mode = OperationMode::SingleChannelMultiAp(Channel::CH1);
            World::new(world, SpiderDriver::new(SpiderConfig::for_mode(mode, 1))).run()
        }
        1 => {
            let mode = OperationMode::MultiChannelMultiAp { period };
            World::new(world, SpiderDriver::new(SpiderConfig::for_mode(mode, 1))).run()
        }
        _ => {
            let inner = SpiderDriver::new(SpiderConfig::for_mode(
                OperationMode::SingleChannelMultiAp(Channel::CH6),
                1,
            ));
            let mut adaptive = AdaptiveSpider::new(inner, AdaptivePolicy::default());
            adaptive.set_speed_hint(speed);
            World::new(world, adaptive).run()
        }
    };
    (result.throughput_kbs(), result.connectivity_pct())
}

fn main() {
    let speeds = [2.5, 5.0, 10.0, 20.0];
    let mut jobs = Vec::new();
    for &speed in &speeds {
        for policy in 0..POLICIES {
            jobs.push((policy, speed));
        }
    }
    let results = sweep(&jobs, |&(policy, speed)| run_policy(policy, speed));

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (s, &speed) in speeds.iter().enumerate() {
        let mut cells = vec![format!("{speed}")];
        let mut row = vec![speed];
        for policy in 0..POLICIES {
            let (kbs, conn) = results[s * POLICIES + policy];
            row.push(kbs);
            row.push(conn);
            cells.push(format!("{kbs:.0}/{conn:.0}%"));
        }
        rows.push(row);
        table.push(cells);
    }
    print_table(
        "Ablation: adaptive scheduling vs static modes (KB/s / connectivity)",
        &[
            "speed(m/s)",
            "static ch1 multi-AP",
            "static 3ch multi-AP",
            "adaptive",
        ],
        &table,
    );
    let path = write_csv(
        "ablation_adaptive.csv",
        &[
            "speed",
            "ch1_kbs",
            "ch1_conn",
            "m3_kbs",
            "m3_conn",
            "adaptive_kbs",
            "adaptive_conn",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
