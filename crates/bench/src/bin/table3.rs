//! Table 3: DHCP failure probabilities for different timeout
//! configurations (mean ± sd over five drives).
//!
//! Shape targets: reducing the DHCP timeout raises the failure rate
//! (smaller window for slow APs to answer); multi-channel schedules
//! fail more than single-channel at the same timers; default timers
//! fail least but are slow (see Fig. 14 for the flip side).

use spider_bench::{print_table, town_params, write_csv};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_mac80211::ClientMacConfig;
use spider_netstack::DhcpClientConfig;
use spider_simcore::{sweep, OnlineStats, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

struct Config {
    label: &'static str,
    multi_channel: bool,
    mac: ClientMacConfig,
    dhcp: DhcpClientConfig,
}

fn main() {
    let ll100 = ClientMacConfig::reduced();
    let configs = [
        Config {
            label: "chan 1, linklayer 100ms, dhcp 600ms, 7 ifaces",
            multi_channel: false,
            mac: ll100.clone(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(600)),
        },
        Config {
            label: "chan 1, linklayer 100ms, dhcp 400ms, 7 ifaces",
            multi_channel: false,
            mac: ll100.clone(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(400)),
        },
        Config {
            label: "chan 1, linklayer 100ms, dhcp 200ms, 7 ifaces",
            multi_channel: false,
            mac: ll100.clone(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(200)),
        },
        Config {
            label: "3 chans, static 1/3, ll 100ms, dhcp 200ms, 7 ifaces",
            multi_channel: true,
            mac: ll100.clone(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(200)),
        },
        Config {
            label: "chan 1, default timers, 7 ifaces",
            multi_channel: false,
            mac: ClientMacConfig::stock(),
            dhcp: DhcpClientConfig::stock(),
        },
        Config {
            label: "3 chans, static 1/3, default timers, 7 ifaces",
            multi_channel: true,
            mac: ClientMacConfig::stock(),
            dhcp: DhcpClientConfig::stock(),
        },
    ];
    let seeds: Vec<u64> = (1..=5).collect();

    let mut jobs = Vec::new();
    for cfg in &configs {
        for &seed in &seeds {
            jobs.push((cfg.multi_channel, cfg.mac.clone(), cfg.dhcp.clone(), seed));
        }
    }
    let failure_rates = sweep(&jobs, |(multi_channel, mac, dhcp, seed)| {
        let mode = if *multi_channel {
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            }
        } else {
            OperationMode::SingleChannelMultiAp(Channel::CH1)
        };
        let spider = SpiderConfig::for_mode(mode, 1).with_timeouts(mac.clone(), dhcp.clone());
        let world = town_scenario(&town_params(*seed));
        let result = World::new(world, SpiderDriver::new(spider)).run();
        result.join_log.dhcp_failure_ratio()
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (c, cfg) in configs.iter().enumerate() {
        let mut stats = OnlineStats::new();
        for rate in failure_rates[c * seeds.len()..(c + 1) * seeds.len()]
            .iter()
            .flatten()
        {
            stats.push(rate * 100.0);
        }
        rows.push(vec![
            cfg.label.to_string(),
            format!("{:.1}", stats.mean()),
            format!("{:.1}", stats.std_dev()),
        ]);
        table.push(vec![
            cfg.label.to_string(),
            format!("{:.1}% ± {:.1}%", stats.mean(), stats.std_dev()),
        ]);
    }
    print_table(
        "Table 3: DHCP failure probabilities",
        &["parameters", "Failed dhcp"],
        &table,
    );
    let path = write_csv("table3.csv", &["config", "fail_pct", "sd"], rows);
    println!("\nwrote {}", path.display());
    println!("\nPaper: 23.0±6.4, 27.1±5.4, 28.2±4.0, 23.6±10.7, 13.5±6.3, 21.8±6.9 %");
}
