//! Table 2: average throughput and connectivity for the four Spider
//! configurations on the town drive, the Cambridge external-validation
//! row, and the stock MadWiFi driver.
//!
//! Shape targets: single-channel multi-AP wins throughput by a large
//! factor; multi-channel multi-AP wins connectivity; Spider beats
//! MadWiFi on both (the paper: 2.5× throughput, 2× connectivity).

use spider_bench::{emit_runs_json, print_table, write_csv, StdConfigs};
use spider_simcore::OnlineStats;

fn main() {
    // All (row, seed) combinations run as one flat 18-job sweep.
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut artifacts = Vec::new();
    for (label, results) in StdConfigs::table2_seeds(&seeds) {
        for (result, &seed) in results.iter().zip(&seeds) {
            artifacts.push((format!("{label} seed={seed}"), result.clone()));
        }
        let mut thr = OnlineStats::new();
        let mut conn = OnlineStats::new();
        for result in &results {
            thr.push(result.throughput_kbs());
            conn.push(result.connectivity_pct());
        }
        rows.push(vec![
            label.clone(),
            format!("{:.1}", thr.mean()),
            format!("{:.1}", conn.mean()),
        ]);
        table.push(vec![
            label,
            format!("{:.1} ± {:.1}", thr.mean(), thr.std_dev()),
            format!("{:.1} ± {:.1}", conn.mean(), conn.std_dev()),
        ]);
    }
    print_table(
        "Table 2: avg throughput and connectivity per configuration",
        &["(Config) Parameters", "Throughput KB/s", "Connectivity %"],
        &table,
    );
    let path = write_csv(
        "table2.csv",
        &["config", "throughput_kbs", "connectivity_pct"],
        rows,
    );
    println!("\nwrote {}", path.display());
    let json_path = emit_runs_json("table2_runs.json", &artifacts);
    println!("wrote {}", json_path.display());
    println!(
        "\nPaper: (1) 121.5 KB/s 35.5%  (2) 28.0 22.3%  (3) 28.8 44.6%\n\
         (4) 77.9 40.2%  Cambridge ch6 single 90.7 36.4%  MadWiFi 35.9 18.0%"
    );
}
