//! Figure 12: CDF of disruption lengths for the four Spider
//! configurations.
//!
//! The paper: multi-channel multi-AP has the *shortest* disruptions
//! (largest AP pool); single-channel configurations suffer the longest
//! outages (stretches of road with no AP on the chosen channel).
//!
//! The four runs come from [`StdConfigs::table2`], which fans them out
//! as one parallel sweep.

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};

fn main() {
    let probe_s = [2.0, 5.0, 10.0, 30.0, 60.0, 150.0, 300.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, result) in StdConfigs::table2(1).into_iter().take(4) {
        let mut cdf = result.disruption_cdf();
        let row = CdfRow::probe(&mut cdf, &probe_s);
        let mut cells = vec![label.clone(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.1}s", row.median));
        let mut csv = vec![label];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 12: CDF of disruption length (fraction of disruptions <= t)",
        &[
            "config", "n", "2s", "5s", "10s", "30s", "60s", "150s", "300s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig12.csv",
        &[
            "config", "le_2s", "le_5s", "le_10s", "le_30s", "le_60s", "le_150s", "le_300s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
