//! Figure 12: CDF of disruption lengths for the four Spider
//! configurations.
//!
//! The paper: multi-channel multi-AP has the *shortest* disruptions
//! (largest AP pool); single-channel configurations suffer the longest
//! outages (stretches of road with no AP on the chosen channel).

use spider_bench::{print_table, write_csv, StdConfigs};

fn main() {
    let probe_s = [2.0, 5.0, 10.0, 30.0, 60.0, 150.0, 300.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, result) in StdConfigs::table2(1).into_iter().take(4) {
        let mut cdf = result.disruption_cdf();
        let mut cells = vec![label.clone(), format!("{}", cdf.len())];
        let mut row = vec![label.clone()];
        for &s in &probe_s {
            let frac = cdf.fraction_le(s);
            row.push(format!("{frac:.3}"));
            cells.push(format!("{frac:.2}"));
        }
        cells.push(format!("{:.1}s", cdf.median()));
        rows.push(row);
        table.push(cells);
    }
    print_table(
        "Fig 12: CDF of disruption length (fraction of disruptions <= t)",
        &["config", "n", "2s", "5s", "10s", "30s", "60s", "150s", "300s", "median"],
        &table,
    );
    let path = write_csv(
        "fig12.csv",
        &["config", "le_2s", "le_5s", "le_10s", "le_30s", "le_60s", "le_150s", "le_300s"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
