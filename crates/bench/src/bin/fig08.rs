//! Figure 8: average TCP throughput as a function of the *absolute* time
//! spent on each channel under an equal 3-channel schedule (indoor
//! static client, one AP on the primary channel: for dwell x, the
//! client is away for 2x).
//!
//! The paper's point: unlike Fig. 7's fixed 400 ms period, growing the
//! period means long absences — TCP timeouts and slow-start make the
//! curve non-monotonic.

use spider_bench::{print_table, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::indoor_scenario;
use spider_workloads::World;

fn main() {
    let backhaul = 500_000.0;
    let jobs: Vec<u64> = vec![25, 50, 75, 100, 150, 200, 300, 400];
    let results = sweep(&jobs, |&dwell_ms| {
        let period = SimDuration::from_millis(3 * dwell_ms);
        let schedule = ChannelSchedule::equal(&Channel::ORTHOGONAL, period);
        let cfg = SpiderConfig::for_mode(OperationMode::MultiChannelMultiAp { period }, 1)
            .with_schedule(schedule);
        let world = indoor_scenario(
            &[Channel::CH1],
            10.0,
            backhaul,
            SimDuration::from_secs(120),
            7,
        );
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        (
            result.avg_throughput_bps * 8.0 / 1_000.0,
            result.tcp_timeouts,
        )
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&dwell_ms, &(kbps, timeouts)) in jobs.iter().zip(&results) {
        rows.push(vec![dwell_ms as f64, kbps, timeouts as f64]);
        table.push(vec![
            format!("{dwell_ms}ms"),
            format!("{kbps:.0}"),
            format!("{timeouts}"),
        ]);
    }
    print_table(
        "Fig 8: avg TCP throughput vs absolute per-channel dwell (away 2x)",
        &["dwell per channel", "throughput (kb/s)", "TCP timeouts"],
        &table,
    );
    let path = write_csv(
        "fig08.csv",
        &["dwell_ms", "throughput_kbps", "tcp_timeouts"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
