//! Figure 10: throughput micro-benchmark — aggregate throughput vs the
//! backhaul bandwidth available through each AP, for five
//! configurations:
//!
//! * one card, stock driver (single AP),
//! * two cards, stock drivers (reported as 2× the single-card run —
//!   two independent radios don't interact below saturation),
//! * Spider (100, 0, 0): two APs on channel 1, no switching,
//! * Spider (50, 0, 50): one AP each on channels 1 and 11, 50 ms dwell,
//! * Spider (100, 0, 100): same, 100 ms dwell.
//!
//! Expected shape: Spider on one channel tracks the two-card line (2×
//! backhaul) until the air saturates; multi-channel schedules trade
//! throughput for switching overhead, with the faster schedule better
//! at high backhaul.

use spider_baselines::{StockConfig, StockDriver};
use spider_bench::{print_table, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::lab_scenario;
use spider_workloads::World;

const RUN: SimDuration = SimDuration::from_secs(60);

fn spider(schedule: ChannelSchedule, max_aps: usize) -> SpiderDriver {
    let mode = OperationMode::MultiChannelMultiAp {
        period: schedule.period(),
    };
    let mut cfg = SpiderConfig::for_mode(mode, 1).with_schedule(schedule);
    cfg.max_concurrent = max_aps;
    SpiderDriver::new(cfg)
}

fn main() {
    // Backhaul sweep: 0.5 - 5 Mb/s per AP, in bytes/second.
    let backhauls_mbps = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &mbps in &backhauls_mbps {
        let bps = mbps * 1e6 / 8.0;
        // One card, stock.
        let one = World::new(
            lab_scenario(&[Channel::CH1], bps, RUN, 3),
            StockDriver::new(StockConfig::quickwifi(1)),
        )
        .run();
        // Spider, two APs on ch1, all time there.
        let s100 = World::new(
            lab_scenario(&[Channel::CH1, Channel::CH1], bps, RUN, 3),
            spider(ChannelSchedule::single(Channel::CH1), 7),
        )
        .run();
        // Spider across ch1 + ch11 with 50ms / 100ms dwells.
        let s50_50 = World::new(
            lab_scenario(&[Channel::CH1, Channel::CH11], bps, RUN, 3),
            spider(
                ChannelSchedule::custom(
                    SimDuration::from_millis(100),
                    vec![(Channel::CH1, 0.5), (Channel::CH11, 0.5)],
                ),
                7,
            ),
        )
        .run();
        let s100_100 = World::new(
            lab_scenario(&[Channel::CH1, Channel::CH11], bps, RUN, 3),
            spider(
                ChannelSchedule::custom(
                    SimDuration::from_millis(200),
                    vec![(Channel::CH1, 0.5), (Channel::CH11, 0.5)],
                ),
                7,
            ),
        )
        .run();
        let kb = |r: &spider_workloads::RunResult| r.avg_throughput_bps / 1_000.0;
        rows.push(vec![
            mbps,
            kb(&one),
            2.0 * kb(&one),
            kb(&s100),
            kb(&s50_50),
            kb(&s100_100),
        ]);
        table.push(vec![
            format!("{mbps}"),
            format!("{:.0}", kb(&one)),
            format!("{:.0}", 2.0 * kb(&one)),
            format!("{:.0}", kb(&s100)),
            format!("{:.0}", kb(&s50_50)),
            format!("{:.0}", kb(&s100_100)),
        ]);
    }
    print_table(
        "Fig 10: aggregate throughput (KB/s) vs per-AP backhaul",
        &[
            "backhaul(Mbps)",
            "1 card stock",
            "2 cards stock",
            "Spider(100,0,0)",
            "Spider(50,0,50)",
            "Spider(100,0,100)",
        ],
        &table,
    );
    let path = write_csv(
        "fig10.csv",
        &[
            "backhaul_mbps",
            "one_stock_kbs",
            "two_stock_kbs",
            "spider_100_kbs",
            "spider_50_50_kbs",
            "spider_100_100_kbs",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
