//! Figure 10: throughput micro-benchmark — aggregate throughput vs the
//! backhaul bandwidth available through each AP, for five
//! configurations:
//!
//! * one card, stock driver (single AP),
//! * two cards, stock drivers (reported as 2× the single-card run —
//!   two independent radios don't interact below saturation),
//! * Spider (100, 0, 0): two APs on channel 1, no switching,
//! * Spider (50, 0, 50): one AP each on channels 1 and 11, 50 ms dwell,
//! * Spider (100, 0, 100): same, 100 ms dwell.
//!
//! Expected shape: Spider on one channel tracks the two-card line (2×
//! backhaul) until the air saturates; multi-channel schedules trade
//! throughput for switching overhead, with the faster schedule better
//! at high backhaul.

use spider_baselines::{StockConfig, StockDriver};
use spider_bench::{print_table, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::lab_scenario;
use spider_workloads::World;

const RUN: SimDuration = SimDuration::from_secs(60);

/// The measured lab configurations, in column order.
const KINDS: usize = 4;

fn spider(schedule: ChannelSchedule, max_aps: usize) -> SpiderDriver {
    let mode = OperationMode::MultiChannelMultiAp {
        period: schedule.period(),
    };
    let mut cfg = SpiderConfig::for_mode(mode, 1).with_schedule(schedule);
    cfg.max_concurrent = max_aps;
    SpiderDriver::new(cfg)
}

/// Run lab configuration `kind` at `bps` backhaul; returns KB/s.
fn run_kind(kind: usize, bps: f64) -> f64 {
    let result = match kind {
        // One card, stock.
        0 => World::new(
            lab_scenario(&[Channel::CH1], bps, RUN, 3),
            StockDriver::new(StockConfig::quickwifi(1)),
        )
        .run(),
        // Spider, two APs on ch1, all time there.
        1 => World::new(
            lab_scenario(&[Channel::CH1, Channel::CH1], bps, RUN, 3),
            spider(ChannelSchedule::single(Channel::CH1), 7),
        )
        .run(),
        // Spider across ch1 + ch11 with 50ms / 100ms dwells.
        2 => World::new(
            lab_scenario(&[Channel::CH1, Channel::CH11], bps, RUN, 3),
            spider(
                ChannelSchedule::custom(
                    SimDuration::from_millis(100),
                    vec![(Channel::CH1, 0.5), (Channel::CH11, 0.5)],
                ),
                7,
            ),
        )
        .run(),
        _ => World::new(
            lab_scenario(&[Channel::CH1, Channel::CH11], bps, RUN, 3),
            spider(
                ChannelSchedule::custom(
                    SimDuration::from_millis(200),
                    vec![(Channel::CH1, 0.5), (Channel::CH11, 0.5)],
                ),
                7,
            ),
        )
        .run(),
    };
    result.avg_throughput_bps / 1_000.0
}

fn main() {
    // Backhaul sweep: 0.5 - 5 Mb/s per AP, in bytes/second.
    let backhauls_mbps = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0];
    let mut jobs = Vec::new();
    for &mbps in &backhauls_mbps {
        for kind in 0..KINDS {
            jobs.push((mbps, kind));
        }
    }
    let kbs = sweep(&jobs, |&(mbps, kind)| run_kind(kind, mbps * 1e6 / 8.0));

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (b, &mbps) in backhauls_mbps.iter().enumerate() {
        let at = |kind: usize| kbs[b * KINDS + kind];
        let (one, s100, s50_50, s100_100) = (at(0), at(1), at(2), at(3));
        rows.push(vec![mbps, one, 2.0 * one, s100, s50_50, s100_100]);
        table.push(vec![
            format!("{mbps}"),
            format!("{one:.0}"),
            format!("{:.0}", 2.0 * one),
            format!("{s100:.0}"),
            format!("{s50_50:.0}"),
            format!("{s100_100:.0}"),
        ]);
    }
    print_table(
        "Fig 10: aggregate throughput (KB/s) vs per-AP backhaul",
        &[
            "backhaul(Mbps)",
            "1 card stock",
            "2 cards stock",
            "Spider(100,0,0)",
            "Spider(50,0,50)",
            "Spider(100,0,100)",
        ],
        &table,
    );
    let path = write_csv(
        "fig10.csv",
        &[
            "backhaul_mbps",
            "one_stock_kbs",
            "two_stock_kbs",
            "spider_100_kbs",
            "spider_50_50_kbs",
            "spider_100_100_kbs",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
