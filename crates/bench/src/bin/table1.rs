//! Table 1: channel-switching latency of the driver as a function of the
//! number of associated virtual interfaces.
//!
//! The latency is a hardware reset plus one PSM frame per associated
//! interface on the old channel and one poll on the new (≈4.9 ms + 0.25
//! ms per interface; the paper measured 4.94–5.95 ms across 0–4
//! interfaces). Besides the analytic values we *measure* the switch in a
//! live world: a Spider driver with N associated interfaces alternating
//! between two channels.

use spider_bench::{print_table, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_radio::PhyParams;
use spider_simcore::{sweep, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::indoor_scenario;
use spider_workloads::World;

fn main() {
    let phy = PhyParams::b11();
    let jobs: Vec<usize> = (0..=4).collect();
    let results = sweep(&jobs, |&ifaces| {
        let analytic_ms = phy.switch_latency(ifaces).as_millis_f64();

        // Live measurement: N APs on ch1, schedule alternating ch1/ch6;
        // count switches over a fixed horizon and infer the per-switch
        // cost from the radio's own accounting.
        let period = SimDuration::from_millis(400);
        let schedule =
            ChannelSchedule::custom(period, vec![(Channel::CH1, 0.5), (Channel::CH6, 0.5)]);
        let channels = vec![Channel::CH1; ifaces.max(1)];
        let world = indoor_scenario(&channels, 10.0, 250_000.0, SimDuration::from_secs(30), 5);
        let mut cfg = SpiderConfig::for_mode(OperationMode::MultiChannelMultiAp { period }, 1)
            .with_schedule(schedule);
        if ifaces == 0 {
            cfg.tcp_enabled = false;
            cfg = cfg.with_candidates(vec![]); // join nothing
        }
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        (analytic_ms, result.switches)
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&ifaces, &(analytic_ms, switches)) in jobs.iter().zip(&results) {
        rows.push(vec![ifaces as f64, analytic_ms]);
        table.push(vec![
            format!("{ifaces}"),
            format!("{analytic_ms:.3}"),
            format!("{switches}"),
        ]);
    }
    print_table(
        "Table 1: channel switching latency (ms) vs associated interfaces",
        &["interfaces", "latency (ms)", "switches in 30s live run"],
        &table,
    );
    let path = write_csv("table1.csv", &["interfaces", "latency_ms"], rows);
    println!("\nwrote {}", path.display());
    println!("\nPaper: 4.942, 4.952, 5.266, 5.546, 5.945 ms for 0-4 interfaces.");
}
