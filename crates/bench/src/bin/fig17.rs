//! Figure 17: comparison of disruption lengths — mesh users'
//! inter-connection gaps vs Spider's disruptions.
//!
//! The paper: "when Spider uses multiple channels and multiple APs, it
//! experiences disruptions comparable to what real users can sustain."

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};
use spider_workloads::meshusers::{generate, MeshUserParams};

fn main() {
    let trace = generate(&MeshUserParams::default(), 42);
    let mut users = trace.inter_connection_gaps;
    let runs = StdConfigs::table2(1);
    let mut ch1 = runs[0].1.disruption_cdf();
    let mut multi = runs[2].1.disruption_cdf();
    let probe_s = [2.0, 5.0, 10.0, 30.0, 60.0, 150.0, 300.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, cdf) in [
        ("user inter-connection gaps", &mut users),
        ("Spider multi-AP (ch1)", &mut ch1),
        ("Spider multi-AP (multi-channel)", &mut multi),
    ] {
        let row = CdfRow::probe(cdf, &probe_s);
        let mut cells = vec![label.to_string(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.1}s", row.median));
        let mut csv = vec![label.to_string()];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 17: disruption-length CDFs — user tolerance vs Spider",
        &[
            "series", "n", "2s", "5s", "10s", "30s", "60s", "150s", "300s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig17.csv",
        &[
            "series", "le_2s", "le_5s", "le_10s", "le_30s", "le_60s", "le_150s", "le_300s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
