//! Figure 11: CDF of Internet connectivity duration for the four Spider
//! configurations.
//!
//! The paper: the longest connections come from staying on one channel
//! with multiple APs; the multi-channel multi-AP configuration has the
//! shortest connections (joins on other channels interrupt flows).
//!
//! The four runs come from [`StdConfigs::table2`], which fans them out
//! as one parallel sweep.

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};

fn main() {
    let probe_s = [2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, result) in StdConfigs::table2(1).into_iter().take(4) {
        let mut cdf = result.connection_cdf();
        let row = CdfRow::probe(&mut cdf, &probe_s);
        let mut cells = vec![label.clone(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.1}s", row.median));
        let mut csv = vec![label];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 11: CDF of connection duration (fraction of connections <= t)",
        &[
            "config", "n", "2s", "5s", "10s", "20s", "50s", "100s", "250s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig11.csv",
        &[
            "config", "le_2s", "le_5s", "le_10s", "le_20s", "le_50s", "le_100s", "le_250s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
