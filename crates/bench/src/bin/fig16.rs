//! Figure 16: comparison of connection lengths — what mesh users'
//! TCP flows need vs what Spider provides (single-channel multi-AP and
//! multi-channel multi-AP).
//!
//! The paper: "Spider can support all the TCP flows that users need" —
//! Spider's connection durations stochastically dominate the users'
//! flow-length demand curve.

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};
use spider_workloads::meshusers::{generate, MeshUserParams};

fn main() {
    let trace = generate(&MeshUserParams::default(), 42);
    let mut users = trace.flow_durations;
    let runs = StdConfigs::table2(1);
    let mut ch1 = runs[0].1.connection_cdf();
    let mut multi = runs[2].1.connection_cdf();
    let probe_s = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (label, cdf) in [
        ("users' flow durations", &mut users),
        ("Spider multi-AP (ch1)", &mut ch1),
        ("Spider multi-AP (multi-channel)", &mut multi),
    ] {
        let row = CdfRow::probe(cdf, &probe_s);
        let mut cells = vec![label.to_string(), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.1}s", row.median));
        let mut csv = vec![label.to_string()];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 16: connection-length CDFs — user demand vs Spider supply",
        &[
            "series", "n", "1s", "2s", "5s", "10s", "20s", "50s", "100s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig16.csv",
        &[
            "series", "le_1s", "le_2s", "le_5s", "le_10s", "le_20s", "le_50s", "le_100s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
