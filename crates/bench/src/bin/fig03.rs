//! Figure 3: probability of join success as a function of the maximum AP
//! response time βmax, for f_i ∈ {0.10, 0.25, 0.40, 0.50} (t = 4 s).
//!
//! "When a fixed fraction of time is spent on the channel, shorter
//! maximum join times lead to higher chances of join success" — the
//! motivation for DHCP caching and reduced timeouts.

use spider_bench::{print_table, write_csv};
use spider_model::JoinModel;
use spider_simcore::sweep;

fn main() {
    let fractions = [0.10, 0.25, 0.40, 0.50];
    let jobs: Vec<u64> = (1..=20).collect();
    let points = sweep(&jobs, |&i| {
        let beta_max = i as f64 / 2.0; // 0.5..10s
        let model = JoinModel::paper_defaults(beta_max);
        let ps: Vec<f64> = fractions.iter().map(|&f| model.p_join(f, 4.0)).collect();
        ps
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&i, ps) in jobs.iter().zip(&points) {
        let beta_max = i as f64 / 2.0;
        rows.push(vec![beta_max, ps[0], ps[1], ps[2], ps[3]]);
        if i % 2 == 0 {
            table.push(vec![
                format!("{beta_max:.1}"),
                format!("{:.3}", ps[0]),
                format!("{:.3}", ps[1]),
                format!("{:.3}", ps[2]),
                format!("{:.3}", ps[3]),
            ]);
        }
    }
    print_table(
        "Fig 3: p(join) vs beta_max",
        &["beta_max(s)", "fi=0.10", "fi=0.25", "fi=0.40", "fi=0.50"],
        &table,
    );
    let path = write_csv(
        "fig03.csv",
        &["beta_max", "fi_010", "fi_025", "fi_040", "fi_050"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
