//! Table 4: throughput and connectivity under 1-, 2- and 3-channel
//! static schedules.
//!
//! The paper: a single channel maximises throughput (121.5 KB/s); the
//! equal 3-channel schedule maximises connectivity (44.7 %).

use spider_bench::{print_table, town_params, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, OnlineStats, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let three = ChannelSchedule::equal(&Channel::ORTHOGONAL, SimDuration::from_millis(600));
    let two = ChannelSchedule::equal(&[Channel::CH1, Channel::CH6], SimDuration::from_millis(400));
    let one = ChannelSchedule::single(Channel::CH1);
    let configs = [
        ("3-channel (equal schedule)", three),
        ("2-channel (equal schedule)", two),
        ("Single-channel", one),
    ];
    let seeds: Vec<u64> = (1..=3).collect();

    let mut jobs = Vec::new();
    for (_, schedule) in &configs {
        for &seed in &seeds {
            jobs.push((schedule.clone(), seed));
        }
    }
    let results = sweep(&jobs, |(schedule, seed)| {
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: schedule.period(),
            },
            1,
        )
        .with_schedule(schedule.clone());
        let world = town_scenario(&town_params(*seed));
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        (result.throughput_kbs(), result.connectivity_pct())
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (c, (label, _)) in configs.iter().enumerate() {
        let mut thr = OnlineStats::new();
        let mut conn = OnlineStats::new();
        for &(kbs, pct) in &results[c * seeds.len()..(c + 1) * seeds.len()] {
            thr.push(kbs);
            conn.push(pct);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", thr.mean()),
            format!("{:.1}", conn.mean()),
        ]);
        table.push(vec![
            label.to_string(),
            format!("{:.1} KB/s", thr.mean()),
            format!("{:.1}%", conn.mean()),
        ]);
    }
    print_table(
        "Table 4: throughput/connectivity by static schedule width",
        &["Parameters", "Throughput", "Connectivity"],
        &table,
    );
    let path = write_csv(
        "table4.csv",
        &["config", "throughput_kbs", "connectivity_pct"],
        rows,
    );
    println!("\nwrote {}", path.display());
    println!("\nPaper: 3-ch 28.8 KB/s 44.7% | 2-ch 25.1 35.8% | 1-ch 121.5 35.5%");
}
