//! Figure 2: probability of join success vs. fraction of time on the
//! channel — closed-form model (Eq. 7) against Monte-Carlo simulation,
//! for βmax = 5 s and 10 s.
//!
//! Paper parameters: D = 500 ms, t = 4 s, βmin = 500 ms, w = 7 ms,
//! c = 100 ms, h = 10 %; 100 runs × 100 trials per point.

use spider_bench::{print_table, write_csv};
use spider_model::{simulate_join_probability, JoinModel};
use spider_simcore::{forked_sweep, SimRng};

const ROOT_SEED: u64 = 2;

fn main() {
    // One Monte-Carlo point per job, each with its own derived RNG
    // stream so the draw sequence is a function of the point alone —
    // not of how many points ran before it on the same thread. The
    // whole figure fans from one shared root through `forked_sweep`
    // (the same prefix-sharing API the world-level fans use): cloning
    // the root and deriving a point's stream from the clone draws
    // bit-identically to seeding cold inside each job.
    let mut jobs = Vec::new();
    for beta_max in [5.0, 10.0] {
        for i in 1..=20u64 {
            jobs.push((beta_max, i));
        }
    }
    let fan: Vec<(usize, (f64, u64))> = jobs.iter().map(|&j| (0, j)).collect();
    let points = forked_sweep(
        &[ROOT_SEED],
        &fan,
        |&seed| SimRng::new(seed),
        |root, &(beta_max, i)| {
            let model = JoinModel::paper_defaults(beta_max);
            let fi = i as f64 / 20.0;
            let analytic = model.p_join(fi, 4.0);
            let mut rng = root.stream_indexed("fig02-point", (beta_max as u64) * 100 + i);
            let mc = simulate_join_probability(&model, fi, 4.0, 100, 100, &mut rng);
            (analytic, mc)
        },
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&(beta_max, i), (analytic, mc)) in jobs.iter().zip(&points) {
        let fi = i as f64 / 20.0;
        rows.push(vec![beta_max, fi, *analytic, mc.mean, mc.std_dev]);
        if i % 4 == 0 {
            table.push(vec![
                format!("{beta_max}"),
                format!("{fi:.2}"),
                format!("{analytic:.3}"),
                format!("{:.3} ± {:.3}", mc.mean, mc.std_dev),
            ]);
        }
    }
    print_table(
        "Fig 2: p(join) vs fraction of time on channel (model vs simulation)",
        &["beta_max(s)", "f_i", "model", "simulation"],
        &table,
    );
    let path = write_csv(
        "fig02.csv",
        &["beta_max", "fi", "model", "sim_mean", "sim_sd"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
