//! Figure 7: average TCP throughput as a function of the percentage of
//! time spent on the primary channel (indoor static client, one AP,
//! D = 400 ms).
//!
//! "Since the cumulative time spent on all the channels is 400 ms (which
//! is less than two RTTs) the throughput is proportional to the
//! percentage of time spent on the primary channel" — i.e. monotone.

use spider_bench::{print_table, write_csv};
use spider_core::{ChannelSchedule, OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, SimDuration};
use spider_wire::Channel;
use spider_workloads::scenarios::indoor_scenario;
use spider_workloads::World;

fn main() {
    let period = SimDuration::from_millis(400);
    let backhaul = 500_000.0; // 4 Mb/s: the air, not the wire, should gate
    let jobs: Vec<u32> = vec![10, 25, 40, 50, 60, 75, 90, 100];
    let kbps = sweep(&jobs, |&pct| {
        let x = pct as f64 / 100.0;
        let schedule = if pct == 100 {
            ChannelSchedule::single(Channel::CH1)
        } else {
            let rest = (1.0 - x) / 2.0;
            ChannelSchedule::custom(
                period,
                vec![
                    (Channel::CH1, x),
                    (Channel::CH6, rest),
                    (Channel::CH11, rest),
                ],
            )
        };
        let cfg = SpiderConfig::for_mode(OperationMode::MultiChannelMultiAp { period }, 1)
            .with_schedule(schedule);
        let world = indoor_scenario(
            &[Channel::CH1],
            10.0,
            backhaul,
            SimDuration::from_secs(120),
            7,
        );
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        result.avg_throughput_bps * 8.0 / 1_000.0
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (&pct, &kbps) in jobs.iter().zip(&kbps) {
        rows.push(vec![pct as f64, kbps]);
        table.push(vec![format!("{pct}%"), format!("{kbps:.0}")]);
    }
    print_table(
        "Fig 7: avg TCP throughput vs % of time on the primary channel",
        &["time on primary", "throughput (kb/s)"],
        &table,
    );
    let path = write_csv("fig07.csv", &["pct_primary", "throughput_kbps"], rows);
    println!("\nwrote {}", path.display());
}
