//! Figure 4: maximum aggregated bandwidth per channel for different node
//! speeds under the two-channel throughput-maximisation framework
//! (Eqs. 8–10), for offered-bandwidth splits (25/75), (50/50), (75/25)
//! of Bw = 11 Mb/s, βmax = 10 s.
//!
//! The headline: every scenario has a *dividing speed* — above it, the
//! optimum abandons the join-needing channel entirely.

use spider_bench::{print_table, write_csv};
use spider_model::{ChannelScenario, JoinModel, ThroughputOptimizer};
use spider_simcore::sweep;

fn scenarios(joined1: f64, avail2: f64) -> [ChannelScenario; 2] {
    [
        ChannelScenario {
            joined_frac: joined1,
            available_frac: 0.0,
        },
        ChannelScenario {
            joined_frac: 0.0,
            available_frac: avail2,
        },
    ]
}

fn main() {
    let optimizer = ThroughputOptimizer::paper(JoinModel::paper_defaults(10.0));
    let speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 20.0];
    let splits = [(0.25, 0.75), (0.5, 0.5), (0.75, 0.25)];

    let mut jobs = Vec::new();
    for &(joined1, avail2) in &splits {
        for &v in &speeds {
            jobs.push((joined1, avail2, v));
        }
    }
    let optima = sweep(&jobs, |&(joined1, avail2, v)| {
        optimizer.optimize(&scenarios(joined1, avail2), v)
    });

    let mut rows = Vec::new();
    for (s, &(joined1, avail2)) in splits.iter().enumerate() {
        let mut table = Vec::new();
        for (i, &v) in speeds.iter().enumerate() {
            let opt = &optima[s * speeds.len() + i];
            rows.push(vec![
                joined1,
                avail2,
                v,
                opt.per_channel_bps[0] / 1_000.0,
                opt.per_channel_bps[1] / 1_000.0,
            ]);
            table.push(vec![
                format!("{v}"),
                format!("{:.0}", opt.per_channel_bps[0] / 1_000.0),
                format!("{:.0}", opt.per_channel_bps[1] / 1_000.0),
                format!("{:.0}", opt.total_bps / 1_000.0),
            ]);
        }
        print_table(
            &format!(
                "Fig 4: optimal per-channel bandwidth, offered = ({:.0}%, {:.0}%) of Bw",
                joined1 * 100.0,
                avail2 * 100.0
            ),
            &["speed(m/s)", "ch1(kbps)", "ch2(kbps)", "total(kbps)"],
            &table,
        );
        let div = optimizer.dividing_speed(&scenarios(joined1, avail2), &speeds);
        println!("dividing speed: {:?} m/s", div);
    }
    let path = write_csv(
        "fig04.csv",
        &["joined1", "avail2", "speed_mps", "ch1_kbps", "ch2_kbps"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
