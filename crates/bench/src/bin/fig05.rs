//! Figure 5: rate of successful link-layer associations on channel 6 as
//! a function of the time the driver spends there (f₆ ∈ {25, 50, 75,
//! 100} % of a 400 ms period; the remainder split between channels 1
//! and 11). Link-layer timeout: 100 ms.
//!
//! The paper's finding: associations are fairly robust to switching —
//! f₆ = 100 % completes everything within ~400 ms, and performance does
//! not collapse as f₆ shrinks to 25 %.

use spider_bench::{print_table, write_csv, CdfRow, StdConfigs};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::{sweep, Cdf};
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let fractions = [0.25, 0.50, 0.75, 1.00];
    let seeds: Vec<u64> = (1..=5).collect();
    let probe_ms = [100.0, 200.0, 300.0, 400.0, 600.0, 800.0, 1_000.0];

    // One drive per (fraction, seed) — the paper's "hundreds of trials
    // over six hours on five vehicles", swept in parallel.
    let mut jobs = Vec::new();
    for &f6 in &fractions {
        for &seed in &seeds {
            jobs.push((f6, seed));
        }
    }
    let cdfs = sweep(&jobs, |&(f6, seed)| {
        let schedule = StdConfigs::f6_schedule(f6);
        let cfg = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: schedule.period(),
            },
            1,
        )
        .with_schedule(schedule)
        .with_candidates(vec![Channel::CH6]);
        let world = town_scenario(&spider_bench::town_params(seed));
        let result = World::new(world, SpiderDriver::new(cfg)).run();
        result.join_log.assoc_cdf()
    });

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (i, &f6) in fractions.iter().enumerate() {
        let mut cdf = Cdf::new();
        for per_seed in &cdfs[i * seeds.len()..(i + 1) * seeds.len()] {
            cdf.merge(per_seed);
        }
        let probes_s: Vec<f64> = probe_ms.iter().map(|ms| ms / 1_000.0).collect();
        let row = CdfRow::probe(&mut cdf, &probes_s);
        let mut cells = vec![format!("{:.0}%", f6 * 100.0), format!("{}", row.n)];
        cells.extend(row.table_fractions());
        cells.push(format!("{:.0}ms", row.median * 1_000.0));
        let mut csv = vec![format!("{f6}")];
        csv.extend(row.csv_fractions());
        rows.push(csv);
        table.push(cells);
    }
    print_table(
        "Fig 5: fraction of successful associations within t, by time on ch6",
        &[
            "f6", "n", "100ms", "200ms", "300ms", "400ms", "600ms", "800ms", "1s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig05.csv",
        &[
            "f6", "le_100ms", "le_200ms", "le_300ms", "le_400ms", "le_600ms", "le_800ms", "le_1s",
        ],
        rows,
    );
    println!("\nwrote {}", path.display());
}
