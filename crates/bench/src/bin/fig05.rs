//! Figure 5: rate of successful link-layer associations on channel 6 as
//! a function of the time the driver spends there (f₆ ∈ {25, 50, 75,
//! 100} % of a 400 ms period; the remainder split between channels 1
//! and 11). Link-layer timeout: 100 ms.
//!
//! The paper's finding: associations are fairly robust to switching —
//! f₆ = 100 % completes everything within ~400 ms, and performance does
//! not collapse as f₆ shrinks to 25 %.

use spider_bench::{print_table, write_csv, StdConfigs};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::Cdf;
use spider_wire::Channel;
use spider_workloads::scenarios::town_scenario;
use spider_workloads::World;

fn main() {
    let fractions = [0.25, 0.50, 0.75, 1.00];
    let probe_ms = [100.0, 200.0, 300.0, 400.0, 600.0, 800.0, 1_000.0];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &f6 in &fractions {
        // Aggregate several drives (the paper's "hundreds of trials over
        // six hours on five vehicles").
        let mut cdf = Cdf::new();
        for seed in 1..=5 {
            let schedule = StdConfigs::f6_schedule(f6);
            let cfg = SpiderConfig::for_mode(
                OperationMode::MultiChannelMultiAp {
                    period: schedule.period(),
                },
                1,
            )
            .with_schedule(schedule)
            .with_candidates(vec![Channel::CH6]);
            let world = town_scenario(&spider_bench::town_params(seed));
            let result = World::new(world, SpiderDriver::new(cfg)).run();
            cdf.merge(&result.join_log.assoc_cdf());
        }
        let mut cells = vec![format!("{:.0}%", f6 * 100.0), format!("{}", cdf.len())];
        let mut row = vec![f6];
        for &ms in &probe_ms {
            let frac = cdf.fraction_le(ms / 1_000.0);
            row.push(frac);
            cells.push(format!("{frac:.2}"));
        }
        let median = cdf.median() * 1_000.0;
        cells.push(format!("{median:.0}ms"));
        rows.push(row);
        table.push(cells);
    }
    print_table(
        "Fig 5: fraction of successful associations within t, by time on ch6",
        &[
            "f6", "n", "100ms", "200ms", "300ms", "400ms", "600ms", "800ms", "1s", "median",
        ],
        &table,
    );
    let path = write_csv(
        "fig05.csv",
        &["f6", "le_100ms", "le_200ms", "le_300ms", "le_400ms", "le_600ms", "le_800ms", "le_1s"],
        rows,
    );
    println!("\nwrote {}", path.display());
}
