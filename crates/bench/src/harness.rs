//! Hermetic micro-benchmark harness.
//!
//! The workspace builds without registry access, so `criterion` is not
//! available. This module is the small self-timing harness the bench
//! targets use instead: auto-calibrated iteration counts, a handful of
//! samples, and min/median/mean nanoseconds per iteration on stdout.
//! It is deliberately tiny — no statistics beyond what a regression
//! eyeball needs — but it is *real*: every bench target actually
//! executes the code it names.
//!
//! Set `SPIDER_BENCH_FAST=1` to cut sample counts for smoke runs (CI).

use spider_simcore::Cdf;
use std::hint::black_box;
use std::time::Instant;

/// Target wall time for one calibrated sample.
const SAMPLE_TARGET_NS: f64 = 2_000_000.0; // 2 ms

/// Upper bound on iterations per sample, so a sub-nanosecond closure
/// cannot spin the calibrator forever.
const MAX_ITERS: u64 = 1 << 22;

/// One micro-benchmark result: nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct MicroStats {
    /// Bench label as printed.
    pub label: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Fastest sample, ns/iter — the least noisy figure.
    pub min_ns: f64,
    /// Median sample, ns/iter.
    pub median_ns: f64,
    /// Mean over all samples, ns/iter.
    pub mean_ns: f64,
}

impl MicroStats {
    /// Print one aligned result row.
    pub fn print_row(&self) {
        println!(
            "{:<40} {:>12.1} ns/iter (median; min {:.1}, mean {:.1}; {} iters x {} samples)",
            self.label,
            self.median_ns,
            self.min_ns,
            self.mean_ns,
            self.iters_per_sample,
            self.samples,
        );
    }
}

/// Whether the harness should run in smoke mode (fewer samples).
pub fn is_fast_mode() -> bool {
    std::env::var_os("SPIDER_BENCH_FAST").is_some()
}

/// One CDF probed at fixed points — the row every CDF figure prints.
///
/// Before this existed, each figure binary carried its own copy of the
/// probe loop, and the copies had drifted: some wrote raw `f64`s to the
/// CSV and `{:.2}` to the table, others `{:.3}` strings to both. This
/// is the single convention now: `fraction_le` at each probe, nearest-
/// rank median, `{:.3}` in CSVs, `{:.2}` in console tables.
#[derive(Debug, Clone)]
pub struct CdfRow {
    /// Sample count behind the CDF.
    pub n: usize,
    /// `fraction_le(probe)` for each probe point, in probe order.
    pub fractions: Vec<f64>,
    /// Nearest-rank median of the samples (0 when empty).
    pub median: f64,
}

impl CdfRow {
    /// Probe `cdf` at each point of `probes`.
    pub fn probe(cdf: &mut Cdf, probes: &[f64]) -> CdfRow {
        CdfRow {
            n: cdf.len(),
            fractions: probes.iter().map(|&p| cdf.fraction_le(p)).collect(),
            median: cdf.median(),
        }
    }

    /// The CSV cells for the probed fractions (`{:.3}` each).
    pub fn csv_fractions(&self) -> Vec<String> {
        self.fractions.iter().map(|f| format!("{f:.3}")).collect()
    }

    /// The console-table cells for the probed fractions (`{:.2}` each).
    pub fn table_fractions(&self) -> Vec<String> {
        self.fractions.iter().map(|f| format!("{f:.2}")).collect()
    }
}

/// Quantiles of a CDF, scaled — the fig-13 style row. Shares the
/// `Cdf::quantile` convention with everything else in the harness.
pub fn cdf_quantiles(cdf: &mut Cdf, quantiles: &[f64], scale: f64) -> Vec<f64> {
    quantiles.iter().map(|&q| cdf.quantile(q) * scale).collect()
}

/// Time `f`, auto-calibrating the iteration count so each sample runs
/// for roughly [`SAMPLE_TARGET_NS`], then taking several samples.
pub fn micro<T>(label: &str, mut f: impl FnMut() -> T) -> MicroStats {
    // Calibrate: double the iteration count until a sample is long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t.elapsed().as_nanos() as f64;
        if dt >= SAMPLE_TARGET_NS || iters >= MAX_ITERS {
            break;
        }
        // Jump close to the target in one step when we already have a
        // usable estimate; otherwise keep doubling.
        let factor = if dt > 1_000.0 {
            ((SAMPLE_TARGET_NS / dt) * 1.2).ceil() as u64
        } else {
            2
        };
        iters = (iters * factor.max(2)).min(MAX_ITERS);
    }

    let samples = if is_fast_mode() { 3 } else { 11 };
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min_ns = per_iter[0];
    let median_ns = per_iter[per_iter.len() / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    MicroStats {
        label: label.to_string(),
        iters_per_sample: iters,
        samples,
        min_ns,
        median_ns,
        mean_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_row_probes_with_one_convention() {
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        let row = CdfRow::probe(&mut cdf, &[0.5, 2.0, 10.0]);
        assert_eq!(row.n, 4);
        assert_eq!(row.fractions, vec![0.0, 0.5, 1.0]);
        assert_eq!(row.csv_fractions(), vec!["0.000", "0.500", "1.000"]);
        assert_eq!(row.table_fractions(), vec!["0.00", "0.50", "1.00"]);
        assert_eq!(row.median, cdf.median());
    }

    #[test]
    fn cdf_quantiles_scale() {
        let mut cdf = Cdf::from_samples(vec![1_000.0, 2_000.0, 3_000.0]);
        let q = cdf_quantiles(&mut cdf, &[0.5], 1.0 / 1_000.0);
        assert_eq!(q.len(), 1);
        assert!((q[0] - cdf.quantile(0.5) / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn micro_measures_a_trivial_closure() {
        // Not a timing assertion — just that calibration terminates and
        // the stats are internally consistent.
        std::env::set_var("SPIDER_BENCH_FAST", "1");
        let stats = micro("noop_add", || std::hint::black_box(1u64) + 1);
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.min_ns > 0.0);
        assert_eq!(stats.label, "noop_add");
    }
}
