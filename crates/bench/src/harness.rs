//! Hermetic micro-benchmark harness.
//!
//! The workspace builds without registry access, so `criterion` is not
//! available. This module is the small self-timing harness the bench
//! targets use instead: auto-calibrated iteration counts, a handful of
//! samples, and min/median/mean nanoseconds per iteration on stdout.
//! It is deliberately tiny — no statistics beyond what a regression
//! eyeball needs — but it is *real*: every bench target actually
//! executes the code it names.
//!
//! Set `SPIDER_BENCH_FAST=1` to cut sample counts for smoke runs (CI).

use std::hint::black_box;
use std::time::Instant;

/// Target wall time for one calibrated sample.
const SAMPLE_TARGET_NS: f64 = 2_000_000.0; // 2 ms

/// Upper bound on iterations per sample, so a sub-nanosecond closure
/// cannot spin the calibrator forever.
const MAX_ITERS: u64 = 1 << 22;

/// One micro-benchmark result: nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct MicroStats {
    /// Bench label as printed.
    pub label: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Fastest sample, ns/iter — the least noisy figure.
    pub min_ns: f64,
    /// Median sample, ns/iter.
    pub median_ns: f64,
    /// Mean over all samples, ns/iter.
    pub mean_ns: f64,
}

impl MicroStats {
    /// Print one aligned result row.
    pub fn print_row(&self) {
        println!(
            "{:<40} {:>12.1} ns/iter (median; min {:.1}, mean {:.1}; {} iters x {} samples)",
            self.label, self.median_ns, self.min_ns, self.mean_ns, self.iters_per_sample, self.samples,
        );
    }
}

/// Whether the harness should run in smoke mode (fewer samples).
pub fn is_fast_mode() -> bool {
    std::env::var_os("SPIDER_BENCH_FAST").is_some()
}

/// Time `f`, auto-calibrating the iteration count so each sample runs
/// for roughly [`SAMPLE_TARGET_NS`], then taking several samples.
pub fn micro<T>(label: &str, mut f: impl FnMut() -> T) -> MicroStats {
    // Calibrate: double the iteration count until a sample is long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t.elapsed().as_nanos() as f64;
        if dt >= SAMPLE_TARGET_NS || iters >= MAX_ITERS {
            break;
        }
        // Jump close to the target in one step when we already have a
        // usable estimate; otherwise keep doubling.
        let factor = if dt > 1_000.0 {
            ((SAMPLE_TARGET_NS / dt) * 1.2).ceil() as u64
        } else {
            2
        };
        iters = (iters * factor.max(2)).min(MAX_ITERS);
    }

    let samples = if is_fast_mode() { 3 } else { 11 };
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min_ns = per_iter[0];
    let median_ns = per_iter[per_iter.len() / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    MicroStats {
        label: label.to_string(),
        iters_per_sample: iters,
        samples,
        min_ns,
        median_ns,
        mean_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_measures_a_trivial_closure() {
        // Not a timing assertion — just that calibration terminates and
        // the stats are internally consistent.
        std::env::set_var("SPIDER_BENCH_FAST", "1");
        let stats = micro("noop_add", || std::hint::black_box(1u64) + 1);
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.min_ns > 0.0);
        assert_eq!(stats.label, "noop_add");
    }
}
