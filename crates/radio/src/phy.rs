//! PHY-level parameters and airtime computation.

use spider_simcore::SimDuration;

/// Physical-layer parameters of the simulated card and medium.
///
/// Defaults correspond to the paper's testbed: 802.11b long-preamble
/// timing at 11 Mbps, a ~5 ms hardware-reset channel switch (Table 1
/// measured 4.9–5.9 ms), and a practical range of 100 m (§2.1.3).
#[derive(Debug, Clone)]
pub struct PhyParams {
    /// Data rate in bits/second used for frame bodies.
    pub rate_bps: f64,
    /// Rate used for management frames (sent at a base rate in real
    /// 802.11, typically 1–2 Mb/s, which is why beacons are audible
    /// further out and joins are slow).
    pub mgmt_rate_bps: f64,
    /// Fixed per-frame medium overhead: preamble + PLCP header + DIFS +
    /// SIFS + link-layer ACK. Folding the ACK in here models the
    /// stop-and-wait MAC without simulating ACK frames individually.
    pub per_frame_overhead: SimDuration,
    /// Hardware channel-switch latency (the "hardware reset" of §3.2.1,
    /// dominating Table 1's measurements).
    pub switch_delay: SimDuration,
    /// Extra per-associated-interface switch cost: one PSM null frame
    /// must be sent to each AP on the old channel and one PS-poll on the
    /// new (Table 1 shows latency growing with interface count).
    pub per_iface_switch_cost: SimDuration,
    /// Practical communication range in metres.
    pub range_m: f64,
}

impl PhyParams {
    /// 802.11b at 11 Mb/s — the paper's configuration.
    pub fn b11() -> PhyParams {
        PhyParams {
            rate_bps: 11e6,
            mgmt_rate_bps: 1e6,
            // ~192us PLCP long preamble + DIFS 50us + SIFS 10us + ACK
            // (112us at 1Mbps control rate, abbreviated) ≈ 360us.
            per_frame_overhead: SimDuration::from_micros(360),
            switch_delay: SimDuration::from_micros(4_900),
            per_iface_switch_cost: SimDuration::from_micros(250),
            range_m: 100.0,
        }
    }

    /// 802.11g at 54 Mb/s, for sensitivity studies.
    pub fn g54() -> PhyParams {
        PhyParams {
            rate_bps: 54e6,
            mgmt_rate_bps: 6e6,
            per_frame_overhead: SimDuration::from_micros(100),
            switch_delay: SimDuration::from_micros(4_900),
            per_iface_switch_cost: SimDuration::from_micros(250),
            range_m: 100.0,
        }
    }

    /// Airtime of a data frame of `bytes` bytes, including fixed MAC/PHY
    /// overhead.
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        self.per_frame_overhead + SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }

    /// Airtime of a management frame (sent at the base rate).
    pub fn mgmt_airtime(&self, bytes: usize) -> SimDuration {
        self.per_frame_overhead
            + SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.mgmt_rate_bps)
    }

    /// Total latency of a channel switch when `ifaces` interfaces are
    /// associated across the two channels involved (Table 1's
    /// experiment).
    pub fn switch_latency(&self, ifaces: usize) -> SimDuration {
        self.switch_delay + self.per_iface_switch_cost * ifaces as u64
    }

    /// The theoretical maximum goodput for back-to-back frames of
    /// `bytes` bytes, in bytes/second — useful for calibration tests.
    pub fn max_goodput(&self, bytes: usize) -> f64 {
        bytes as f64 / self.airtime(bytes).as_secs_f64()
    }
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams::b11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_of_a_full_frame() {
        let phy = PhyParams::b11();
        // 1500-byte frame: 360us + 1500*8/11e6 ≈ 360 + 1091us = 1451us.
        let t = phy.airtime(1500);
        assert_eq!(t.as_micros(), 360 + 1091);
    }

    #[test]
    fn mgmt_frames_are_slow() {
        let phy = PhyParams::b11();
        // 100-byte management frame at 1Mbps: 360 + 800 = 1160us.
        assert_eq!(phy.mgmt_airtime(100).as_micros(), 1160);
        assert!(phy.mgmt_airtime(100) > phy.airtime(100));
    }

    #[test]
    fn switch_latency_grows_with_interfaces() {
        let phy = PhyParams::b11();
        let l0 = phy.switch_latency(0);
        let l4 = phy.switch_latency(4);
        assert_eq!(l0, SimDuration::from_micros(4_900));
        assert_eq!(l4, SimDuration::from_micros(4_900 + 4 * 250));
        // Table 1: ~4.9ms at 0 ifaces, ~5.9ms at 4.
        assert!(l4.as_millis_f64() < 6.5);
    }

    #[test]
    fn max_goodput_is_under_link_rate() {
        let phy = PhyParams::b11();
        let goodput = phy.max_goodput(1500);
        // 11Mbps = 1.375 MB/s; MAC overhead must cost ~20-30%.
        assert!(goodput < 1_375_000.0);
        assert!(goodput > 900_000.0, "goodput {goodput}");
    }

    #[test]
    fn g54_is_faster() {
        assert!(PhyParams::g54().airtime(1500) < PhyParams::b11().airtime(1500));
    }
}
