//! Radio propagation: reach and received signal strength.
//!
//! A disk model decides *whether* a frame is receivable (the paper's
//! analysis assumes a practical range of 100 m); a log-distance path-loss
//! model provides the RSSI Spider's AP-selection uses for tie-breaking
//! and its "sufficient signal strength" bootstrap filter (§3.1, Design
//! Choice 2).

/// Propagation model parameters.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Hard communication range in metres (disk model cut-off).
    pub range_m: f64,
    /// Transmit power + antenna gains at 1 m, in dBm (reference RSSI).
    pub rssi_at_1m_dbm: f64,
    /// Path-loss exponent (2 = free space; 2.7–3.5 typical outdoor
    /// suburban).
    pub path_loss_exponent: f64,
}

impl Propagation {
    /// Outdoor suburban defaults matching the paper's environment.
    /// Calibrated so the edge of the 100 m practical range sits at
    /// ≈ −84 dBm — comfortably above a client's selection floor, making
    /// the whole disk usable as the paper's analysis assumes.
    pub fn outdoor() -> Propagation {
        Propagation {
            range_m: 100.0,
            rssi_at_1m_dbm: -30.0,
            path_loss_exponent: 2.7,
        }
    }

    /// Whether a frame sent over `distance_m` is receivable at all.
    pub fn in_range(&self, distance_m: f64) -> bool {
        distance_m <= self.range_m
    }

    /// Received signal strength in dBm at `distance_m` (log-distance
    /// model, deterministic component).
    pub fn rssi_dbm(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.rssi_at_1m_dbm - 10.0 * self.path_loss_exponent * d.log10()
    }

    /// RSSI at the edge of the disk — frames near this level are barely
    /// receivable.
    pub fn edge_rssi_dbm(&self) -> f64 {
        self.rssi_dbm(self.range_m)
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation::outdoor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_cutoff() {
        let p = Propagation::outdoor();
        assert!(p.in_range(0.0));
        assert!(p.in_range(100.0));
        assert!(!p.in_range(100.1));
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let p = Propagation::outdoor();
        assert!(p.rssi_dbm(10.0) > p.rssi_dbm(50.0));
        assert!(p.rssi_dbm(50.0) > p.rssi_dbm(100.0));
    }

    #[test]
    fn rssi_values_are_plausible() {
        let p = Propagation::outdoor();
        // At 10m: -30 - 27 = -57 dBm. At 100m: -30 - 54 = -84 dBm.
        assert!((p.rssi_dbm(10.0) - -57.0).abs() < 1e-9);
        assert!((p.edge_rssi_dbm() - -84.0).abs() < 1e-9);
        // The whole practical range is above a -90 dBm selection floor.
        assert!(p.edge_rssi_dbm() > -90.0);
    }

    #[test]
    fn sub_metre_distances_clamp() {
        let p = Propagation::outdoor();
        assert_eq!(p.rssi_dbm(0.0), p.rssi_dbm(1.0));
        assert_eq!(p.rssi_dbm(0.5), p.rssi_dbm(1.0));
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// RSSI is monotone non-increasing in distance.
        #[test]
        fn rssi_monotone(a in 0.0f64..500.0, b in 0.0f64..500.0) {
            let p = Propagation::outdoor();
            let (near, far) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.rssi_dbm(near) >= p.rssi_dbm(far));
        }
        }
    }
}
