//! Radio propagation: reach and received signal strength.
//!
//! A disk model decides *whether* a frame is receivable (the paper's
//! analysis assumes a practical range of 100 m); a log-distance path-loss
//! model provides the RSSI Spider's AP-selection uses for tie-breaking
//! and its "sufficient signal strength" bootstrap filter (§3.1, Design
//! Choice 2).

/// `log10` for distances, without the libm call.
///
/// Splits the float into exponent and mantissa, folds the mantissa into
/// `[1/√2, √2)`, and evaluates `ln` through the odd `atanh` series on
/// `s = (m−1)/(m+1)` (|s| ≤ 0.1716, so truncating at `s¹³` leaves a
/// tail below 1e-12). Absolute error is under 1e-12 across the positive
/// normal range — the RSSI model scales it by `10·ple ≈ 27`, which
/// stays far inside every tolerance the tests and drivers use.
///
/// Callers must pass a positive, finite, normal value; [`Propagation::rssi_dbm`]
/// clamps distances to ≥ 1 m before calling.
pub fn fast_log10(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x >= f64::MIN_POSITIVE, "fast_log10({x})");
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // atanh(s) = s + s³/3 + s⁵/5 + …, truncated at s¹³.
    let atanh = s
        * (1.0
            + s2 * (1.0 / 3.0
                + s2 * (1.0 / 5.0
                    + s2 * (1.0 / 7.0
                        + s2 * (1.0 / 9.0 + s2 * (1.0 / 11.0 + s2 * (1.0 / 13.0)))))));
    // ln(m) = 2·atanh(s);  log10(x) = e·log10(2) + ln(m)·log10(e).
    (e as f64) * std::f64::consts::LOG10_2 + 2.0 * atanh * std::f64::consts::LOG10_E
}

/// Propagation model parameters.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Hard communication range in metres (disk model cut-off).
    pub range_m: f64,
    /// Transmit power + antenna gains at 1 m, in dBm (reference RSSI).
    pub rssi_at_1m_dbm: f64,
    /// Path-loss exponent (2 = free space; 2.7–3.5 typical outdoor
    /// suburban).
    pub path_loss_exponent: f64,
}

impl Propagation {
    /// Outdoor suburban defaults matching the paper's environment.
    /// Calibrated so the edge of the 100 m practical range sits at
    /// ≈ −84 dBm — comfortably above a client's selection floor, making
    /// the whole disk usable as the paper's analysis assumes.
    pub fn outdoor() -> Propagation {
        Propagation {
            range_m: 100.0,
            rssi_at_1m_dbm: -30.0,
            path_loss_exponent: 2.7,
        }
    }

    /// Whether a frame sent over `distance_m` is receivable at all.
    pub fn in_range(&self, distance_m: f64) -> bool {
        distance_m <= self.range_m
    }

    /// [`Propagation::in_range`] from a squared distance — the hot
    /// transmit paths carry d² and never take the root for the disk
    /// test. May differ from `in_range(d)` by a 1-ulp boundary flip.
    pub fn in_range_sq(&self, distance_sq_m2: f64) -> bool {
        distance_sq_m2 <= self.range_m * self.range_m
    }

    /// Received signal strength in dBm at `distance_m` (log-distance
    /// model, deterministic component).
    pub fn rssi_dbm(&self, distance_m: f64) -> f64 {
        #[cfg(feature = "validate")]
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "rssi_dbm: bad distance {distance_m}"
        );
        let d = distance_m.max(1.0);
        let rssi = self.rssi_at_1m_dbm - 10.0 * self.path_loss_exponent * fast_log10(d);
        #[cfg(feature = "validate")]
        assert!(
            rssi.is_finite(),
            "rssi_dbm({distance_m}) produced non-finite {rssi} \
             (ref {} dBm, ple {})",
            self.rssi_at_1m_dbm,
            self.path_loss_exponent
        );
        rssi
    }

    /// RSSI at the edge of the disk — frames near this level are barely
    /// receivable.
    pub fn edge_rssi_dbm(&self) -> f64 {
        self.rssi_dbm(self.range_m)
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation::outdoor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_cutoff() {
        let p = Propagation::outdoor();
        assert!(p.in_range(0.0));
        assert!(p.in_range(100.0));
        assert!(!p.in_range(100.1));
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let p = Propagation::outdoor();
        assert!(p.rssi_dbm(10.0) > p.rssi_dbm(50.0));
        assert!(p.rssi_dbm(50.0) > p.rssi_dbm(100.0));
    }

    #[test]
    fn rssi_values_are_plausible() {
        let p = Propagation::outdoor();
        // At 10m: -30 - 27 = -57 dBm. At 100m: -30 - 54 = -84 dBm.
        assert!((p.rssi_dbm(10.0) - -57.0).abs() < 1e-9);
        assert!((p.edge_rssi_dbm() - -84.0).abs() < 1e-9);
        // The whole practical range is above a -90 dBm selection floor.
        assert!(p.edge_rssi_dbm() > -90.0);
    }

    #[test]
    fn fast_log10_matches_libm() {
        // Dense sweep over the distances the RSSI model sees, plus a
        // log-spaced sweep across magnitudes.
        let mut d = 1.0f64;
        while d < 500.0 {
            let err = (fast_log10(d) - d.log10()).abs();
            assert!(err < 1e-12, "d={d}: err={err:e}");
            d += 0.37;
        }
        for exp in -30..30 {
            let x = 1.7f64 * 10f64.powi(exp);
            let err = (fast_log10(x) - x.log10()).abs();
            assert!(err < 1e-12, "x={x}: err={err:e}");
        }
        // Exact powers of two exercise the mantissa-fold boundary.
        for exp in 0..20 {
            let x = (1u64 << exp) as f64;
            assert!((fast_log10(x) - x.log10()).abs() < 1e-12);
        }
    }

    #[test]
    fn in_range_sq_matches_in_range() {
        let p = Propagation::outdoor();
        for d in [0.0, 50.0, 99.9, 100.0, 100.1, 200.0] {
            assert_eq!(p.in_range(d), p.in_range_sq(d * d), "d={d}");
        }
    }

    #[test]
    fn sub_metre_distances_clamp() {
        let p = Propagation::outdoor();
        assert_eq!(p.rssi_dbm(0.0), p.rssi_dbm(1.0));
        assert_eq!(p.rssi_dbm(0.5), p.rssi_dbm(1.0));
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// RSSI is monotone non-increasing in distance.
        #[test]
        fn rssi_monotone(a in 0.0f64..500.0, b in 0.0f64..500.0) {
            let p = Propagation::outdoor();
            let (near, far) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.rssi_dbm(near) >= p.rssi_dbm(far));
        }
        }
    }
}
