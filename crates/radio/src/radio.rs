//! The client radio: tuning state and channel switching.
//!
//! A physical card listens on exactly one channel. Changing channels
//! requires a hardware reset during which nothing can be sent or received
//! (§3.2.1); the latency `w` is the paper's Table 1 measurement and the
//! `w` of the analytical model. [`Radio`] is the state machine every
//! driver (Spider and the baselines) drives.

use crate::phy::PhyParams;
use spider_simcore::SimTime;
use spider_wire::Channel;

/// The radio's tuning state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioState {
    /// Tuned and able to send/receive on the channel.
    Tuned(Channel),
    /// Mid hardware reset; deaf until `until`.
    Switching {
        /// Channel being switched to.
        to: Channel,
        /// When the switch completes.
        until: SimTime,
    },
}

/// A single physical Wi-Fi radio.
#[derive(Debug, Clone)]
pub struct Radio {
    state: RadioState,
    switches: u64,
}

impl Radio {
    /// Create a radio initially tuned to `ch`.
    pub fn new(ch: Channel) -> Radio {
        Radio {
            state: RadioState::Tuned(ch),
            switches: 0,
        }
    }

    /// Current state (after settling any completed switch at `now`).
    pub fn state_at(&mut self, now: SimTime) -> RadioState {
        if let RadioState::Switching { to, until } = self.state {
            if now >= until {
                self.state = RadioState::Tuned(to);
            }
        }
        self.state
    }

    /// The channel the radio can currently hear, or `None` while deaf
    /// mid-switch.
    pub fn listening_on(&mut self, now: SimTime) -> Option<Channel> {
        match self.state_at(now) {
            RadioState::Tuned(ch) => Some(ch),
            RadioState::Switching { .. } => None,
        }
    }

    /// Begin switching to `to` at time `now`. `associated_ifaces` is the
    /// number of virtual interfaces that need PSM signalling around the
    /// switch (raises latency, per Table 1). Returns the completion time.
    ///
    /// Switching to the already-tuned channel is free and returns `now`.
    pub fn start_switch(
        &mut self,
        now: SimTime,
        to: Channel,
        phy: &PhyParams,
        associated_ifaces: usize,
    ) -> SimTime {
        match self.state_at(now) {
            RadioState::Tuned(ch) if ch == to => now,
            RadioState::Switching { to: cur, until } if cur == to => until,
            _ => {
                let until = now + phy.switch_latency(associated_ifaces);
                self.state = RadioState::Switching { to, until };
                self.switches += 1;
                until
            }
        }
    }

    /// Number of hardware switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_tuned() {
        let mut r = Radio::new(Channel::CH6);
        assert_eq!(r.listening_on(SimTime::ZERO), Some(Channel::CH6));
    }

    #[test]
    fn switching_makes_radio_deaf_then_tuned() {
        let phy = PhyParams::b11();
        let mut r = Radio::new(Channel::CH1);
        let done = r.start_switch(SimTime::ZERO, Channel::CH6, &phy, 0);
        assert_eq!(done, SimTime::from_micros(4_900));
        assert_eq!(r.listening_on(SimTime::from_micros(1_000)), None);
        assert_eq!(r.listening_on(done), Some(Channel::CH6));
        assert_eq!(r.switch_count(), 1);
    }

    #[test]
    fn switch_to_same_channel_is_free() {
        let phy = PhyParams::b11();
        let mut r = Radio::new(Channel::CH6);
        let done = r.start_switch(SimTime::from_millis(3), Channel::CH6, &phy, 2);
        assert_eq!(done, SimTime::from_millis(3));
        assert_eq!(r.switch_count(), 0);
    }

    #[test]
    fn redundant_switch_request_returns_same_completion() {
        let phy = PhyParams::b11();
        let mut r = Radio::new(Channel::CH1);
        let d1 = r.start_switch(SimTime::ZERO, Channel::CH11, &phy, 0);
        let d2 = r.start_switch(SimTime::from_micros(100), Channel::CH11, &phy, 0);
        assert_eq!(d1, d2);
        assert_eq!(r.switch_count(), 1);
    }

    #[test]
    fn interfaces_slow_the_switch() {
        let phy = PhyParams::b11();
        let mut a = Radio::new(Channel::CH1);
        let mut b = Radio::new(Channel::CH1);
        let da = a.start_switch(SimTime::ZERO, Channel::CH6, &phy, 0);
        let db = b.start_switch(SimTime::ZERO, Channel::CH6, &phy, 4);
        assert!(db > da);
    }

    #[test]
    fn switch_can_be_redirected_mid_flight() {
        let phy = PhyParams::b11();
        let mut r = Radio::new(Channel::CH1);
        r.start_switch(SimTime::ZERO, Channel::CH6, &phy, 0);
        // Mid-switch, redirect to ch11: a fresh reset starts.
        let done = r.start_switch(SimTime::from_micros(1_000), Channel::CH11, &phy, 0);
        assert_eq!(done, SimTime::from_micros(1_000 + 4_900));
        assert_eq!(r.listening_on(done), Some(Channel::CH11));
        assert_eq!(r.switch_count(), 2);
    }
}
