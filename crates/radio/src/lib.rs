//! 802.11 physical-layer simulation.
//!
//! The paper's measurements were taken with Atheros 802.11abg cards on
//! real RF. Everything its model and experiments depend on reduces to
//! four PHY properties, all reproduced here:
//!
//! 1. **timing** — how long a frame occupies the air
//!    ([`airtime`](phy::PhyParams::airtime)) and how long a hardware
//!    channel switch takes ([`radio::Radio`]; the paper measured 5–6 ms,
//!    Table 1),
//! 2. **reach** — whether a frame between two positions is physically
//!    receivable ([`propagation::Propagation`], disk model + log-distance
//!    RSSI),
//! 3. **loss** — the probability a receivable frame is corrupted
//!    ([`loss::LossModel`]; the analytical model uses a flat h = 10 %),
//! 4. **sharing** — serialisation of the half-duplex medium among all
//!    transmitters on a channel ([`medium::ChannelMedium`]), which is why
//!    aggregate throughput on one channel is capped by the channel rate.

#![forbid(unsafe_code)]

pub mod loss;
pub mod medium;
pub mod phy;
pub mod propagation;
pub mod radio;

pub use loss::LossModel;
pub use medium::ChannelMedium;
pub use phy::PhyParams;
pub use propagation::{fast_log10, Propagation};
pub use radio::{Radio, RadioState};
