//! Shared-medium contention.
//!
//! 802.11 is half-duplex and CSMA/CA serialises transmissions per
//! channel. [`ChannelMedium`] models this at frame granularity: each
//! channel has a "busy until" horizon, and a new transmission starts at
//! `max(now, busy_until)`. This coarse model captures what matters for
//! the paper's results — aggregate throughput from several APs on one
//! channel cannot exceed the channel rate (Fig. 10's ceiling).

use spider_simcore::{SimDuration, SimTime};
use spider_wire::Channel;

/// Per-channel airtime accounting.
///
/// State is a flat array indexed by [`Channel::index`]: `reserve` sits
/// on the per-frame transmit path, so per-channel lookups must not pay
/// for hashing.
#[derive(Debug, Clone)]
pub struct ChannelMedium {
    busy_until: [SimTime; Channel::COUNT],
    /// Cumulative airtime consumed per channel (for utilisation stats).
    airtime_used: [SimDuration; Channel::COUNT],
}

impl Default for ChannelMedium {
    fn default() -> Self {
        ChannelMedium {
            busy_until: [SimTime::ZERO; Channel::COUNT],
            airtime_used: [SimDuration::ZERO; Channel::COUNT],
        }
    }
}

impl ChannelMedium {
    /// Create an idle medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the channel for a frame needing `airtime`, starting no
    /// earlier than `now`. Returns `(start, end)` of the transmission.
    pub fn reserve(
        &mut self,
        now: SimTime,
        ch: Channel,
        airtime: SimDuration,
    ) -> (SimTime, SimTime) {
        let free_at = self.busy_until[ch.index()];
        let start = now.max(free_at);
        let end = start + airtime;
        self.busy_until[ch.index()] = end;
        self.airtime_used[ch.index()] += airtime;
        (start, end)
    }

    /// When the channel next becomes idle (never earlier than `now`).
    pub fn idle_at(&self, now: SimTime, ch: Channel) -> SimTime {
        self.busy_until[ch.index()].max(now)
    }

    /// Whether the channel is idle at `now`.
    pub fn is_idle(&self, now: SimTime, ch: Channel) -> bool {
        self.idle_at(now, ch) == now
    }

    /// Total airtime consumed on `ch` so far.
    pub fn airtime_used(&self, ch: Channel) -> SimDuration {
        self.airtime_used[ch.index()]
    }

    /// The furthest instant any reservation extends to, across all
    /// channels. Frame fates are decided at reservation time, so this
    /// bounds how far past "now" the simulation has already peeked —
    /// the checkpoint engine must keep plan swaps strictly beyond it.
    pub fn horizon(&self) -> SimTime {
        self.busy_until
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Channel utilisation over `[SimTime::ZERO, now]` as a fraction.
    pub fn utilisation(&self, now: SimTime, ch: Channel) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.airtime_used(ch) / now.saturating_since(SimTime::ZERO)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: Channel = Channel::CH6;

    #[test]
    fn idle_channel_starts_immediately() {
        let mut m = ChannelMedium::new();
        let now = SimTime::from_millis(5);
        let (start, end) = m.reserve(now, CH, SimDuration::from_millis(2));
        assert_eq!(start, now);
        assert_eq!(end, SimTime::from_millis(7));
    }

    #[test]
    fn busy_channel_serialises() {
        let mut m = ChannelMedium::new();
        let t0 = SimTime::from_millis(0);
        m.reserve(t0, CH, SimDuration::from_millis(3));
        // Second frame at t=1 must wait until t=3.
        let (start, end) = m.reserve(SimTime::from_millis(1), CH, SimDuration::from_millis(2));
        assert_eq!(start, SimTime::from_millis(3));
        assert_eq!(end, SimTime::from_millis(5));
        assert!(!m.is_idle(SimTime::from_millis(4), CH));
        assert!(m.is_idle(SimTime::from_millis(5), CH));
    }

    #[test]
    fn channels_are_independent() {
        let mut m = ChannelMedium::new();
        m.reserve(SimTime::ZERO, Channel::CH1, SimDuration::from_millis(10));
        let (start, _) = m.reserve(SimTime::ZERO, Channel::CH11, SimDuration::from_millis(1));
        assert_eq!(start, SimTime::ZERO);
    }

    #[test]
    fn horizon_tracks_the_furthest_reservation() {
        let mut m = ChannelMedium::new();
        assert_eq!(m.horizon(), SimTime::ZERO);
        m.reserve(
            SimTime::from_millis(2),
            Channel::CH1,
            SimDuration::from_millis(3),
        );
        m.reserve(
            SimTime::from_millis(1),
            Channel::CH11,
            SimDuration::from_millis(1),
        );
        assert_eq!(m.horizon(), SimTime::from_millis(5));
    }

    #[test]
    fn utilisation_accounting() {
        let mut m = ChannelMedium::new();
        m.reserve(SimTime::ZERO, CH, SimDuration::from_millis(25));
        m.reserve(SimTime::from_millis(50), CH, SimDuration::from_millis(25));
        let u = m.utilisation(SimTime::from_millis(100), CH);
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(m.airtime_used(CH), SimDuration::from_millis(50));
        assert_eq!(m.airtime_used(Channel::CH1), SimDuration::ZERO);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Transmissions on one channel never overlap.
        #[test]
        fn no_overlap(frames in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
            let mut m = ChannelMedium::new();
            let mut now = SimTime::ZERO;
            let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
            for (dt, len) in frames {
                now += SimDuration::from_micros(dt);
                let iv = m.reserve(now, CH, SimDuration::from_micros(len));
                intervals.push(iv);
            }
            for pair in intervals.windows(2) {
                prop_assert!(pair[1].0 >= pair[0].1, "overlap: {:?}", pair);
            }
        }
        }
    }
}
