//! Frame-loss processes.
//!
//! The analytical model (§2.1.1) assumes a flat message-loss probability
//! `h` (10 % in the paper's numbers); real outdoor links lose more near
//! the cell edge. Both are provided, plus smoltcp-style fault-injection
//! helpers used by integration tests.

use spider_simcore::SimRng;

/// A frame-loss model, evaluated per frame.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// Lossless medium (for calibration tests).
    None,
    /// Independent Bernoulli loss with fixed probability — the analytical
    /// model's `h`.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        h: f64,
    },
    /// Distance-dependent loss: `base` inside `edge_start` × range, then
    /// rising linearly to 1.0 at the range limit. Models the lossy
    /// association band at cell edges reported by vehicular Wi-Fi
    /// studies.
    DistanceRamp {
        /// Loss probability inside the reliable core of the cell.
        base: f64,
        /// Fraction of the range at which loss starts ramping (e.g. 0.7).
        edge_start: f64,
    },
}

impl LossModel {
    /// The paper's default: h = 10 %.
    pub fn paper_default() -> LossModel {
        LossModel::Bernoulli { h: 0.10 }
    }

    /// Loss probability for a frame crossing `distance_m` of a cell with
    /// range `range_m`.
    pub fn loss_probability(&self, distance_m: f64, range_m: f64) -> f64 {
        #[cfg(feature = "validate")]
        assert!(
            distance_m.is_finite() && range_m.is_finite() && range_m > 0.0,
            "loss_probability: bad inputs d={distance_m} range={range_m}"
        );
        let p = match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { h } => h.clamp(0.0, 1.0),
            LossModel::DistanceRamp { base, edge_start } => {
                let base = base.clamp(0.0, 1.0);
                let start = (edge_start.clamp(0.0, 1.0)) * range_m;
                if distance_m <= start {
                    base
                } else if distance_m >= range_m {
                    1.0
                } else {
                    // Linear ramp from base at `start` to 1.0 at `range`.
                    let t = (distance_m - start) / (range_m - start);
                    base + (1.0 - base) * t
                }
            }
        };
        #[cfg(feature = "validate")]
        assert!(
            (0.0..=1.0).contains(&p),
            "loss_probability({distance_m}, {range_m}) produced invalid probability {p}"
        );
        p
    }

    /// Loss probability from a *squared* distance, skipping the `sqrt`
    /// whenever the answer doesn't depend on the exact distance: the
    /// `None` and `Bernoulli` models are distance-independent, and the
    /// ramp model is flat (`base`) inside `edge_start × range`, so only
    /// frames in the edge band — a minority in any dense deployment —
    /// pay for a root. Agrees with [`LossModel::loss_probability`]
    /// everywhere except possible 1-ulp boundary flips from comparing
    /// `d² ≤ start²` instead of `d ≤ start`.
    pub fn loss_probability_sq(&self, distance_sq_m2: f64, range_m: f64) -> f64 {
        #[cfg(feature = "validate")]
        assert!(
            distance_sq_m2.is_finite() && distance_sq_m2 >= 0.0 && range_m > 0.0,
            "loss_probability_sq: bad inputs d²={distance_sq_m2} range={range_m}"
        );
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { h } => h.clamp(0.0, 1.0),
            LossModel::DistanceRamp { base, edge_start } => {
                let start = (edge_start.clamp(0.0, 1.0)) * range_m;
                if distance_sq_m2 <= start * start {
                    base.clamp(0.0, 1.0)
                } else {
                    self.loss_probability(distance_sq_m2.sqrt(), range_m)
                }
            }
        }
    }

    /// Sample whether a frame at `distance_m` is lost.
    pub fn is_lost(&self, rng: &mut SimRng, distance_m: f64, range_m: f64) -> bool {
        rng.chance(self.loss_probability(distance_m, range_m))
    }
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut rng = SimRng::new(1);
        assert!(!LossModel::None.is_lost(&mut rng, 99.0, 100.0));
        assert_eq!(LossModel::None.loss_probability(50.0, 100.0), 0.0);
    }

    #[test]
    fn bernoulli_rate_is_respected() {
        let m = LossModel::Bernoulli { h: 0.10 };
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng, 50.0, 100.0)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn squared_path_matches_linear_path() {
        let models = [
            LossModel::None,
            LossModel::Bernoulli { h: 0.1 },
            LossModel::DistanceRamp {
                base: 0.05,
                edge_start: 0.7,
            },
        ];
        for m in &models {
            for d in [0.0, 10.0, 69.9, 70.0, 70.1, 85.0, 99.0, 100.0, 140.0] {
                let direct = m.loss_probability(d, 100.0);
                let squared = m.loss_probability_sq(d * d, 100.0);
                assert!(
                    (direct - squared).abs() < 1e-12,
                    "{m:?} at {d}: {direct} vs {squared}"
                );
            }
        }
    }

    #[test]
    fn ramp_shape() {
        let m = LossModel::DistanceRamp {
            base: 0.05,
            edge_start: 0.7,
        };
        assert_eq!(m.loss_probability(0.0, 100.0), 0.05);
        assert_eq!(m.loss_probability(70.0, 100.0), 0.05);
        assert!((m.loss_probability(85.0, 100.0) - 0.525).abs() < 1e-9);
        assert_eq!(m.loss_probability(100.0, 100.0), 1.0);
        assert_eq!(m.loss_probability(150.0, 100.0), 1.0);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Loss probability is always a valid probability and monotone in
        /// distance for the ramp model.
        #[test]
        fn ramp_is_monotone_probability(
            base in 0.0f64..1.0, edge in 0.0f64..1.0,
            a in 0.0f64..200.0, b in 0.0f64..200.0,
        ) {
            let m = LossModel::DistanceRamp { base, edge_start: edge };
            let (near, far) = if a <= b { (a, b) } else { (b, a) };
            let pn = m.loss_probability(near, 100.0);
            let pf = m.loss_probability(far, 100.0);
            prop_assert!((0.0..=1.0).contains(&pn));
            prop_assert!((0.0..=1.0).contains(&pf));
            prop_assert!(pn <= pf + 1e-12);
        }
        }
    }
}
