//! Stream-call inventory fixture: literal and computed labels, chained
//! receivers, and a `#[cfg(test)]` type the index must mark as such.

pub fn seeded(root: &SimRng, ap: u64) -> SimRng {
    let beacon = root.stream("beacon");
    beacon.stream_indexed("ap", ap)
}

pub fn tagged(root: &SimRng, which: &str) -> SimRng {
    root.stream(which)
}

#[cfg(test)]
mod tests {
    pub struct Scratch {
        pub x: u32,
    }
}
