//! Index fixture: one of every item shape the parser must inventory
//! exactly. `tests/item_index.rs` asserts the full inventory — counts,
//! names, fields, derives — so a tokenizer or parser regression fails
//! loudly instead of silently weakening the semantic rules.

/// Generic struct with named fields and a derive list.
#[derive(Debug, Clone)]
pub struct Station<C: ClientLike> {
    pub id: u32,
    pub radio: C,
    pub links: Vec<Link>,
    pub last_seen: Option<SimTime>,
}

/// Tuple struct: payload idents, no named fields.
#[derive(Clone, Copy)]
pub struct Rssi(pub f64);

/// Enum with unit, tuple and struct variants plus a discriminant.
pub enum Phase {
    Idle,
    Probing(Link, u8),
    Associated { ap: BssId, since: SimTime },
    Failed = 3,
}

#[derive(Clone)]
pub struct Link {
    pub peer: u32,
}

impl<C: ClientLike> Station<C> {
    pub fn new(id: u32, radio: C) -> Self {
        Station {
            id,
            radio,
            links: Vec::new(),
            last_seen: None,
        }
    }

    fn drop_links(&mut self) {
        self.links.clear();
    }
}

impl Clone for Phase {
    fn clone(&self) -> Self {
        self.replay()
    }
}
