//! Fixture crate root *without* `#![forbid(unsafe_code)]` — the
//! forbid-unsafe rule must fire on this file.

pub mod clock;
pub mod envread;
pub mod io;
pub mod maps;
pub mod threads;
