//! Fixture: thread spawn outside `simcore::sweep`.

pub fn bad_spawn() {
    std::thread::spawn(|| {}).join().ok();
}
