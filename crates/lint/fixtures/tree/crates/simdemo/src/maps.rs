//! Fixture: default-RandomState hash map in library code.

pub fn bad_map() -> usize {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
    m.len()
}

#[cfg(test)]
mod tests {
    // Inside #[cfg(test)] the rule is waived; this must NOT fire.
    #[test]
    fn test_map_is_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
