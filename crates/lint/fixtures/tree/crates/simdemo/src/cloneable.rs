//! Fixture: a cloneable type hiding `lint:allow`-escaped state.
//!
//! The escape itself is legitimate (and silences `wall-clock`), but the
//! `Clone` derive means the checkpoint engine would fork the escaped
//! state — `clone-nondet` must fire on the derive line.

#[derive(Debug, Clone)]
pub struct ProfiledQueue {
    pub depth: usize,
    // profiling hook, not simulation state: lint:allow(wall-clock)
    pub started: std::time::Instant,
}

/// The same escape on a type that is *not* cloneable is fine.
pub struct Probe {
    // profiling hook, not simulation state: lint:allow(wall-clock)
    pub started: std::time::Instant,
}
