//! Fixture: a hand-cooked `SimRng` seed outside `simcore::rng`.

pub fn per_site_stream(seed: u64, site: u64) -> SimRng {
    SimRng::new(seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub fn plain_root(seed: u64) -> SimRng {
    // A plain root seed is fine — derivation starts recorded from here.
    SimRng::new(seed)
}

pub fn escaped(seed: u64) -> SimRng {
    // lint:allow(rng-derivation) -- fixture: escaped cooked seed must not fire
    SimRng::new(seed ^ 0xDEAD_BEEF)
}
