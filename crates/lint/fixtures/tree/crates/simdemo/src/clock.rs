//! Fixture: wall-clock reads in simulation code.

pub fn bad_timestamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
