//! Fixture: NaN-capable ordering. The `partial_cmp(..).unwrap()`
//! comparator must fire; the `total_cmp` rewrite below must not.

pub fn bad_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn good_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
