//! Fixture: ambient environment read outside sweep/bench.

pub fn bad_jobs() -> usize {
    std::env::var("JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// This one is deliberate and allow-listed; it must NOT fire.
pub fn escaped_jobs() -> usize {
    // test hook, documented: lint:allow(env-var)
    std::env::var("ESCAPED").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Multi-line statement under a standalone allow: the escape must
/// cover the continuation line the token lands on (regression test
/// for statement-span allow scoping). Must NOT fire.
pub fn escaped_multiline() -> usize {
    // test hook, documented: lint:allow(env-var)
    Some(())
        .and_then(|_| std::env::var("SPAN").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
