//! Fixture: ambient environment read outside sweep/bench.

pub fn bad_jobs() -> usize {
    std::env::var("JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// This one is deliberate and allow-listed; it must NOT fire.
pub fn escaped_jobs() -> usize {
    // test hook, documented: lint:allow(env-var)
    std::env::var("ESCAPED").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}
