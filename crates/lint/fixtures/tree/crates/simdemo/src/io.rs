//! Fixture: console output from library code.

pub fn bad_print(x: u64) {
    println!("x = {x}");
}
