//! Fixture: unordered hash-map iteration feeding an aggregation path
//! in a checked crate (`workloads`), with no sort and no allow.

pub struct Tally {
    pub counts: FxHashMap<u16, u64>,
}

pub fn bad_rows(t: &Tally) -> Vec<(u16, u64)> {
    t.counts.iter().map(|(k, v)| (*k, *v)).collect()
}

pub fn good_rows(t: &Tally) -> Vec<u16> {
    let mut ks: Vec<u16> = t.counts.keys().copied().collect();
    ks.sort_unstable();
    ks
}

pub fn summed(t: &Tally) -> u64 {
    // Commutative fold, order cannot leak: lint:allow(hash-iter)
    t.counts.values().sum()
}
