//! Fixture: the snapshot-completeness walk. `World` here is the
//! checkpoint root (crate `workloads`, type `World`); `MiniQueue` is
//! Clone-covered, `Recorder` is not — the rule must fire exactly
//! once, at the field that references `Recorder`.

#[derive(Clone)]
pub struct World {
    pub queue: MiniQueue,
    pub probe: Recorder,
    pub horizon: u64,
}

#[derive(Clone)]
pub struct MiniQueue {
    pub depth: usize,
}

/// Not `Clone`: reachable from `World`, so forks would silently lose
/// whatever it held.
pub struct Recorder {
    pub frames: u64,
}
