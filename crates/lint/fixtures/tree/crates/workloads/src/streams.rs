//! Fixture: RNG stream-label hygiene. Two derivations of one label
//! from one receiver inside one function alias the same stream — the
//! rule fires once, on the second derivation. The escaped computed
//! label must NOT fire.

pub fn draws(root: &SimRng) -> (f64, f64) {
    let mut a = root.stream("loss");
    let mut b = root.stream("loss");
    (a.next_f64(), b.next_f64())
}

/// Deliberate dynamic derivation over a closed label table; escaped.
pub fn keyed(root: &SimRng, class: &str) -> SimRng {
    // label table is fixed at the call-site: lint:allow(stream-label)
    root.stream(&format!("class-{class}"))
}
