//! Seeded-violation fixtures: one per rule, under `fixtures/tree/`,
//! arranged as a miniature workspace. The scanner must fire exactly on
//! the seeded lines and respect every escape in the fixtures.

use spider_lint::{scan_tree, Rule};
use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree")
}

#[test]
fn every_rule_fires_exactly_once_on_the_fixture_tree() {
    let violations = scan_tree(&fixture_root()).expect("scan fixtures");
    let mut got: Vec<(String, &'static str, usize)> = violations
        .iter()
        .map(|v| {
            (
                v.file.to_string_lossy().replace('\\', "/"),
                v.rule.id(),
                v.line,
            )
        })
        .collect();
    got.sort();
    let expected = vec![
        ("crates/simdemo/src/clock.rs".to_string(), "wall-clock", 4),
        (
            "crates/simdemo/src/cloneable.rs".to_string(),
            "clone-nondet",
            7,
        ),
        ("crates/simdemo/src/envread.rs".to_string(), "env-var", 4),
        ("crates/simdemo/src/floats.rs".to_string(), "float-ord", 5),
        ("crates/simdemo/src/io.rs".to_string(), "sans-io", 4),
        ("crates/simdemo/src/lib.rs".to_string(), "forbid-unsafe", 1),
        ("crates/simdemo/src/maps.rs".to_string(), "default-hash", 4),
        (
            "crates/simdemo/src/rngseed.rs".to_string(),
            "rng-derivation",
            4,
        ),
        ("crates/simdemo/src/threads.rs".to_string(), "thread", 4),
        ("crates/workloads/src/agg.rs".to_string(), "hash-iter", 9),
        (
            "crates/workloads/src/streams.rs".to_string(),
            "stream-label",
            8,
        ),
        (
            "crates/workloads/src/worldlike.rs".to_string(),
            "snapshot-completeness",
            9,
        ),
    ];
    let mut expected = expected;
    expected.sort();
    assert_eq!(got, expected, "full violation set mismatch");
}

#[test]
fn json_report_is_byte_deterministic_and_ordered() {
    let a = spider_lint::violations_json(&scan_tree(&fixture_root()).expect("scan"));
    let b = spider_lint::violations_json(&scan_tree(&fixture_root()).expect("scan"));
    let (a, b) = (a.pretty(), b.pretty());
    assert_eq!(a, b, "two scans must serialize identically");
    // Ordered keys and forward-slashed paths, CI-parsable.
    let version = a.find("\"version\"").expect("version key");
    let violations = a.find("\"violations\"").expect("violations key");
    let count = a.find("\"count\"").expect("count key");
    assert!(
        version < violations && violations < count,
        "key order is fixed"
    );
    assert!(a.contains("\"crates/simdemo/src/clock.rs\""));
    assert!(
        !a.contains("crates\\"),
        "paths use forward slashes on every host"
    );
}

#[test]
fn every_rule_in_the_catalog_has_a_fixture() {
    let violations = scan_tree(&fixture_root()).expect("scan fixtures");
    for rule in Rule::ALL {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "rule `{}` has no seeded fixture violation",
            rule.id()
        );
    }
}
