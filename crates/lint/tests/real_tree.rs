//! The real workspace must scan clean: this makes `cargo test` itself
//! enforce the lint pass, independently of the CI job that also runs
//! `cargo run -p spider-lint`.

use std::path::Path;

#[test]
fn workspace_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let violations = spider_lint::scan_tree(root).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
