//! Exact-inventory tests for the workspace item index over the seeded
//! tree in `fixtures/index/`. These pin the parser's output — counts,
//! names, fields, derives, impl attribution, stream-call sites — so a
//! tokenizer regression fails here loudly instead of silently weakening
//! the semantic rules built on top.

use spider_lint::index::{ItemIndex, TypeKind};
use std::path::{Path, PathBuf};

fn fixture_index() -> ItemIndex {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/index");
    let mut sources = Vec::new();
    for name in ["lib.rs", "streams.rs"] {
        let path = root.join("crates/alpha/src").join(name);
        let rel = PathBuf::from("crates/alpha/src").join(name);
        sources.push((rel, std::fs::read_to_string(&path).expect("read fixture")));
    }
    ItemIndex::build_from_sources(&sources)
}

#[test]
fn type_inventory_is_exact() {
    let ix = fixture_index();
    let mut names: Vec<(&str, TypeKind, bool)> = ix
        .types
        .iter()
        .map(|t| (t.name.as_str(), t.kind, t.in_test))
        .collect();
    names.sort_by_key(|(n, _, _)| *n);
    assert_eq!(
        names,
        vec![
            ("Link", TypeKind::Struct, false),
            ("Phase", TypeKind::Enum, false),
            ("Rssi", TypeKind::Struct, false),
            ("Scratch", TypeKind::Struct, true),
            ("Station", TypeKind::Struct, false),
        ]
    );
    assert!(ix.types.iter().all(|t| t.crate_name == "alpha"));
}

#[test]
fn station_fields_derives_and_generics() {
    let ix = fixture_index();
    let station = ix.types.iter().find(|t| t.name == "Station").unwrap();
    assert_eq!(station.derives, vec!["Debug", "Clone"]);
    assert_eq!(station.generics, vec!["C"]);
    assert_eq!(station.line + 1, 8, "0-based line of the struct keyword");

    let fields: Vec<(&str, &str)> = station
        .fields
        .iter()
        .map(|f| (f.name.as_str(), f.ty.as_str()))
        .collect();
    assert_eq!(
        fields,
        vec![
            ("id", "u32"),
            ("radio", "C"),
            ("links", "Vec<Link>"),
            ("last_seen", "Option<SimTime>"),
        ]
    );
    // Reachability raw material: generic params are excluded, container
    // and payload identifiers kept.
    let links = &station.fields[2];
    assert_eq!(links.ty_idents, vec!["Vec", "Link"]);
    assert_eq!(links.line + 1, 11, "field line is where its name sits");
    assert!(station.fields[1].ty_idents.is_empty(), "`C` is a generic");
}

#[test]
fn tuple_and_enum_payloads() {
    let ix = fixture_index();
    let rssi = ix.types.iter().find(|t| t.name == "Rssi").unwrap();
    assert_eq!(rssi.derives, vec!["Clone", "Copy"]);
    assert!(rssi.fields.is_empty());
    let payload: Vec<&str> = rssi
        .payload_idents
        .iter()
        .map(|(s, _)| s.as_str())
        .collect();
    assert_eq!(payload, vec!["f64"]);

    let phase = ix.types.iter().find(|t| t.name == "Phase").unwrap();
    assert_eq!(phase.kind, TypeKind::Enum);
    assert!(phase.derives.is_empty());
    // Variant names and struct-variant field names are NOT payload
    // idents; the types inside payloads are. The discriminant variant
    // contributes nothing.
    let payload: Vec<&str> = phase
        .payload_idents
        .iter()
        .map(|(s, _)| s.as_str())
        .collect();
    assert_eq!(payload, vec!["Link", "u8", "BssId", "SimTime"]);
}

#[test]
fn impl_attribution_and_fn_bodies() {
    let ix = fixture_index();
    assert_eq!(ix.impls.len(), 2);

    let inherent = ix
        .impls
        .iter()
        .find(|im| im.trait_name.is_none())
        .expect("inherent impl");
    assert_eq!(inherent.type_name, "Station");
    let fn_names: Vec<&str> = inherent.fns.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(fn_names, vec!["new", "drop_links"]);
    let new_idents = &inherent.fns[0].1;
    for ident in ["id", "radio", "links", "last_seen"] {
        assert!(new_idents.contains(ident), "`new` mentions `{ident}`");
    }
    assert!(
        !new_idents.contains("clear"),
        "`clear` is in drop_links only"
    );

    let clone_impl = ix
        .impls
        .iter()
        .find(|im| im.trait_name.as_deref() == Some("Clone"))
        .expect("Clone impl");
    assert_eq!(clone_impl.type_name, "Phase");
    assert!(
        clone_impl.idents.contains("replay"),
        "delegation target is visible for one-hop coverage"
    );
}

#[test]
fn stream_call_sites() {
    let ix = fixture_index();
    assert_eq!(ix.streams.len(), 3);

    let lit: Vec<(&str, Option<&str>, &str)> = ix
        .streams
        .iter()
        .map(|s| (s.method, s.label.as_deref(), s.receiver.as_str()))
        .collect();
    assert_eq!(
        lit,
        vec![
            ("stream", Some("beacon"), "root"),
            ("stream_indexed", Some("ap"), "beacon"),
            ("stream", None, "root"),
        ]
    );
    // The two literal derivations sit in `seeded`, the computed one in
    // `tagged` — distinct scopes, so stream-label treats them apart.
    assert_eq!(ix.streams[0].scope, ix.streams[1].scope);
    assert_ne!(ix.streams[0].scope, ix.streams[2].scope);
}
