//! Negative tests for `snapshot-completeness`: deliberately grow a
//! `World`-reachable type in ways the checkpoint engine cannot fork and
//! prove the rule catches each one — exactly once, at the field's line.

use spider_lint::{scan_sources, Rule};
use std::path::PathBuf;

fn world_sources(world_body: &str, extra: &str) -> Vec<(PathBuf, String)> {
    // Mirrors the real shape: manual `Clone for World` delegating to an
    // inherent `snapshot`, plus a small reachable type tree.
    let world = format!(
        "\
pub struct World {{
{world_body}
}}

impl Clone for World {{
    fn clone(&self) -> Self {{
        self.snapshot()
    }}
}}

{extra}

#[derive(Clone)]
pub struct MiniQueue {{
    pub depth: usize,
}}

pub struct Recorder {{
    pub frames: u64,
}}
"
    );
    vec![(PathBuf::from("crates/workloads/src/world.rs"), world)]
}

#[test]
fn added_uncloned_field_is_caught_at_its_line() {
    // The scenario the rule exists for: someone adds a field holding
    // non-Clone state to World and wires it into snapshot() — but the
    // type itself still cannot be forked.
    let v = scan_sources(&world_sources(
        "    pub queue: MiniQueue,\n    pub probe: Recorder,",
        "\
impl World {
    pub fn snapshot(&self) -> Self {
        World {
            queue: self.queue.clone(),
            probe: Recorder { frames: self.probe.frames },
        }
    }
}",
    ));
    assert_eq!(v.len(), 1, "exactly one violation: {v:?}");
    assert_eq!(v[0].rule, Rule::SnapshotCompleteness);
    assert_eq!(v[0].line, 3, "at the `probe` field's line");
    assert!(v[0].message.contains("Recorder"));
}

#[test]
fn field_missing_from_snapshot_is_caught_at_its_line() {
    // Second failure mode: the field's type is forkable, but snapshot()
    // was never taught about it — forks would silently lose it.
    let v = scan_sources(&world_sources(
        "    pub queue: MiniQueue,\n    pub horizon: u64,",
        "\
impl World {
    pub fn snapshot(&self) -> Self {
        World {
            queue: self.queue.clone(),
            ..unreachable!()
        }
    }
}",
    ));
    // `horizon` is never mentioned by the Clone/snapshot path.
    let misses: Vec<_> = v
        .iter()
        .filter(|v| v.rule == Rule::SnapshotCompleteness)
        .collect();
    assert_eq!(misses.len(), 1, "exactly one violation: {v:?}");
    assert_eq!(misses[0].line, 3, "at the `horizon` field's line");
    assert!(misses[0].message.contains("horizon"));
}

#[test]
fn covered_world_is_clean() {
    let v = scan_sources(&world_sources(
        "    pub queue: MiniQueue,\n    pub horizon: u64,",
        "\
impl World {
    pub fn snapshot(&self) -> Self {
        World {
            queue: self.queue.clone(),
            horizon: self.horizon,
        }
    }
}",
    ));
    assert!(v.is_empty(), "covered world must scan clean: {v:?}");
}

#[test]
fn transitively_reachable_uncloned_type_is_caught() {
    // Reachability is transitive: World → MiniQueue → the offending
    // type, two files apart.
    let files = vec![
        (
            PathBuf::from("crates/workloads/src/world.rs"),
            "\
#[derive(Clone)]
pub struct World {
    pub queue: MiniQueue,
}
"
            .to_string(),
        ),
        (
            PathBuf::from("crates/workloads/src/queue.rs"),
            "\
#[derive(Clone)]
pub struct MiniQueue {
    pub scratch: Recorder,
}

pub struct Recorder {
    pub frames: u64,
}
"
            .to_string(),
        ),
    ];
    let v = scan_sources(&files);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::SnapshotCompleteness);
    assert_eq!(
        v[0].file,
        PathBuf::from("crates/workloads/src/queue.rs"),
        "reported where the edge is, one hop down"
    );
    assert_eq!(v[0].line, 3, "at the `scratch` field's line");
}

#[test]
fn allow_escape_silences_the_field() {
    let v = scan_sources(&world_sources(
        "    pub queue: MiniQueue,\n    // dropped on fork by design: lint:allow(snapshot-completeness)\n    pub probe: Recorder,",
        "\
impl World {
    pub fn snapshot(&self) -> Self {
        World {
            queue: self.queue.clone(),
            probe: Recorder { frames: 0 },
        }
    }
}",
    ));
    assert!(v.is_empty(), "escaped field must not fire: {v:?}");
}

#[test]
fn non_workloads_world_is_not_a_root() {
    // Only the real checkpoint root anchors the walk; a `World` in some
    // other crate (e.g. a test helper) does not.
    let files = vec![(
        PathBuf::from("crates/model/src/world.rs"),
        "\
#[derive(Clone)]
pub struct World {
    pub probe: Recorder,
}

pub struct Recorder {
    pub frames: u64,
}
"
        .to_string(),
    )];
    let v = scan_sources(&files);
    assert!(v.is_empty(), "{v:?}");
}
