//! A hand-rolled Rust tokenizer: the semantic engine's front end.
//!
//! The original `spider-lint` was a *line* scanner: it stripped
//! comments and string literals per line and substring-matched rule
//! tokens against what was left. That architecture had one known
//! false-positive class — a string literal spanning several lines (a
//! multi-line `format!` template, a raw-string test vector) loses its
//! "inside a string" state at the first newline, so rule tokens inside
//! the string's later lines fired as if they were code.
//!
//! This module replaces the stripper with a whole-file tokenizer that
//! carries string/comment state across newlines and yields a flat
//! [`Tok`] stream with line numbers. Two derived views feed the rest of
//! the crate:
//!
//! * [`FileTokens::code_lines`] — a per-line *compact render* of the
//!   code tokens (string/char literal bodies blanked, one canonical
//!   space only between identifier-like neighbours). The nine original
//!   line rules run over this render unchanged in spirit, but now with
//!   true cross-line literal handling and identifier-boundary matching.
//! * [`FileTokens::comment_lines`] — comment text per line, where
//!   `lint:allow` markers live.
//!
//! The item index (`crate::index`) consumes the raw token stream
//! directly.

use std::fmt;

/// Token classification — deliberately coarse; the rules need idents,
/// literals and punctuation, not the full Rust grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`World`, `struct`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// String literal of any flavour (`"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    /// The token's `text` is the literal's *body* (between the quotes),
    /// so label rules can compare contents.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0xFF`, `1.0e-3`).
    Num,
    /// A single punctuation character (`{`, `<`, `#`, …). Multi-char
    /// operators appear as consecutive tokens; the compact render
    /// re-joins them without spaces.
    Punct,
}

/// One token with its 0-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 0-based line of the token's first character.
    pub line: usize,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokKind::Str => write!(f, "\"{}\"", self.text),
            TokKind::Char => write!(f, "'{}'", self.text),
            _ => f.write_str(&self.text),
        }
    }
}

/// The tokenization of one source file, plus the two per-line views the
/// rule engine consumes.
#[derive(Debug)]
pub struct FileTokens {
    pub toks: Vec<Tok>,
    /// Compact code render per line (see module docs). String/char
    /// literal bodies are blanked to `""` / `''`; a literal spanning
    /// multiple lines renders only on its first line, so its interior
    /// lines are empty — no rule can fire inside a literal.
    pub code_lines: Vec<String>,
    /// Comment text per line (line + block, concatenated).
    pub comment_lines: Vec<String>,
}

/// True for characters that can continue an identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize `source`. Never fails: unterminated literals and comments
/// are tolerated (the scan must degrade gracefully on mid-edit trees).
pub fn tokenize(source: &str) -> FileTokens {
    let chars: Vec<char> = source.chars().collect();
    let n_lines = source.lines().count().max(1);
    let mut toks: Vec<Tok> = Vec::new();
    let mut comment_lines: Vec<String> = vec![String::new(); n_lines];
    let mut line = 0usize;
    let mut i = 0usize;

    // Push `c` into the comment text of `line`, growing if the file
    // ends without a trailing newline.
    let note_comment = |comment_lines: &mut Vec<String>, line: usize, c: char| {
        if line >= comment_lines.len() {
            comment_lines.resize(line + 1, String::new());
        }
        if c != '\n' {
            comment_lines[line].push(c);
        }
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            // Line comment.
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    note_comment(&mut comment_lines, line, chars[i]);
                    i += 1;
                }
            }
            // Block comment — Rust block comments nest.
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        } else {
                            note_comment(&mut comment_lines, line, chars[i]);
                        }
                        i += 1;
                    }
                }
            }
            // String literal (escape-aware, may span lines).
            '"' => {
                let start_line = line;
                let mut body = String::new();
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            body.push('\\');
                            if let Some(&e) = chars.get(i + 1) {
                                body.push(e);
                                if e == '\n' {
                                    line += 1;
                                }
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            body.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: body,
                    line: start_line,
                });
            }
            // Raw string: r"…" / r#"…"# / r##"…"## (after an `r` that
            // did not start an identifier; handled in the ident arm).
            // Char literal or lifetime.
            '\'' => {
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: '\n', '\'', '\u{..}', …
                    // Consume the escape pair first so an escaped quote
                    // is not mistaken for the closer.
                    let start_line = line;
                    let mut body = String::new();
                    body.push('\\');
                    if let Some(&e) = chars.get(i + 2) {
                        body.push(e);
                    }
                    i += 3;
                    while i < chars.len() && chars[i] != '\'' {
                        body.push(chars[i]);
                        i += 1;
                    }
                    i += 1; // closing quote
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: body,
                        line: start_line,
                    });
                } else if chars.get(i + 2) == Some(&'\'')
                    && chars.get(i + 1).is_some_and(|&c| c != '\'')
                {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: chars[i + 1].to_string(),
                        line,
                    });
                    i += 3;
                } else {
                    // Lifetime: 'ident.
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len() && is_ident_char(chars[j]) {
                        j += 1;
                    }
                    let name: String = chars[start..j].iter().collect();
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: format!("'{name}"),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && (is_ident_char(chars[j]) || chars[j] == '.') {
                    // `1..2` is a range, not a float; `1.max(…)` is a
                    // method call on an integer literal.
                    if chars[j] == '.' && !chars.get(j + 1).copied().unwrap_or(' ').is_ascii_digit()
                    {
                        break;
                    }
                    // Exponent sign: 1.0e-3 / 2E+9.
                    if (chars[j] == 'e' || chars[j] == 'E')
                        && matches!(chars.get(j + 1), Some(&'+') | Some(&'-'))
                        && chars.get(j + 2).copied().unwrap_or(' ').is_ascii_digit()
                    {
                        j += 2;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Raw string with an `r`/`br` prefix?
                let raw_hash_start = match c {
                    'r' => Some(i + 1),
                    'b' if chars.get(i + 1) == Some(&'r') => Some(i + 2),
                    _ => None,
                };
                let raw = raw_hash_start.and_then(|mut j| {
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    (chars.get(j) == Some(&'"')).then_some((j + 1, hashes))
                });
                if let Some((body_start, hashes)) = raw {
                    let start_line = line;
                    let mut body = String::new();
                    let mut j = body_start;
                    'raw: while j < chars.len() {
                        if chars[j] == '"' {
                            // Close iff followed by `hashes` hash marks.
                            if (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#')) {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        body.push(chars[j]);
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: body,
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                // Byte string b"…" — `b` then a plain string literal.
                if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    i += 1; // re-enter the loop at the quote
                    continue;
                }
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                let mut text: String = chars[start..j].iter().collect();
                // Raw identifier r#type: the `r` arm above only consumed
                // ident chars, so `r` followed by `#` + ident is here.
                if text == "r" && chars.get(j) == Some(&'#') {
                    let mut k = j + 1;
                    while k < chars.len() && is_ident_char(chars[k]) {
                        k += 1;
                    }
                    text = chars[j + 1..k].iter().collect();
                    j = k;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = j;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }

    let code_lines = render_code_lines(&toks, comment_lines.len().max(line + 1));
    if comment_lines.len() < code_lines.len() {
        comment_lines.resize(code_lines.len(), String::new());
    }
    FileTokens {
        toks,
        code_lines,
        comment_lines,
    }
}

/// Render the compact per-line code view: tokens joined with a single
/// space only where two identifier-like tokens would otherwise fuse
/// (`pub fn`, `let mut x`), literal bodies blanked.
fn render_code_lines(toks: &[Tok], n_lines: usize) -> Vec<String> {
    let mut lines = vec![String::new(); n_lines];
    for t in toks {
        if t.line >= lines.len() {
            lines.resize(t.line + 1, String::new());
        }
        let line = &mut lines[t.line];
        let rendered: String = match t.kind {
            TokKind::Str => "\"\"".to_string(),
            TokKind::Char => "''".to_string(),
            _ => t.text.clone(),
        };
        let prev_joins = line.chars().next_back().is_some_and(is_ident_char);
        let next_joins = rendered.chars().next().is_some_and(is_ident_char);
        if prev_joins && next_joins {
            line.push(' ');
        }
        line.push_str(&rendered);
    }
    lines
}

/// Identifier-boundary-aware substring search: `needle` matches in
/// `hay` only where its identifier-edges do not continue into adjacent
/// identifier characters. `find_tok("x.iter()", ".iter()")` matches;
/// `find_tok("my_thread::spawn", "thread::spawn")` does not.
pub fn find_tok(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let head_bounded = !needle.chars().next().is_some_and(is_ident_char);
    let tail_bounded = !needle.chars().next_back().is_some_and(is_ident_char);
    for (pos, _) in hay.match_indices(needle) {
        let ok_head = head_bounded || !hay[..pos].chars().next_back().is_some_and(is_ident_char);
        let ok_tail = tail_bounded
            || !hay[pos + needle.len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char);
        if ok_head && ok_tail {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let ft = tokenize("let x = \"Instant::now\"; // lint:allow(thread)\n");
        assert!(!ft.code_lines[0].contains("Instant"));
        assert!(ft.comment_lines[0].contains("lint:allow(thread)"));
        let ft = tokenize("/* SystemTime */ let y = 1;\n");
        assert!(!ft.code_lines[0].contains("SystemTime"));
        assert!(ft.code_lines[0].contains("let y=1;"));
    }

    #[test]
    fn multi_line_string_does_not_leak_tokens() {
        // The line-scanner false-positive class this tokenizer kills: a
        // string spanning lines must not surface its body as code.
        let src = "let t = \"row one\nInstant::now() inside a template\nrow three\";\nlet u = 1;\n";
        let ft = tokenize(src);
        assert!(!ft.code_lines[1].contains("Instant"), "{:?}", ft.code_lines);
        assert!(ft.code_lines[3].contains("let u=1;"));
    }

    #[test]
    fn raw_strings_span_lines_and_hashes() {
        let src = "let s = r#\"SystemTime \" inner\nstd::env::var second line\"#;\nlet v = 2;\n";
        let ft = tokenize(src);
        assert!(!ft.code_lines[0].contains("SystemTime"));
        assert!(!ft.code_lines[1].contains("env"));
        assert!(ft.code_lines[2].contains("let v=2;"));
        let strs: Vec<&Tok> = ft.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("inner"));
    }

    #[test]
    fn nested_block_comments() {
        let ft = tokenize("/* outer /* inner */ SystemTime */ let z = 3;\n");
        assert!(!ft.code_lines[0].contains("SystemTime"));
        assert!(ft.code_lines[0].contains("let z=3;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ft = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(ft
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(ft.code_lines[0].contains("fn f<'a>"));
    }

    #[test]
    fn string_literal_values_are_kept() {
        let ft = tokenize("root.stream(\"beacon-phase\")\n");
        let s = ft
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.text, "beacon-phase");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let ft = tokenize("for i in 0..10 { let x = 1.max(2); let y = 1.5e-3; }\n");
        let nums: Vec<&str> = ft
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1", "2", "1.5e-3"]);
    }

    #[test]
    fn boundary_aware_matching() {
        assert!(find_tok("x.iter()", ".iter()"));
        assert!(!find_tok("my_thread::spawn", "thread::spawn"));
        assert!(find_tok("std::thread::spawn", "thread::spawn"));
        assert!(!find_tok("renv::var", "env::var"));
    }
}
