//! CLI for the workspace lint pass: `cargo run -p spider-lint`.
//!
//! Walks the workspace (default: the current directory, which is the
//! workspace root under `cargo run`) and prints one line per violation,
//! exiting non-zero if any fired. See the library docs / DESIGN.md §11
//! for the rule catalog and the `lint:allow` escape convention.
//!
//! Exit-code contract (stable — CI depends on it):
//! * `0` — tree scanned clean;
//! * `1` — at least one violation (the report is the output);
//! * `2` — the scan itself failed (bad arguments, unreadable tree).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut github = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            }
            "--json" => json = true,
            "--github" => github = true,
            "--help" | "-h" => {
                println!(
                    "spider-lint: determinism / sans-IO semantic analysis\n\n\
                     USAGE: spider-lint [--root <workspace-root>] [--json] [--github]\n\n\
                     --json    emit the report as byte-deterministic JSON on stdout\n\
                     \u{20}         (ordered keys, violations sorted by file/line/rule)\n\
                     --github  additionally emit GitHub Actions `::error` annotations\n\
                     \u{20}         on stderr, one per violation\n\n\
                     Exit codes: 0 clean, 1 violations found, 2 scan error.\n\
                     Rules and escapes: DESIGN.md §11."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "{}: not a workspace root (no crates/ directory); pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let violations = match spider_lint::scan_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("spider-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if github {
        // Annotations go to stderr so they compose with --json on stdout.
        for v in &violations {
            eprintln!(
                "::error file={},line={}::[{}] {}",
                v.file.to_string_lossy().replace('\\', "/"),
                v.line,
                v.rule.id(),
                v.message
            );
        }
    }
    if json {
        println!("{}", spider_lint::violations_json(&violations).pretty());
    } else if violations.is_empty() {
        println!("spider-lint: clean");
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("spider-lint: {} violation(s)", violations.len());
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
