//! CLI for the workspace lint pass: `cargo run -p spider-lint`.
//!
//! Walks the workspace (default: the current directory, which is the
//! workspace root under `cargo run`) and prints one line per violation,
//! exiting non-zero if any fired. See the library docs / DESIGN.md §11
//! for the rule catalog and the `lint:allow` escape convention.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "spider-lint: determinism / sans-IO static analysis\n\n\
                     USAGE: spider-lint [--root <workspace-root>]\n\n\
                     Exits 0 if the tree is clean, 1 with one line per\n\
                     violation otherwise. Rules and escapes: DESIGN.md §11."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "{}: not a workspace root (no crates/ directory); pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    match spider_lint::scan_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("spider-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("spider-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("spider-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
