//! The workspace item index: what the semantic rules reason over.
//!
//! Built in one pass over every file's token stream (`crate::tokens`),
//! the index records:
//!
//! * **Types** — every `struct`/`enum` with its name, generic
//!   parameters, `#[derive(..)]` list, named fields (name + type text +
//!   the identifiers inside the type, for reachability edges), and the
//!   type identifiers inside tuple-struct / enum-variant payloads.
//! * **Impl blocks** — `impl [Trait for] Type`, with the identifier set
//!   of the whole body and of each top-level `fn` inside it. The
//!   `snapshot-completeness` rule uses these to decide whether a
//!   hand-written `Clone` (possibly delegating to a named method like
//!   `World::snapshot`) covers every field.
//! * **Stream derivations** — every `.stream(..)` / `.stream_indexed(..)`
//!   call site with its label (when literal), receiver expression text,
//!   and enclosing function, for the `stream-label` aliasing rule.
//!
//! The parser is deliberately tolerant: it is a linear token walk with
//! balanced-bracket sub-consumption, not a grammar. Anything it cannot
//! parse it skips — a lint pass must degrade to fewer findings, never
//! to a crash — and `tests/item_index.rs` pins the inventory it
//! extracts from a known fixture tree so silent weakening fails loudly.

use crate::tokens::{tokenize, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// A named field of a struct (or struct-variant).
#[derive(Debug, Clone)]
pub struct FieldInfo {
    pub name: String,
    /// Compact render of the field's type, e.g. `Option<CaptureWriter>`.
    pub ty: String,
    /// Identifiers appearing in the type (excluding those after `dyn`),
    /// the raw material for reachability edges.
    pub ty_idents: Vec<String>,
    /// 0-based line of the field name.
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    Struct,
    Enum,
}

/// One `struct` or `enum` definition.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    pub name: String,
    pub kind: TypeKind,
    pub crate_name: String,
    pub file: PathBuf,
    /// 0-based line of the `struct`/`enum` keyword.
    pub line: usize,
    pub generics: Vec<String>,
    pub derives: Vec<String>,
    /// Named fields (empty for tuple/unit structs and enums).
    pub fields: Vec<FieldInfo>,
    /// Type identifiers inside tuple-struct or enum-variant payloads,
    /// with the 0-based line each appeared on.
    pub payload_idents: Vec<(String, usize)>,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait being implemented (`impl Clone for X` → `Some("Clone")`),
    /// `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Base name of the self type (`World<C>` → `World`).
    pub type_name: String,
    pub crate_name: String,
    pub file: PathBuf,
    /// 0-based line of the `impl` keyword.
    pub line: usize,
    /// Every identifier in the impl body.
    pub idents: BTreeSet<String>,
    /// Top-level functions in the body: name → identifier set of the
    /// function's own body.
    pub fns: Vec<(String, BTreeSet<String>)>,
}

/// One `.stream("…")` / `.stream_indexed("…", _)` derivation call site.
#[derive(Debug, Clone)]
pub struct StreamCall {
    pub file: PathBuf,
    /// 0-based line of the method name.
    pub line: usize,
    /// `"stream"` or `"stream_indexed"`.
    pub method: &'static str,
    /// The label when it is a string literal; `None` for computed
    /// labels (`.stream(&format!(..))`, `.stream(var)`).
    pub label: Option<String>,
    /// Compact text of the receiver expression (string literal values
    /// preserved, so `root.stream("a")` and `root.stream("b")` differ).
    pub receiver: String,
    /// Index of the enclosing function in [`FileItems::fn_spans`], or
    /// `usize::MAX` at file level.
    pub scope: usize,
}

/// Everything indexed from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub types: Vec<TypeInfo>,
    pub impls: Vec<ImplInfo>,
    pub streams: Vec<StreamCall>,
    /// `(name, start_line, end_line)` of every `fn` body, 0-based,
    /// innermost-last for nested functions/closures are not tracked.
    pub fn_spans: Vec<(String, usize, usize)>,
}

/// The aggregated workspace index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    pub types: Vec<TypeInfo>,
    pub impls: Vec<ImplInfo>,
    pub streams: Vec<StreamCall>,
    /// name → indexes into `types`.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl ItemIndex {
    /// Build the index from `(workspace-relative path, file items)`.
    pub fn from_files(files: impl IntoIterator<Item = FileItems>) -> ItemIndex {
        let mut ix = ItemIndex::default();
        for fi in files {
            for t in fi.types {
                ix.by_name
                    .entry(t.name.clone())
                    .or_default()
                    .push(ix.types.len());
                ix.types.push(t);
            }
            ix.impls.extend(fi.impls);
            ix.streams.extend(fi.streams);
        }
        ix
    }

    /// Convenience for tests and external tooling: parse + aggregate a
    /// set of in-memory sources.
    pub fn build_from_sources(files: &[(PathBuf, String)]) -> ItemIndex {
        ItemIndex::from_files(files.iter().map(|(rel, src)| {
            let ft = tokenize(src);
            let in_test = crate::test_regions(&ft.code_lines);
            parse_file(rel, &crate::crate_of(rel), &ft.toks, &in_test)
        }))
    }

    /// Resolve a type identifier to candidate definitions: same-crate
    /// matches win; otherwise every non-test definition of that name.
    pub fn resolve(&self, ident: &str, from_crate: &str) -> Vec<&TypeInfo> {
        let Some(idxs) = self.by_name.get(ident) else {
            return Vec::new();
        };
        let all: Vec<&TypeInfo> = idxs
            .iter()
            .map(|&i| &self.types[i])
            .filter(|t| !t.in_test)
            .collect();
        let local: Vec<&TypeInfo> = all
            .iter()
            .copied()
            .filter(|t| t.crate_name == from_crate)
            .collect();
        if local.is_empty() {
            all
        } else {
            local
        }
    }

    /// Is `name` Clone-covered: `#[derive(.., Clone, ..)]` on the
    /// definition, or an `impl Clone for name` anywhere in the
    /// workspace?
    pub fn clone_covered(&self, t: &TypeInfo) -> bool {
        t.derives.iter().any(|d| d == "Clone") || self.clone_impl_of(t).is_some()
    }

    /// The `impl Clone for T` block, if hand-written.
    pub fn clone_impl_of(&self, t: &TypeInfo) -> Option<&ImplInfo> {
        self.impls
            .iter()
            .find(|im| im.trait_name.as_deref() == Some("Clone") && im.type_name == t.name)
    }

    /// Inherent impl blocks of `t` (same base name; same crate wins the
    /// tie the same way `resolve` does).
    pub fn inherent_impls_of(&self, t: &TypeInfo) -> Vec<&ImplInfo> {
        self.impls
            .iter()
            .filter(|im| im.trait_name.is_none() && im.type_name == t.name)
            .collect()
    }
}

/// Compact-join a token range: identifier-like neighbours get one
/// space, string/char literals render blank (type positions have none).
fn compact(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let rendered: String = match t.kind {
            TokKind::Str => "\"\"".into(),
            TokKind::Char => "''".into(),
            _ => t.text.clone(),
        };
        let prev = out
            .chars()
            .next_back()
            .is_some_and(crate::tokens::is_ident_char);
        let next = rendered
            .chars()
            .next()
            .is_some_and(crate::tokens::is_ident_char);
        if prev && next {
            out.push(' ');
        }
        out.push_str(&rendered);
    }
    out
}

/// Like [`compact`], but string literal bodies are preserved — used for
/// receiver expressions, where the label inside a chained
/// `.stream("x")` distinguishes receivers.
fn compact_lossless(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let rendered = t.to_string();
        let prev = out
            .chars()
            .next_back()
            .is_some_and(crate::tokens::is_ident_char);
        let next = rendered
            .chars()
            .next()
            .is_some_and(crate::tokens::is_ident_char);
        if prev && next {
            out.push(' ');
        }
        out.push_str(&rendered);
    }
    out
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_kw(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Consume a balanced bracket group; `i` points at the opening token.
/// Returns the index just past the matching closer (or `toks.len()`).
fn consume_group(toks: &[Tok], i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        if is_punct(&toks[j], open) {
            depth += 1;
        } else if is_punct(&toks[j], close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Consume a generic parameter/argument list; `i` points at `<`.
/// Returns `(declared parameter names, index past the closing >)`.
/// A `>` preceded by `-` is the arrow of a fn type, not a closer.
fn consume_angles(toks: &[Tok], i: usize) -> (Vec<String>, usize) {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, "<") {
            depth += 1;
            // A parameter name directly follows `<` or a `,` at depth 1.
            if depth == 1 {
                if let Some(p) = param_at(toks, j + 1) {
                    params.push(p);
                }
            }
        } else if is_punct(t, ">") && !(j > 0 && is_punct(&toks[j - 1], "-")) {
            depth -= 1;
            if depth == 0 {
                return (params, j + 1);
            }
        } else if is_punct(t, ",") && depth == 1 {
            if let Some(p) = param_at(toks, j + 1) {
                params.push(p);
            }
        }
        j += 1;
    }
    (params, toks.len())
}

/// The parameter name starting at `i` in a generic list: `T`, `const N`,
/// or none for a lifetime.
fn param_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    if t.kind == TokKind::Lifetime {
        return None;
    }
    if is_kw(t, "const") {
        return toks
            .get(i + 1)
            .filter(|n| n.kind == TokKind::Ident)
            .map(|n| n.text.clone());
    }
    (t.kind == TokKind::Ident).then(|| t.text.clone())
}

/// Collect type identifiers from a type-position token range, skipping
/// the identifier immediately after `dyn` (trait objects are cloned via
/// their own machinery, e.g. `clone_box`) and after `as` / `impl`.
fn type_idents_of(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for t in toks {
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "dyn" | "as" | "impl") {
                skip_next = true;
                continue;
            }
            if skip_next {
                skip_next = false;
                continue;
            }
            out.push(t.text.clone());
        }
    }
    out
}

/// Parse one file's token stream into its item inventory. `in_test`
/// flags each 0-based line inside a `#[cfg(test)]` region.
pub fn parse_file(rel: &Path, crate_name: &str, toks: &[Tok], in_test: &[bool]) -> FileItems {
    let mut items = FileItems::default();
    let test_at = |line: usize| -> bool { in_test.get(line).copied().unwrap_or(false) };

    // ---- Pass 1: fn spans (for stream-call scoping). ----
    {
        let mut depth = 0i64;
        let mut pending: Option<String> = None;
        // (name, start_line, entry depth)
        let mut stack: Vec<(String, usize, i64)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if is_kw(t, "fn") {
                if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending = Some(n.text.clone());
                }
            } else if is_punct(t, ";") {
                // Trait method declaration without a body.
                pending = None;
            } else if is_punct(t, "{") {
                if let Some(name) = pending.take() {
                    stack.push((name, t.line, depth));
                }
                depth += 1;
            } else if is_punct(t, "}") {
                depth -= 1;
                if stack.last().is_some_and(|&(_, _, d)| d == depth) {
                    let (name, start, _) = stack.pop().unwrap();
                    items.fn_spans.push((name, start, t.line));
                }
            }
            i += 1;
        }
        // Unclosed bodies (mid-edit file): close at EOF.
        let eof = toks.last().map(|t| t.line).unwrap_or(0);
        while let Some((name, start, _)) = stack.pop() {
            items.fn_spans.push((name, start, eof));
        }
        items.fn_spans.sort();
    }

    let enclosing_fn = |line: usize| -> usize {
        // Innermost = smallest span containing the line.
        let mut best: Option<(usize, usize)> = None; // (width, idx)
        for (idx, (_, s, e)) in items.fn_spans.iter().enumerate() {
            if *s <= line && line <= *e {
                let w = e - s;
                if best.is_none_or(|(bw, _)| w < bw) {
                    best = Some((w, idx));
                }
            }
        }
        best.map(|(_, idx)| idx).unwrap_or(usize::MAX)
    };

    // ---- Pass 2: types, impls, stream calls. ----
    let mut pending_derives: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // Attribute: harvest derives, keep adjacency through `pub` etc.
        if is_punct(t, "#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|u| is_punct(u, "!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|u| is_punct(u, "[")) {
                let end = consume_group(toks, j, "[", "]");
                let attr = &toks[j..end];
                if attr.iter().any(|a| is_kw(a, "derive")) {
                    pending_derives.extend(
                        attr.iter()
                            .skip(2) // `[` `derive`
                            .filter(|a| a.kind == TokKind::Ident)
                            .map(|a| a.text.clone()),
                    );
                }
                i = end;
                continue;
            }
        }
        if is_kw(t, "struct") || is_kw(t, "enum") {
            let kind = if t.text == "struct" {
                TypeKind::Struct
            } else {
                TypeKind::Enum
            };
            if let Some((ty, next)) = parse_type_def(
                toks,
                i,
                kind,
                rel,
                crate_name,
                std::mem::take(&mut pending_derives),
                test_at(t.line),
            ) {
                items.types.push(ty);
                i = next;
                continue;
            }
            pending_derives.clear();
        } else if is_kw(t, "impl") {
            if let Some((im, body_open)) = parse_impl_header(toks, i, rel, crate_name) {
                items.impls.push(im);
                // Walk *into* the body so nested items are indexed too.
                i = body_open + 1;
                pending_derives.clear();
                continue;
            }
        } else if t.kind == TokKind::Ident
            && (t.text == "stream" || t.text == "stream_indexed")
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|u| is_punct(u, "("))
        {
            let method: &'static str = if t.text == "stream" {
                "stream"
            } else {
                "stream_indexed"
            };
            let label = toks
                .get(i + 2)
                .filter(|u| u.kind == TokKind::Str)
                .map(|u| u.text.clone());
            let start = receiver_start(toks, i - 1);
            items.streams.push(StreamCall {
                file: rel.to_path_buf(),
                line: t.line,
                method,
                label,
                receiver: compact_lossless(&toks[start..i - 1]),
                scope: enclosing_fn(t.line),
            });
        } else if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
            pending_derives.clear();
        }
        i += 1;
    }

    items
}

/// Walk backwards from the `.` of a method call to the start of its
/// receiver expression: identifier chains, `::` paths, balanced call /
/// index groups, `&` / `?` / `!` adornments. Bounded to 40 tokens.
fn receiver_start(toks: &[Tok], dot: usize) -> usize {
    let mut start = dot;
    let mut k = dot as i64 - 1;
    let lim = dot.saturating_sub(40) as i64;
    while k >= lim {
        let t = &toks[k as usize];
        match t.kind {
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 1i64;
                k -= 1;
                while k >= 0 && depth > 0 {
                    let u = &toks[k as usize];
                    if is_punct(u, close) {
                        depth += 1;
                    } else if is_punct(u, open) {
                        depth -= 1;
                    }
                    k -= 1;
                }
                start = (k + 1) as usize;
            }
            TokKind::Ident | TokKind::Num | TokKind::Str | TokKind::Lifetime => {
                start = k as usize;
                k -= 1;
            }
            TokKind::Punct if matches!(t.text.as_str(), "." | ":" | "!" | "&" | "?") => {
                k -= 1;
            }
            _ => break,
        }
    }
    start
}

/// Parse a `struct` / `enum` definition starting at the keyword.
#[allow(clippy::too_many_arguments)]
fn parse_type_def(
    toks: &[Tok],
    kw: usize,
    kind: TypeKind,
    rel: &Path,
    crate_name: &str,
    derives: Vec<String>,
    in_test: bool,
) -> Option<(TypeInfo, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut ty = TypeInfo {
        name: name_tok.text.clone(),
        kind,
        crate_name: crate_name.to_string(),
        file: rel.to_path_buf(),
        line: toks[kw].line,
        generics: Vec::new(),
        derives,
        fields: Vec::new(),
        payload_idents: Vec::new(),
        in_test,
    };
    let mut j = kw + 2;
    if toks.get(j).is_some_and(|t| is_punct(t, "<")) {
        let (params, next) = consume_angles(toks, j);
        ty.generics = params;
        j = next;
    }
    // Skip a where-clause: scan to the body/terminator, consuming
    // angle groups so bound arrows don't confuse the search.
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, "{") || is_punct(t, ";") || is_punct(t, "(") {
            break;
        }
        if is_punct(t, "<") {
            let (_, next) = consume_angles(toks, j);
            j = next;
        } else {
            j += 1;
        }
    }
    match toks.get(j) {
        Some(t) if is_punct(t, ";") => Some((ty, j + 1)),
        Some(t) if is_punct(t, "(") => {
            // Tuple struct: payload idents from the paren group.
            let end = consume_group(toks, j, "(", ")");
            for tok in &toks[j + 1..end.saturating_sub(1)] {
                if tok.kind == TokKind::Ident
                    && !matches!(tok.text.as_str(), "pub" | "crate" | "dyn" | "super")
                    && !ty.generics.contains(&tok.text)
                {
                    ty.payload_idents.push((tok.text.clone(), tok.line));
                }
            }
            Some((ty, end))
        }
        Some(t) if is_punct(t, "{") => {
            let end = consume_group(toks, j, "{", "}");
            let body = &toks[j + 1..end.saturating_sub(1)];
            match kind {
                TypeKind::Struct => parse_named_fields(body, &mut ty),
                TypeKind::Enum => parse_enum_body(body, &mut ty),
            }
            Some((ty, end))
        }
        _ => None,
    }
}

/// Parse `name: Type, …` pairs inside a struct body (attributes and
/// visibility skipped).
fn parse_named_fields(body: &[Tok], ty: &mut TypeInfo) {
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if is_punct(t, "#") {
            let mut j = i + 1;
            if body.get(j).is_some_and(|u| is_punct(u, "[")) {
                j = consume_group(body, j, "[", "]");
            }
            i = j;
            continue;
        }
        if is_kw(t, "pub") {
            i += 1;
            if body.get(i).is_some_and(|u| is_punct(u, "(")) {
                i = consume_group(body, i, "(", ")");
            }
            continue;
        }
        if t.kind == TokKind::Ident && body.get(i + 1).is_some_and(|u| is_punct(u, ":")) {
            let name = t.text.clone();
            let line = t.line;
            // Type runs to the `,` at nesting depth 0 (or the end).
            let mut depth = 0i64;
            let mut j = i + 2;
            while j < body.len() {
                let u = &body[j];
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" if u.kind == TokKind::Punct => depth += 1,
                    ">" if u.kind == TokKind::Punct && !(j > 0 && is_punct(&body[j - 1], "-")) => {
                        depth -= 1
                    }
                    "," if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let ty_toks = &body[i + 2..j];
            let idents: Vec<String> = type_idents_of(ty_toks)
                .into_iter()
                .filter(|id| !ty.generics.contains(id))
                .collect();
            ty.fields.push(FieldInfo {
                name,
                ty: compact(ty_toks),
                ty_idents: idents,
                line,
            });
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Parse an enum body: variant payload type idents, field names and
/// discriminant expressions excluded.
fn parse_enum_body(body: &[Tok], ty: &mut TypeInfo) {
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if is_punct(t, "#") {
            let mut j = i + 1;
            if body.get(j).is_some_and(|u| is_punct(u, "[")) {
                j = consume_group(body, j, "[", "]");
            }
            i = j;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Variant name; payload follows.
            let mut j = i + 1;
            if body
                .get(j)
                .is_some_and(|u| is_punct(u, "(") || is_punct(u, "{"))
            {
                let (open, close) = if is_punct(&body[j], "(") {
                    ("(", ")")
                } else {
                    ("{", "}")
                };
                let end = consume_group(body, j, open, close);
                let payload = &body[j + 1..end.saturating_sub(1)];
                let mut skip_next = false;
                for (k, tok) in payload.iter().enumerate() {
                    if tok.kind != TokKind::Ident {
                        continue;
                    }
                    if matches!(tok.text.as_str(), "dyn" | "as" | "impl") {
                        skip_next = true;
                        continue;
                    }
                    if skip_next {
                        skip_next = false;
                        continue;
                    }
                    // A struct-variant field name: ident followed by a
                    // single `:` (not a `::` path separator).
                    let single_colon = payload.get(k + 1).is_some_and(|u| is_punct(u, ":"))
                        && !payload.get(k + 2).is_some_and(|u| is_punct(u, ":"));
                    if single_colon {
                        continue;
                    }
                    // Part of a path after `::` — keep (base segments
                    // resolve or not; harmless).
                    if ty.generics.contains(&tok.text) {
                        continue;
                    }
                    ty.payload_idents.push((tok.text.clone(), tok.line));
                }
                j = end;
            } else if body.get(j).is_some_and(|u| is_punct(u, "=")) {
                // Discriminant: skip to `,` at depth 0.
                let mut depth = 0i64;
                while j < body.len() {
                    match body[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Parse an `impl` header + body; returns the info and the index of the
/// body's opening brace.
fn parse_impl_header(
    toks: &[Tok],
    kw: usize,
    rel: &Path,
    crate_name: &str,
) -> Option<(ImplInfo, usize)> {
    let mut j = kw + 1;
    if toks.get(j).is_some_and(|t| is_punct(t, "<")) {
        let (_, next) = consume_angles(toks, j);
        j = next;
    }
    let (first_base, after_first) = consume_type_path(toks, j)?;
    let (trait_name, type_name, mut j) = if toks.get(after_first).is_some_and(|t| is_kw(t, "for")) {
        let (second_base, after_second) = consume_type_path(toks, after_first + 1)?;
        (Some(first_base), second_base, after_second)
    } else {
        (None, first_base, after_first)
    };
    // Skip where-clause to the body.
    while j < toks.len() && !is_punct(&toks[j], "{") {
        if is_punct(&toks[j], "<") {
            let (_, next) = consume_angles(toks, j);
            j = next;
        } else if is_punct(&toks[j], ";") {
            return None; // e.g. `impl Trait for X;` — not a body
        } else {
            j += 1;
        }
    }
    if j >= toks.len() {
        return None;
    }
    let body_open = j;
    let end = consume_group(toks, body_open, "{", "}");
    let body = &toks[body_open + 1..end.saturating_sub(1)];
    let idents: BTreeSet<String> = body
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    // Top-level fns of the body.
    let mut fns = Vec::new();
    let mut depth = 0i64;
    let mut k = 0;
    while k < body.len() {
        let t = &body[k];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
        } else if depth == 0 && is_kw(t, "fn") {
            if let Some(name_tok) = body.get(k + 1).filter(|u| u.kind == TokKind::Ident) {
                // Find the fn body's brace group (or `;` for decls).
                let mut m = k + 2;
                let mut sig_depth = 0i64;
                while m < body.len() {
                    let u = &body[m];
                    match u.text.as_str() {
                        "(" | "[" => sig_depth += 1,
                        ")" | "]" => sig_depth -= 1,
                        "<" if u.kind == TokKind::Punct => sig_depth += 1,
                        ">" if u.kind == TokKind::Punct
                            && !(m > 0 && is_punct(&body[m - 1], "-")) =>
                        {
                            sig_depth -= 1
                        }
                        "{" if sig_depth == 0 => break,
                        ";" if sig_depth == 0 => break,
                        _ => {}
                    }
                    m += 1;
                }
                if body.get(m).is_some_and(|u| is_punct(u, "{")) {
                    let fend = consume_group(body, m, "{", "}");
                    let fidents: BTreeSet<String> = body[m + 1..fend.saturating_sub(1)]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .collect();
                    fns.push((name_tok.text.clone(), fidents));
                    k = fend;
                    continue;
                }
            }
        }
        k += 1;
    }
    Some((
        ImplInfo {
            trait_name,
            type_name,
            crate_name: crate_name.to_string(),
            file: rel.to_path_buf(),
            line: toks[kw].line,
            idents,
            fns,
        },
        body_open,
    ))
}

/// Consume a type path (`a::b::C<D, E>`, `&'a mut X`, `Box<dyn T>`);
/// returns the base name (last plain segment before generic args) and
/// the index past the path.
fn consume_type_path(toks: &[Tok], start: usize) -> Option<(String, usize)> {
    let mut j = start;
    // Leading adornments.
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, "&") || t.kind == TokKind::Lifetime || is_kw(t, "mut") || is_kw(t, "dyn") {
            j += 1;
        } else {
            break;
        }
    }
    let mut base: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Ident && !is_kw(t, "for") && !is_kw(t, "where") {
            base = Some(t.text.clone());
            j += 1;
            // `::` continuation?
            if toks.get(j).is_some_and(|u| is_punct(u, ":"))
                && toks.get(j + 1).is_some_and(|u| is_punct(u, ":"))
            {
                j += 2;
                continue;
            }
            break;
        }
        break;
    }
    let base = base?;
    // Generic args.
    if toks.get(j).is_some_and(|t| is_punct(t, "<")) {
        let (_, next) = consume_angles(toks, j);
        j = next;
    }
    Some((base, j))
}
