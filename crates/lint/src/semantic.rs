//! The semantic rules: cross-file analyses over the item index.
//!
//! Three rules live here (catalog in DESIGN.md §11):
//!
//! * `snapshot-completeness` — walks the type graph reachable from
//!   `World` (crate `workloads`) and flags any reachable struct/enum
//!   that is not Clone-covered, plus — for types whose `Clone` is
//!   hand-written — any field the clone path never mentions. This is
//!   the static guard for the checkpoint engine's core invariant
//!   (DESIGN.md §13): a forked world is bit-identical to a cold one,
//!   which dies silently the day someone adds a field the snapshot
//!   misses.
//! * `stream-label` — two `.stream("x")` derivations with the same
//!   receiver, method and label inside one function alias the same RNG
//!   stream (the derivation is a pure function of `(root, label)`), and
//!   computed labels (`.stream(&format!(..))`) can collide at runtime
//!   in ways no reviewer can audit; both are rejected outside
//!   `simcore::rng`.
//! * `float-ord` — `partial_cmp(..).unwrap()/expect(..)` comparators
//!   and `f32`/`f64` hash/tree keys: NaN-capable ordering panics on the
//!   hot path (or worse, silently reorders); steer to `total_cmp`.

use crate::index::{FileItems, ItemIndex, TypeInfo, TypeKind};
use crate::tokens::{Tok, TokKind};
use crate::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Per-file context the semantic rules need to honour escapes.
pub(crate) trait AllowLookup {
    /// Is `rule` allowed (escaped) at 0-based `line` of `file`?
    fn allowed(&self, file: &Path, rule: Rule, line: usize) -> bool;
}

/// The root of the snapshot-completeness walk: the simulation world.
const SNAPSHOT_ROOT: (&str, &str) = ("workloads", "World");

/// Container types whose *key* position must be totally ordered; a
/// float key means NaN-capable ordering.
const KEYED_CONTAINERS: [&str; 6] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "BTreeMap",
    "BTreeSet",
];

/// snapshot-completeness: see module docs. Reports
/// * at a field/payload line when the referenced type is reachable from
///   `World` but not Clone-covered;
/// * at the root's definition line if the root itself is not cloneable;
/// * at a field line when the type's hand-written `Clone` (directly or
///   one delegation hop away, e.g. `Clone → snapshot`) never mentions
///   the field.
pub(crate) fn snapshot_completeness(
    index: &ItemIndex,
    allows: &dyn AllowLookup,
    out: &mut Vec<Violation>,
) {
    let roots: Vec<&TypeInfo> = index
        .types
        .iter()
        .filter(|t| !t.in_test && t.name == SNAPSHOT_ROOT.1 && t.crate_name == SNAPSHOT_ROOT.0)
        .collect();
    if roots.is_empty() {
        return;
    }

    let mut reported: BTreeSet<(PathBuf, usize, String)> = BTreeSet::new();
    let mut visited: BTreeSet<(PathBuf, usize)> = BTreeSet::new();
    let mut queue: Vec<&TypeInfo> = roots.clone();

    for root in &roots {
        if !index.clone_covered(root)
            && !allows.allowed(&root.file, Rule::SnapshotCompleteness, root.line)
        {
            out.push(Violation {
                file: root.file.clone(),
                line: root.line + 1,
                rule: Rule::SnapshotCompleteness,
                message: format!(
                    "`{}` is the checkpoint root but has no Clone/snapshot coverage",
                    root.name
                ),
            });
        }
    }

    while let Some(t) = queue.pop() {
        if !visited.insert((t.file.clone(), t.line)) {
            continue;
        }

        // Hand-written Clone: every named field must be mentioned by the
        // clone path (the impl body, or any inherent method the impl
        // body names — `Clone for World` delegates to `snapshot`).
        if t.kind == TypeKind::Struct && !t.derives.iter().any(|d| d == "Clone") {
            if let Some(clone_impl) = index.clone_impl_of(t) {
                let mut covered: BTreeSet<&str> =
                    clone_impl.idents.iter().map(|s| s.as_str()).collect();
                for im in index.inherent_impls_of(t) {
                    for (fname, fidents) in &im.fns {
                        if clone_impl.idents.contains(fname) {
                            covered.extend(fidents.iter().map(|s| s.as_str()));
                        }
                    }
                }
                for f in &t.fields {
                    if !covered.contains(f.name.as_str())
                        && !allows.allowed(&t.file, Rule::SnapshotCompleteness, f.line)
                    {
                        out.push(Violation {
                            file: t.file.clone(),
                            line: f.line + 1,
                            rule: Rule::SnapshotCompleteness,
                            message: format!(
                                "field `{}` of `{}` is never mentioned by its hand-written \
                                 Clone/snapshot path; forks would silently lose or reset it",
                                f.name, t.name
                            ),
                        });
                    }
                }
            }
        }

        // Edges: every type identifier in field/payload position.
        let mut edges: Vec<(&str, usize)> = Vec::new();
        for f in &t.fields {
            for id in &f.ty_idents {
                edges.push((id.as_str(), f.line));
            }
        }
        for (id, line) in &t.payload_idents {
            edges.push((id.as_str(), *line));
        }
        for (ident, line) in edges {
            for cand in index.resolve(ident, &t.crate_name) {
                if !index.clone_covered(cand) {
                    let key = (t.file.clone(), line, cand.name.clone());
                    if !reported.contains(&key)
                        && !allows.allowed(&t.file, Rule::SnapshotCompleteness, line)
                    {
                        reported.insert(key);
                        out.push(Violation {
                            file: t.file.clone(),
                            line: line + 1,
                            rule: Rule::SnapshotCompleteness,
                            message: format!(
                                "`{}` is reachable from `World` state here but `{}` has no \
                                 Clone coverage; the checkpoint engine cannot fork it",
                                cand.name, cand.name
                            ),
                        });
                    }
                }
                queue.push(cand);
            }
        }
    }
}

/// stream-label: duplicate literal labels per (function, receiver,
/// method), and computed labels anywhere outside `simcore::rng`.
pub(crate) fn stream_label(
    items: &FileItems,
    rel: &Path,
    is_rng_file: bool,
    allows: &dyn AllowLookup,
    out: &mut Vec<Violation>,
) {
    if is_rng_file {
        return;
    }
    let mut seen: BTreeMap<(usize, &str, &str, &str), usize> = BTreeMap::new();
    for call in &items.streams {
        match &call.label {
            None => {
                if !allows.allowed(rel, Rule::StreamLabel, call.line) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: call.line + 1,
                        rule: Rule::StreamLabel,
                        message: format!(
                            "`.{}(..)` with a computed label; stream labels must be string \
                             literals so aliasing is auditable (only simcore::rng derives \
                             dynamically)",
                            call.method
                        ),
                    });
                }
            }
            Some(label) => {
                let key = (
                    call.scope,
                    call.method,
                    call.receiver.as_str(),
                    label.as_str(),
                );
                match seen.get(&key) {
                    None => {
                        seen.insert(key, call.line);
                    }
                    Some(&first) => {
                        if !allows.allowed(rel, Rule::StreamLabel, call.line) {
                            out.push(Violation {
                                file: rel.to_path_buf(),
                                line: call.line + 1,
                                rule: Rule::StreamLabel,
                                message: format!(
                                    "duplicate stream label \"{label}\" on `{}` (first derived \
                                     at line {}); identical labels alias the same RNG stream \
                                     and silently couple draws",
                                    call.receiver,
                                    first + 1
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// float-ord: NaN-capable ordering. Token-level checks:
/// * `.partial_cmp(..).unwrap()` / `.expect(..)` comparator chains;
/// * `f32`/`f64` in the key position of a keyed container.
pub(crate) fn float_ord(
    toks: &[Tok],
    rel: &Path,
    allows: &dyn AllowLookup,
    out: &mut Vec<Violation>,
) {
    let is_punct = |t: &Tok, s: &str| t.kind == TokKind::Punct && t.text == s;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "partial_cmp"
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|u| is_punct(u, "("))
        {
            // Find the matching close paren, then look for `.unwrap()` /
            // `.expect(..)`.
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < toks.len() {
                if is_punct(&toks[j], "(") {
                    depth += 1;
                } else if is_punct(&toks[j], ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let chained_panic = toks.get(j + 1).is_some_and(|u| is_punct(u, "."))
                && toks
                    .get(j + 2)
                    .is_some_and(|u| u.text == "unwrap" || u.text == "expect");
            if chained_panic && !allows.allowed(rel, Rule::FloatOrd, t.line) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: t.line + 1,
                    rule: Rule::FloatOrd,
                    message: "`.partial_cmp(..).unwrap()` comparator panics on NaN; use \
                              `total_cmp` for float sort keys"
                        .to_string(),
                });
            }
        }
        if KEYED_CONTAINERS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|u| is_punct(u, "<"))
            && toks
                .get(i + 2)
                .is_some_and(|u| u.text == "f32" || u.text == "f64")
            && !allows.allowed(rel, Rule::FloatOrd, t.line)
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: t.line + 1,
                rule: Rule::FloatOrd,
                message: format!(
                    "`{}<{}, ..>` keys on a float; NaN-capable keys break ordering/lookup — \
                     key on integers (e.g. bit patterns or scaled ints) instead",
                    t.text,
                    toks[i + 2].text
                ),
            });
        }
    }
}
