//! `spider-lint` — the workspace's determinism / sans-IO semantic
//! analysis engine.
//!
//! Everything this repository claims rests on one property: a `World`
//! run is a pure function of `(config, seed)`, and a *forked* world is
//! bit-identical to a cold one (DESIGN.md §13). One stray
//! `SystemTime::now()`, one `std::collections::HashMap` iterated with
//! its per-process `RandomState`, one field added to the cloned state
//! tree but missed by `World::snapshot`, and reproducibility silently
//! dies. rustc and clippy cannot express these project rules, so this
//! crate enforces them — with no external dependencies (the workspace
//! builds offline: no `syn`, no registry access).
//!
//! # Architecture
//!
//! * [`tokens`] — a hand-rolled Rust tokenizer (comments, nested block
//!   comments, string/char/raw literals carried across lines). Its
//!   per-line compact render drives the nine *line rules*; carrying
//!   literal state across newlines kills the old line-scanner's
//!   false-positive class where rule tokens inside multi-line strings
//!   fired as code.
//! * [`index`] — a workspace item index built from the token streams:
//!   structs with fields and derives, impl blocks with per-fn
//!   identifier sets, and `stream(..)` derivation call-sites.
//! * `semantic` — three cross-file rules over the index:
//!   `snapshot-completeness`, `stream-label`, `float-ord`.
//!
//! # Rule catalog
//!
//! | id             | rule |
//! |----------------|------|
//! | `wall-clock`   | no `Instant::now` / `SystemTime` / `thread_rng` / `rand::random` / `std::time` in simulation code |
//! | `env-var`      | no `std::env` reads outside `simcore::sweep` and the bench harness |
//! | `default-hash` | no `std::collections::HashMap`/`HashSet` with the default `RandomState`; use `FxHashMap`/`FxHashSet` or `BTreeMap` |
//! | `hash-iter`    | no unordered hash-map iteration feeding output/aggregation in `bench`/`workloads` unless sorted within two lines |
//! | `thread`       | no `std::thread` / channels outside `simcore::sweep` |
//! | `sans-io`      | no `println!`/`eprintln!`/file I/O in library crates (bins, examples, benches and `#[cfg(test)]` are exempt) |
//! | `forbid-unsafe`| every crate root must carry `#![forbid(unsafe_code)]` |
//! | `clone-nondet` | no `Clone` (derived or hand-written) on a type whose body carries a `lint:allow`-escaped determinism violation — the checkpoint engine (DESIGN.md §13) deep-clones worlds, and forking escaped nondeterministic state silently breaks fork/resume bit-identity |
//! | `rng-derivation` | no hand-cooked `SimRng::new(..)` seeds (XOR/splitmix/FNV arithmetic) outside `simcore::rng` — a cooked seed bypasses the recorded derivation chain that `rebase_seed` replays |
//! | `snapshot-completeness` | every struct/enum reachable from `World` state must be Clone-covered, and a hand-written Clone/snapshot path must mention every field — the static guard for fork/resume bit-identity |
//! | `stream-label` | no duplicate `stream("…")` labels per (function, receiver) — identical labels alias the same RNG stream — and no computed labels outside `simcore::rng` |
//! | `float-ord`    | no `partial_cmp(..).unwrap()` comparators or `f32`/`f64` container keys; NaN-capable ordering panics or silently reorders — use `total_cmp` |
//!
//! # Escapes
//!
//! A violation that is deliberate is allow-listed in the source:
//!
//! * `// lint:allow(rule)` on the offending line silences that rule
//!   there; on a comment line of its own, it silences the rule for the
//!   whole statement that follows (all continuation lines of a
//!   multi-line expression, until the statement terminates);
//! * `// lint:allow-file(rule)` anywhere in a file silences the rule
//!   for the whole file (used e.g. by the capture subsystem, whose
//!   entire purpose is file I/O).
//!
//! Every escape should carry a justification in the surrounding
//! comment; reviewers treat a bare allow as a bug.

#![forbid(unsafe_code)]

pub mod index;
mod semantic;
pub mod tokens;

use crate::index::{parse_file, FileItems, ItemIndex};
use crate::tokens::{find_tok, tokenize, FileTokens};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Wall-clock or ambient randomness in simulation code.
    WallClock,
    /// Environment reads outside the sweep runner / bench harness.
    EnvVar,
    /// `std` hash containers with the nondeterministic default hasher.
    DefaultHash,
    /// Unordered hash-map iteration feeding aggregation.
    HashIter,
    /// Threads or channels outside `simcore::sweep`.
    Thread,
    /// I/O from library code.
    SansIo,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    ForbidUnsafe,
    /// `Clone` on a type holding `lint:allow`-escaped nondeterministic
    /// state (checkpoint-engine hazard).
    CloneNondet,
    /// Hand-cooked `SimRng` seeds outside `simcore::rng` (seed-rebase
    /// hazard: the derivation chain cannot replay arithmetic it never
    /// saw).
    RngDerivation,
    /// A type reachable from `World` state without Clone coverage, or a
    /// field missed by a hand-written Clone/snapshot path
    /// (checkpoint-engine hazard: forks silently diverge).
    SnapshotCompleteness,
    /// Duplicate or computed RNG stream labels (stream aliasing
    /// silently couples draws).
    StreamLabel,
    /// NaN-capable float ordering (`partial_cmp(..).unwrap()`, float
    /// container keys) on paths that need a total order.
    FloatOrd,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::WallClock,
        Rule::EnvVar,
        Rule::DefaultHash,
        Rule::HashIter,
        Rule::Thread,
        Rule::SansIo,
        Rule::ForbidUnsafe,
        Rule::CloneNondet,
        Rule::RngDerivation,
        Rule::SnapshotCompleteness,
        Rule::StreamLabel,
        Rule::FloatOrd,
    ];

    /// The identifier used in `lint:allow(...)` comments and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::EnvVar => "env-var",
            Rule::DefaultHash => "default-hash",
            Rule::HashIter => "hash-iter",
            Rule::Thread => "thread",
            Rule::SansIo => "sans-io",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::CloneNondet => "clone-nondet",
            Rule::RngDerivation => "rng-derivation",
            Rule::SnapshotCompleteness => "snapshot-completeness",
            Rule::StreamLabel => "stream-label",
            Rule::FloatOrd => "float-ord",
        }
    }

    fn order(self) -> usize {
        Rule::ALL
            .iter()
            .position(|r| *r == self)
            .unwrap_or(usize::MAX)
    }
}

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What was matched.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Machine-readable report: byte-deterministic JSON (ordered keys,
/// sorted violations) for `spider-lint --json` and CI annotation.
pub fn violations_json(violations: &[Violation]) -> spider_simcore::json::Json {
    use spider_simcore::json::Json;
    Json::obj([
        ("version", Json::UInt(1)),
        (
            "violations",
            Json::arr(violations.iter().map(|v| {
                Json::obj([
                    (
                        "file",
                        Json::str(v.file.to_string_lossy().replace('\\', "/")),
                    ),
                    ("line", Json::UInt(v.line as u64)),
                    ("rule", Json::str(v.rule.id())),
                    ("message", Json::str(v.message.clone())),
                ])
            })),
        ),
        ("count", Json::UInt(violations.len() as u64)),
    ])
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Library source (`crates/*/src/**`, workspace `src/**`).
    Lib,
    /// Binary-adjacent source: `src/bin/**`, `main.rs`, examples,
    /// benches. Allowed to print, read the environment and time itself.
    Bin,
    /// Integration tests (`tests/**`). Allowed to do I/O, but still
    /// held to the determinism rules.
    Test,
}

/// Per-file scan context derived from its workspace-relative path.
#[derive(Debug, Clone)]
struct FileCtx {
    rel: PathBuf,
    crate_name: String,
    kind: FileKind,
}

/// Crates whose *library* code is exempt from the sans-IO and
/// environment rules: the bench harness exists to time things, print
/// tables and write CSVs, and this linter exists to read source trees.
const IO_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// The one file allowed to read `SPIDER_JOBS` and spawn threads: the
/// parallel sweep runner (DESIGN.md §10).
const SWEEP_FILE: &str = "crates/simcore/src/sweep.rs";

/// The one file allowed to do seed arithmetic and dynamic stream
/// derivation: the RNG itself, which records every derivation step so
/// `rebase_seed` can replay it (DESIGN.md §13).
const RNG_FILE: &str = "crates/simcore/src/rng.rs";

/// Crates whose hash-map iteration feeds output/aggregation paths and
/// is therefore checked by `hash-iter`.
const HASH_ITER_CRATES: &[&str] = &["bench", "workloads"];

/// The crate name a workspace-relative path belongs to.
pub(crate) fn crate_of(rel: &Path) -> String {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        String::from("(workspace)")
    }
}

fn classify(rel: &Path) -> FileCtx {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    let crate_name = crate_of(rel);
    let file_name = parts.last().copied().unwrap_or("");
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"bin")
        || parts.contains(&"examples")
        || parts.contains(&"benches")
        || file_name == "main.rs"
        || file_name == "build.rs"
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileCtx {
        rel: rel.to_path_buf(),
        crate_name,
        kind,
    }
}

/// Parse `lint:allow(<rules>)` / `lint:allow-file(<rules>)` markers out
/// of comment text.
fn parse_allows(comment: &str, file_wide: &mut Vec<Rule>, here: &mut Vec<Rule>) {
    for (marker, sink) in [
        ("lint:allow-file(", &mut *file_wide),
        ("lint:allow(", &mut *here),
    ] {
        let mut rest = comment;
        while let Some(pos) = rest.find(marker) {
            let tail = &rest[pos + marker.len()..];
            if let Some(close) = tail.find(')') {
                for name in tail[..close].split(',') {
                    let name = name.trim();
                    if let Some(rule) = Rule::ALL.iter().find(|r| r.id() == name) {
                        sink.push(*rule);
                    }
                }
                rest = &tail[close..];
            } else {
                break;
            }
        }
    }
}

/// Identifier characters, for receiver extraction.
fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier immediately preceding byte offset `pos` in `line`.
fn ident_before(line: &str, pos: usize) -> Option<&str> {
    let head = &line[..pos];
    let start = head
        .rfind(|c: char| !is_ident(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let id = &head[start..];
    (!id.is_empty() && !id.chars().next().unwrap().is_ascii_digit()).then_some(id)
}

/// 0-based line of the statement's last line, starting from `start`:
/// continues while parens/brackets are open, the line ends in a binary
/// operator or other continuation, or the next code line begins with a
/// method-chain `.`. Bounded to 50 lines.
fn statement_end(code_lines: &[String], start: usize) -> usize {
    let mut depth = 0i64;
    let cap = (start + 50).min(code_lines.len());
    let mut last = start;
    for k in start..cap {
        last = k;
        let code = code_lines[k].trim_end();
        for c in code.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                _ => {}
            }
        }
        if depth > 0 {
            continue;
        }
        let cont = matches!(
            code.chars().next_back(),
            Some('.' | '=' | '&' | '|' | '+' | '-' | '*' | '/' | '<' | '>' | '?' | ':')
        );
        if cont {
            continue;
        }
        // Method chains break *before* the dot: peek the next code line.
        let chain_continues = code_lines[k + 1..cap]
            .iter()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.trim_start().starts_with('.') || l.trim_start().starts_with("?."));
        if chain_continues {
            continue;
        }
        return k;
    }
    last
}

/// Fully prepared per-file scan state.
struct ScannedFile {
    ctx: FileCtx,
    ft: FileTokens,
    items: FileItems,
    line_allows: Vec<Vec<Rule>>,
    file_allows: Vec<Rule>,
    in_test_region: Vec<bool>,
}

impl ScannedFile {
    fn allowed(&self, rule: Rule, line: usize) -> bool {
        self.file_allows.contains(&rule)
            || self
                .line_allows
                .get(line)
                .is_some_and(|a| a.contains(&rule))
    }
}

impl semantic::AllowLookup for ScannedFile {
    fn allowed(&self, _file: &Path, rule: Rule, line: usize) -> bool {
        ScannedFile::allowed(self, rule, line)
    }
}

/// Allow lookup across a whole scanned set, keyed by path.
struct TreeAllows<'a>(BTreeMap<&'a Path, &'a ScannedFile>);

impl semantic::AllowLookup for TreeAllows<'_> {
    fn allowed(&self, file: &Path, rule: Rule, line: usize) -> bool {
        self.0.get(file).is_some_and(|sf| sf.allowed(rule, line))
    }
}

/// `#[cfg(test)]` regions by brace depth over the compact code lines.
pub(crate) fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test_region = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_entry: Option<i64> = None;
    for (i, code) in code_lines.iter().enumerate() {
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_attr = true;
        }
        let before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if pending_attr && depth > before {
            region_entry = Some(before);
            pending_attr = false;
        }
        if let Some(entry) = region_entry {
            in_test_region[i] = true;
            if depth <= entry {
                region_entry = None;
            }
        }
    }
    in_test_region
}

fn prepare(rel: &Path, source: &str) -> ScannedFile {
    let ctx = classify(rel);
    let ft = tokenize(source);
    let n = ft.code_lines.len();
    let mut line_allows: Vec<Vec<Rule>> = vec![Vec::new(); n];
    let mut file_allows: Vec<Rule> = Vec::new();
    for (i, comment) in ft.comment_lines.iter().enumerate() {
        let mut here = Vec::new();
        parse_allows(comment, &mut file_allows, &mut here);
        if here.is_empty() {
            continue;
        }
        if ft.code_lines[i].trim().is_empty() {
            // A standalone allow comment covers the whole statement
            // that follows — including continuation lines of a
            // multi-line expression.
            if let Some(first) = (i + 1..n).find(|&k| !ft.code_lines[k].trim().is_empty()) {
                let end = statement_end(&ft.code_lines, first);
                for slot in line_allows.iter_mut().take(end + 1).skip(first) {
                    slot.extend(here.iter().copied());
                }
            }
        } else {
            line_allows[i].extend(here);
        }
    }
    let in_test_region = test_regions(&ft.code_lines);
    let items = parse_file(rel, &ctx.crate_name, &ft.toks, &in_test_region);
    ScannedFile {
        ctx,
        ft,
        items,
        line_allows,
        file_allows,
        in_test_region,
    }
}

/// Collect identifiers declared as hash maps/sets in this file: struct
/// fields and typed bindings (`name: FxHashMap<...>`) plus
/// default-constructed locals (`let [mut] name = FxHashMap::default()`).
fn collect_map_idents(code_lines: &[String]) -> Vec<String> {
    const TYPES: [&str; 4] = ["FxHashMap<", "FxHashSet<", "HashMap<", "HashSet<"];
    const CTORS: [&str; 4] = [
        "FxHashMap::default()",
        "FxHashSet::default()",
        "HashMap::new()",
        "HashSet::new()",
    ];
    let mut idents: Vec<String> = Vec::new();
    for line in code_lines {
        for ty in TYPES {
            for (pos, _) in line.match_indices(ty) {
                // `name: Type<...>` — walk back over the colon.
                let head = line[..pos].trim_end();
                if let Some(head) = head.strip_suffix(':') {
                    if let Some(id) = ident_before(head, head.len()) {
                        idents.push(id.to_string());
                    }
                }
            }
        }
        for ctor in CTORS {
            if let Some(pos) = line.find(ctor) {
                // `let [mut] name = Ctor` / `name = Ctor`.
                let head = line[..pos].trim_end();
                if let Some(head) = head.strip_suffix('=') {
                    if let Some(id) = ident_before(head.trim_end(), head.trim_end().len()) {
                        idents.push(id.to_string());
                    }
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Token lists per rule. A single match reports once per line per rule.
const WALL_CLOCK_TOKENS: [&str; 5] = [
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "rand::random",
    "std::time::",
];
const ENV_TOKENS: [&str; 2] = ["std::env", "env::var"];
const DEFAULT_HASH_TOKENS: [&str; 4] = [
    "std::collections::HashMap",
    "std::collections::HashSet",
    "HashMap::new()",
    "HashSet::new()",
];
const THREAD_TOKENS: [&str; 3] = ["std::thread", "thread::spawn", "mpsc"];
const SANS_IO_TOKENS: [&str; 10] = [
    "println!",
    "eprintln!",
    "print!(",
    "eprint!(",
    "dbg!(",
    "std::fs",
    "File::create",
    "File::open",
    "OpenOptions",
    "io::stdout",
];
const HASH_ITER_METHODS: [&str; 5] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
];

/// Run every per-file rule over one prepared file.
fn scan_file(sf: &ScannedFile, out: &mut Vec<Violation>) {
    let ctx = &sf.ctx;
    let code_lines = &sf.ft.code_lines;
    let in_test_region = &sf.in_test_region;

    let map_idents = if HASH_ITER_CRATES.contains(&ctx.crate_name.as_str()) {
        collect_map_idents(code_lines)
    } else {
        Vec::new()
    };

    let allowed = |rule: Rule, i: usize| -> bool { sf.allowed(rule, i) };
    let mut report = |rule: Rule, i: usize, msg: String| {
        out.push(Violation {
            file: ctx.rel.clone(),
            line: i + 1,
            rule,
            message: msg,
        });
    };

    let io_exempt_crate = IO_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());
    let rel_slash = ctx.rel.to_string_lossy().replace('\\', "/");
    let is_sweep = rel_slash == SWEEP_FILE;
    let is_rng = rel_slash == RNG_FILE;

    for (i, code) in code_lines.iter().enumerate() {
        let test_here = ctx.kind == FileKind::Test || in_test_region[i];

        // wall-clock: simulation code (lib + tests) must not read time
        // or ambient randomness. Bins/examples/benches time themselves.
        if ctx.kind != FileKind::Bin && !io_exempt_crate && !allowed(Rule::WallClock, i) {
            if let Some(tok) = WALL_CLOCK_TOKENS.iter().find(|t| find_tok(code, t)) {
                report(Rule::WallClock, i, format!("`{tok}` in simulation code"));
            }
        }

        // env-var: only the sweep runner and the bench/lint harnesses
        // may consult the environment.
        if ctx.kind != FileKind::Bin
            && !io_exempt_crate
            && !is_sweep
            && !test_here
            && !allowed(Rule::EnvVar, i)
        {
            if let Some(tok) = ENV_TOKENS.iter().find(|t| find_tok(code, t)) {
                report(Rule::EnvVar, i, format!("`{tok}` outside sweep/bench"));
            }
        }

        // default-hash: library code must not build RandomState maps.
        // The path check also catches brace imports
        // (`use std::collections::{HashMap, ...}`).
        if ctx.kind == FileKind::Lib && !test_here && !allowed(Rule::DefaultHash, i) {
            let brace_import = find_tok(code, "std::collections::")
                && (find_tok(code, "HashMap") || find_tok(code, "HashSet"));
            if let Some(tok) = DEFAULT_HASH_TOKENS
                .iter()
                .find(|t| find_tok(code, t))
                .or(brace_import.then_some(&"std::collections::{Hash..}"))
            {
                report(
                    Rule::DefaultHash,
                    i,
                    format!("`{tok}` has a per-process RandomState; use FxHashMap/FxHashSet or BTreeMap"),
                );
            }
        }

        // thread: only the sweep runner may spawn or channel.
        if !is_sweep && !allowed(Rule::Thread, i) {
            if let Some(tok) = THREAD_TOKENS.iter().find(|t| find_tok(code, t)) {
                report(Rule::Thread, i, format!("`{tok}` outside simcore::sweep"));
            }
        }

        // sans-io: library code performs no I/O.
        if ctx.kind == FileKind::Lib && !test_here && !io_exempt_crate && !allowed(Rule::SansIo, i)
        {
            if let Some(tok) = SANS_IO_TOKENS.iter().find(|t| find_tok(code, t)) {
                report(Rule::SansIo, i, format!("`{tok}` in library code"));
            }
        }

        // hash-iter: unordered iteration over a known hash container in
        // an aggregation crate, with no sort in sight. Applies to the
        // experiment binaries too — they are where CSV rows are emitted.
        if ctx.kind != FileKind::Test
            && !test_here
            && !map_idents.is_empty()
            && !allowed(Rule::HashIter, i)
        {
            for m in HASH_ITER_METHODS {
                for (pos, _) in code.match_indices(m) {
                    if let Some(id) = ident_before(code, pos) {
                        if map_idents.iter().any(|mi| mi == id) {
                            // A sort within the next few lines makes the
                            // walk order canonical before anything
                            // observable happens.
                            let sorted_nearby = (i..(i + 5).min(code_lines.len()))
                                .any(|j| code_lines[j].contains("sort"));
                            if !sorted_nearby {
                                report(
                                    Rule::HashIter,
                                    i,
                                    format!(
                                        "unordered iteration `{id}{m}` feeds aggregation; sort the keys or lint:allow with a commutativity argument"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }

        // rng-derivation: every stream handed to the simulator must be
        // derived through the recorded API (`stream`/`stream_indexed`),
        // never by cooking a root seed with ad-hoc arithmetic. A cooked
        // seed bypasses the derivation chain that `World::rebase_seed`
        // replays (DESIGN.md §13), so the stream silently keeps its old
        // seed after a rebase. Only `simcore::rng` itself mixes seeds.
        if !is_rng && !allowed(Rule::RngDerivation, i) {
            for (pos, _) in code.match_indices("SimRng::new(") {
                let tail = &code[pos + "SimRng::new(".len()..];
                // Take the argument up to the matching close paren (or
                // the rest of the line if the call spans lines).
                let mut depth = 1i32;
                let mut end = tail.len();
                for (j, c) in tail.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let arg = &tail[..end];
                const COOKED_SEED_TOKENS: [&str; 4] = ["^", "splitmix64", "fnv1a", "wrapping_"];
                if let Some(tok) = COOKED_SEED_TOKENS.iter().find(|t| arg.contains(*t)) {
                    report(
                        Rule::RngDerivation,
                        i,
                        format!(
                            "`SimRng::new(..{tok}..)` cooks a seed by hand; derive the stream \
                             via `stream`/`stream_indexed` so `rebase_seed` can replay it"
                        ),
                    );
                }
            }
        }
    }

    // clone-nondet: a type whose definition body carries a `lint:allow`
    // escape for one of the determinism rules must not be cloneable.
    // The checkpoint engine (DESIGN.md §13) deep-clones live worlds to
    // fork them; state that had to be escaped from the determinism
    // rules would be silently duplicated into every fork, and
    // fork/resume bit-identity dies in a place no other rule watches.
    // Line-level escapes only: `lint:allow-file` marks a whole file
    // whose *purpose* is the exception (e.g. the hashing shim), not a
    // pocket of nondeterministic state smuggled into simulation types.
    if ctx.kind == FileKind::Lib {
        const NONDET_RULES: [Rule; 4] = [
            Rule::WallClock,
            Rule::EnvVar,
            Rule::DefaultHash,
            Rule::Thread,
        ];
        let contains_word = |line: &str, word: &str| -> bool {
            line.match_indices(word).any(|(pos, _)| {
                line[..pos].chars().next_back().is_none_or(|c| !is_ident(c))
                    && line[pos + word.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !is_ident(c))
            })
        };
        for ty in &sf.items.types {
            if sf.in_test_region.get(ty.line).copied().unwrap_or(false) {
                continue;
            }
            let end = ty
                .fields
                .iter()
                .map(|f| f.line)
                .chain(ty.payload_idents.iter().map(|(_, l)| *l))
                .max()
                .unwrap_or(ty.line)
                + 1;
            let tainted = (ty.line..=end.min(code_lines.len().saturating_sub(1)))
                .any(|i| NONDET_RULES.iter().any(|r| sf.line_allows[i].contains(r)));
            if !tainted {
                continue;
            }
            if ty.derives.iter().any(|d| d == "Clone") {
                // `#[derive(.., Clone, ..)]` in the attribute block
                // above the definition.
                let derive_line = (0..ty.line)
                    .rev()
                    .take_while(|&j| {
                        let l = code_lines[j].trim_start();
                        l.starts_with('#') || l.is_empty()
                    })
                    .find(|&j| {
                        code_lines[j].contains("derive") && contains_word(&code_lines[j], "Clone")
                    });
                let at = derive_line.unwrap_or(ty.line);
                if !allowed(Rule::CloneNondet, at) {
                    report(
                        Rule::CloneNondet,
                        at,
                        format!(
                            "`{}` is Clone but its body carries a lint:allow-escaped \
                             determinism violation; the checkpoint engine would fork that state",
                            ty.name
                        ),
                    );
                }
            } else if let Some(at) = sf
                .items
                .impls
                .iter()
                .find(|im| im.trait_name.as_deref() == Some("Clone") && im.type_name == ty.name)
                .map(|im| im.line)
            {
                if !allowed(Rule::CloneNondet, at) {
                    report(
                        Rule::CloneNondet,
                        at,
                        format!(
                            "`{}` is Clone but its body carries a lint:allow-escaped \
                             determinism violation; the checkpoint engine would fork that state",
                            ty.name
                        ),
                    );
                }
            }
        }
    }

    // forbid-unsafe: crate roots must carry the attribute.
    let is_crate_root = {
        let parts: Vec<&str> = ctx
            .rel
            .components()
            .map(|c| c.as_os_str().to_str().unwrap_or(""))
            .collect();
        parts.last() == Some(&"lib.rs")
            && (parts.as_slice() == ["src", "lib.rs"]
                || (parts.first() == Some(&"crates") && parts.get(2) == Some(&"src")))
    };
    // Checked against the token render so a doc comment or string
    // merely *mentioning* the attribute doesn't satisfy the rule.
    if is_crate_root
        && !sf.file_allows.contains(&Rule::ForbidUnsafe)
        && !code_lines
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"))
    {
        out.push(Violation {
            file: ctx.rel.clone(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    // Per-file semantic rules over the token stream / item inventory.
    semantic::stream_label(&sf.items, &ctx.rel, is_rng, sf, out);
    semantic::float_ord(&sf.ft.toks, &ctx.rel, sf, out);
}

/// Scan one file's contents: the per-file rules only (the cross-file
/// `snapshot-completeness` pass needs the whole tree; use
/// [`scan_sources`] / [`scan_tree`]). `rel` is the path relative to the
/// scanned root (used for classification and reporting).
pub fn scan_source(rel: &Path, source: &str, out: &mut Vec<Violation>) {
    let sf = prepare(rel, source);
    scan_file(&sf, out);
}

/// Scan a whole set of in-memory sources: every per-file rule plus the
/// cross-file semantic rules over the aggregated item index. Output is
/// sorted by (file, line, rule).
pub fn scan_sources(files: &[(PathBuf, String)]) -> Vec<Violation> {
    let scanned: Vec<ScannedFile> = files.iter().map(|(rel, src)| prepare(rel, src)).collect();
    let mut out = Vec::new();
    for sf in &scanned {
        scan_file(sf, &mut out);
    }
    // Cross-file: snapshot completeness over the aggregated index.
    let index = ItemIndex::from_files(scanned.iter().map(|sf| clone_items(&sf.items)));
    let allows = TreeAllows(
        scanned
            .iter()
            .map(|sf| (sf.ctx.rel.as_path(), sf))
            .collect(),
    );
    semantic::snapshot_completeness(&index, &allows, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule.order(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.order(),
            &b.message,
        ))
    });
    out
}

fn clone_items(items: &FileItems) -> FileItems {
    FileItems {
        types: items.types.clone(),
        impls: items.impls.clone(),
        streams: items.streams.clone(),
        fn_spans: items.fn_spans.clone(),
    }
}

/// Recursively list `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // `target` is build output; `fixtures` holds this linter's
            // own deliberately-violating test inputs.
            if name == "target" || name == "fixtures" {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan a workspace tree rooted at `root`: every `crates/*/{src,tests,
/// examples,benches}` file plus the workspace-level `src/` and `tests/`.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                rust_files(&member.join(sub), &mut files)?;
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        rust_files(&root.join(sub), &mut files)?;
    }
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    Ok(scan_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(Path::new(rel), src, &mut out);
        out
    }

    #[test]
    fn wall_clock_fires_in_lib_not_bin() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(scan_one("crates/simcore/src/x.rs", src).len(), 1);
        assert!(scan_one("crates/bench/src/bin/fig01.rs", src).is_empty());
        assert!(scan_one("crates/workloads/examples/timing.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_multiline_strings_do_not_fire() {
        // The line-scanner false-positive class the tokenizer kills: a
        // multi-line string carrying rule tokens on its later lines.
        let src = "pub fn banner() -> &'static str {\n    \"release notes:\nuses std::time::Instant::now() internally — not!\nthread::spawn here is only prose\n\"\n}\n";
        assert!(scan_one("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_io_rules() {
        let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!(\"ok\"); }
}
";
        assert!(scan_one("crates/radio/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_same_line_and_next_line() {
        let same = "let _ = std::env::var(\"X\"); // lint:allow(env-var) test hook\n";
        assert!(scan_one("crates/radio/src/x.rs", same).is_empty());
        let next = "// deliberate: lint:allow(env-var)\nlet _ = std::env::var(\"X\");\n";
        assert!(scan_one("crates/radio/src/x.rs", next).is_empty());
        let bare = "let _ = std::env::var(\"X\");\n";
        assert_eq!(scan_one("crates/radio/src/x.rs", bare).len(), 1);
    }

    #[test]
    fn allow_covers_full_statement_span() {
        // The token may land on a continuation line of the statement
        // under the allow comment; the escape must still cover it.
        let src = "\
// deliberate, test hook: lint:allow(env-var)
let jobs =
    std::env::var(\"JOBS\")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
let other = std::env::var(\"X\");
";
        let v = scan_one("crates/radio/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 7, "the next statement is NOT covered");
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// capture subsystem: lint:allow-file(sans-io)\nuse std::fs::File;\nfn f() { let _ = File::open(\"x\"); }\n";
        assert!(scan_one("crates/workloads/src/cap.rs", src).is_empty());
    }

    #[test]
    fn hash_iter_needs_sort_or_allow() {
        let bad = "struct S { m: FxHashMap<u16, u32> }\nfn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n";
        let v = scan_one("crates/workloads/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIter);

        let sorted = "struct S { m: FxHashMap<u16, u32> }\nfn f(s: &S) -> Vec<u16> {\n    let mut ks: Vec<u16> = s.m.keys().copied().collect();\n    ks.sort_unstable();\n    ks\n}\n";
        assert!(scan_one("crates/workloads/src/x.rs", sorted).is_empty());

        // Outside the aggregation crates the rule does not apply.
        assert!(scan_one("crates/netstack/src/x.rs", bad).is_empty());
    }

    #[test]
    fn forbid_unsafe_only_on_crate_roots() {
        let v = scan_one("crates/radio/src/lib.rs", "pub mod x;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ForbidUnsafe);
        assert!(scan_one("crates/radio/src/x.rs", "pub fn f() {}\n").is_empty());
        assert!(scan_one(
            "crates/radio/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n"
        )
        .is_empty());
    }

    #[test]
    fn clone_nondet_fires_on_derive_and_manual_impl() {
        let derived = "#[derive(Debug, Clone)]\npub struct Profiled {\n    depth: usize,\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        let v = scan_one("crates/simcore/src/x.rs", derived);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CloneNondet);
        assert_eq!(v[0].line, 1, "should point at the derive line");

        let manual = "pub struct Knob {\n    // test hook: lint:allow(env-var)\n    jobs: Option<u32>,\n}\nimpl Clone for Knob {\n    fn clone(&self) -> Self {\n        Knob { jobs: self.jobs }\n    }\n}\n";
        let v = scan_one("crates/simcore/src/y.rs", manual);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CloneNondet);
        assert_eq!(v[0].line, 5, "should point at the impl line");
    }

    #[test]
    fn clone_nondet_spares_clean_and_escaped_types() {
        // A Clone type with no escapes in its body is fine, even if the
        // file has escapes elsewhere (e.g. inside a free function).
        let clean = "#[derive(Clone)]\npub struct Plain { x: u32 }\nfn deadline() {\n    // watchdog: lint:allow(wall-clock)\n    let _ = std::time::Instant::now();\n}\n";
        assert!(scan_one("crates/simcore/src/x.rs", clean).is_empty());

        // A tainted type that is *not* Clone is also fine.
        let not_clone = "pub struct Probe {\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        assert!(scan_one("crates/simcore/src/y.rs", not_clone).is_empty());

        // And the rule has its own escape hatch.
        let escaped = "// never reaches a World: lint:allow(clone-nondet)\n#[derive(Clone)]\npub struct Probe {\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        assert!(scan_one("crates/simcore/src/z.rs", escaped).is_empty());
    }

    #[test]
    fn thread_rule_spares_only_sweep() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(scan_one("crates/workloads/src/x.rs", src).len(), 1);
        assert!(scan_one("crates/simcore/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn stream_label_duplicates_and_computed() {
        let dup = "fn f(root: &SimRng) {\n    let a = root.stream(\"mob\");\n    let b = root.stream(\"mob\");\n}\n";
        let v = scan_one("crates/workloads/src/x.rs", dup);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StreamLabel);
        assert_eq!(v[0].line, 3, "second derivation is the violation");

        // Same label in *different* functions re-derives the same
        // stream deliberately (e.g. `new` vs `rebase_seed`) — fine.
        let two_fns =
            "fn f(r: &SimRng) { let _ = r.stream(\"mob\"); }\nfn g(r: &SimRng) { let _ = r.stream(\"mob\"); }\n";
        assert!(scan_one("crates/workloads/src/x.rs", two_fns).is_empty());

        // Different receivers in one function are distinct streams.
        let two_recv = "fn f(a: &SimRng, b: &SimRng) {\n    let x = a.stream(\"mob\");\n    let y = b.stream(\"mob\");\n}\n";
        assert!(scan_one("crates/workloads/src/x.rs", two_recv).is_empty());

        let computed = "fn f(root: &SimRng, which: &str) {\n    let s = root.stream(which);\n}\n";
        let v = scan_one("crates/workloads/src/x.rs", computed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StreamLabel);

        // The RNG itself derives dynamically — exempt.
        let inner = "impl SimRng { fn via(&self, l: &str) -> SimRng { self.stream(l) } }\n";
        assert!(scan_one("crates/simcore/src/rng.rs", inner).is_empty());
    }

    #[test]
    fn float_ord_comparators_and_keys() {
        let cmp = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let v = scan_one("crates/model/src/x.rs", cmp);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatOrd);
        assert_eq!(v[0].line, 2);

        let expect =
            "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"NaN\"));\n}\n";
        assert_eq!(scan_one("crates/model/src/x.rs", expect).len(), 1);

        let total = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n";
        assert!(scan_one("crates/model/src/x.rs", total).is_empty());

        // A PartialOrd *definition* is not a comparator call.
        let def = "impl PartialOrd for K {\n    fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }\n}\n";
        assert!(scan_one("crates/simcore/src/x.rs", def).is_empty());

        let key = "struct S { by_rssi: FxHashMap<f64, u32> }\n";
        let v = scan_one("crates/spider/src/x.rs", key);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatOrd);
    }

    #[test]
    fn snapshot_completeness_via_scan_sources() {
        let world = "\
#[derive(Clone)]
pub struct World {
    pub queue: MiniQueue,
    pub probe: Recorder,
}
#[derive(Clone)]
pub struct MiniQueue { pub depth: usize }
pub struct Recorder { pub frames: u64 }
";
        let files = vec![(
            PathBuf::from("crates/workloads/src/world.rs"),
            world.to_string(),
        )];
        let v = scan_sources(&files);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SnapshotCompleteness);
        assert_eq!(v[0].line, 4, "violation lands on the referencing field");
    }
}
