//! `spider-lint` — the workspace's determinism / sans-IO static-analysis
//! pass.
//!
//! Everything this repository claims rests on one property: a `World`
//! run is a pure function of `(config, seed)`. One stray
//! `SystemTime::now()`, one `std::collections::HashMap` iterated with
//! its per-process `RandomState`, one `println!` buried in a library
//! crate, and reproducibility silently dies. rustc and clippy cannot
//! express these project rules, so this crate enforces them with a
//! hand-rolled line/token scanner (the workspace builds offline — no
//! `syn`, no dependencies at all).
//!
//! # Rule catalog
//!
//! | id             | rule |
//! |----------------|------|
//! | `wall-clock`   | no `Instant::now` / `SystemTime` / `thread_rng` / `rand::random` / `std::time` in simulation code |
//! | `env-var`      | no `std::env` reads outside `simcore::sweep` and the bench harness |
//! | `default-hash` | no `std::collections::HashMap`/`HashSet` with the default `RandomState`; use `FxHashMap`/`FxHashSet` or `BTreeMap` |
//! | `hash-iter`    | no unordered hash-map iteration feeding output/aggregation in `bench`/`workloads` unless sorted within two lines |
//! | `thread`       | no `std::thread` / channels outside `simcore::sweep` |
//! | `sans-io`      | no `println!`/`eprintln!`/file I/O in library crates (bins, examples, benches and `#[cfg(test)]` are exempt) |
//! | `forbid-unsafe`| every crate root must carry `#![forbid(unsafe_code)]` |
//! | `clone-nondet` | no `Clone` (derived or hand-written) on a type whose body carries a `lint:allow`-escaped determinism violation — the checkpoint engine (DESIGN.md §13) deep-clones worlds, and forking escaped nondeterministic state silently breaks fork/resume bit-identity |
//! | `rng-derivation` | no hand-cooked `SimRng::new(..)` seeds (XOR/splitmix/FNV arithmetic) outside `simcore::rng` — a cooked seed bypasses the recorded derivation chain that `rebase_seed` replays |
//!
//! # Escapes
//!
//! A violation that is deliberate is allow-listed in the source:
//!
//! * `// lint:allow(rule)` on the offending line, or on a comment line
//!   of its own immediately above it, silences that rule there;
//! * `// lint:allow-file(rule)` anywhere in a file silences the rule
//!   for the whole file (used e.g. by the capture subsystem, whose
//!   entire purpose is file I/O).
//!
//! Every escape should carry a justification in the surrounding
//! comment; reviewers treat a bare allow as a bug.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Wall-clock or ambient randomness in simulation code.
    WallClock,
    /// Environment reads outside the sweep runner / bench harness.
    EnvVar,
    /// `std` hash containers with the nondeterministic default hasher.
    DefaultHash,
    /// Unordered hash-map iteration feeding aggregation.
    HashIter,
    /// Threads or channels outside `simcore::sweep`.
    Thread,
    /// I/O from library code.
    SansIo,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    ForbidUnsafe,
    /// `Clone` on a type holding `lint:allow`-escaped nondeterministic
    /// state (checkpoint-engine hazard).
    CloneNondet,
    /// Hand-cooked `SimRng` seeds outside `simcore::rng` (seed-rebase
    /// hazard: the derivation chain cannot replay arithmetic it never
    /// saw).
    RngDerivation,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 9] = [
        Rule::WallClock,
        Rule::EnvVar,
        Rule::DefaultHash,
        Rule::HashIter,
        Rule::Thread,
        Rule::SansIo,
        Rule::ForbidUnsafe,
        Rule::CloneNondet,
        Rule::RngDerivation,
    ];

    /// The identifier used in `lint:allow(...)` comments and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::EnvVar => "env-var",
            Rule::DefaultHash => "default-hash",
            Rule::HashIter => "hash-iter",
            Rule::Thread => "thread",
            Rule::SansIo => "sans-io",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::CloneNondet => "clone-nondet",
            Rule::RngDerivation => "rng-derivation",
        }
    }
}

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What was matched.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Library source (`crates/*/src/**`, workspace `src/**`).
    Lib,
    /// Binary-adjacent source: `src/bin/**`, `main.rs`, examples,
    /// benches. Allowed to print, read the environment and time itself.
    Bin,
    /// Integration tests (`tests/**`). Allowed to do I/O, but still
    /// held to the determinism rules.
    Test,
}

/// Per-file scan context derived from its workspace-relative path.
#[derive(Debug, Clone)]
struct FileCtx {
    rel: PathBuf,
    crate_name: String,
    kind: FileKind,
}

/// Crates whose *library* code is exempt from the sans-IO and
/// environment rules: the bench harness exists to time things, print
/// tables and write CSVs, and this linter exists to read source trees.
const IO_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// The one file allowed to read `SPIDER_JOBS` and spawn threads: the
/// parallel sweep runner (DESIGN.md §10).
const SWEEP_FILE: &str = "crates/simcore/src/sweep.rs";

/// The one file allowed to do seed arithmetic: the RNG itself, which
/// records every derivation step so `rebase_seed` can replay it
/// (DESIGN.md §13).
const RNG_FILE: &str = "crates/simcore/src/rng.rs";

/// Crates whose hash-map iteration feeds output/aggregation paths and
/// is therefore checked by `hash-iter`.
const HASH_ITER_CRATES: &[&str] = &["bench", "workloads"];

fn classify(rel: &Path) -> FileCtx {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        String::from("(workspace)")
    };
    let file_name = parts.last().copied().unwrap_or("");
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"bin")
        || parts.contains(&"examples")
        || parts.contains(&"benches")
        || file_name == "main.rs"
        || file_name == "build.rs"
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileCtx {
        rel: rel.to_path_buf(),
        crate_name,
        kind,
    }
}

/// Strip comments and string/char literals from `line`, carrying block
/// comment state across lines. Stripped spans become spaces so token
/// positions stay stable. Comment *text* is returned separately so
/// `lint:allow` markers can be read from it.
fn strip_line(line: &str, in_block_comment: &mut bool) -> (String, String) {
    let bytes: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comments = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                comments.push(bytes[i]);
                i += 1;
            }
            code.push(' ');
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment: everything to EOL is comment text.
                comments.extend(&bytes[i..]);
                code.extend(std::iter::repeat_n(' ', bytes.len() - i));
                break;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                code.push_str("  ");
                i += 2;
            }
            '"' => {
                // String literal (escapes honoured, unterminated tolerated).
                code.push(' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        i += 2;
                        code.push_str("  ");
                        continue;
                    }
                    let done = bytes[i] == '"';
                    code.push(' ');
                    i += 1;
                    if done {
                        break;
                    }
                }
            }
            'r' if bytes.get(i + 1) == Some(&'"')
                || (bytes.get(i + 1) == Some(&'#') && bytes.get(i + 2) == Some(&'"')) =>
            {
                // Raw string (r"..." / r#"..."#): skip to the closing
                // quote+hashes. Nested hashes beyond one are not used in
                // this workspace.
                let hashes = usize::from(bytes.get(i + 1) == Some(&'#'));
                let close: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let rest: String = bytes[i..].iter().collect();
                let skip = rest[1 + hashes + 1..]
                    .find(&close)
                    .map(|p| 1 + hashes + 1 + p + close.len())
                    .unwrap_or(bytes.len() - i);
                code.extend(std::iter::repeat_n(' ', skip));
                i += skip;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime has no closing
                // quote within two characters.
                if bytes.get(i + 1) == Some(&'\\') {
                    let end = bytes[i + 1..]
                        .iter()
                        .position(|&c| c == '\'')
                        .map(|p| i + 1 + p + 1)
                        .unwrap_or(bytes.len());
                    code.extend(std::iter::repeat_n(' ', end - i));
                    i = end;
                } else if bytes.get(i + 2) == Some(&'\'') {
                    code.push_str("   ");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comments)
}

/// Parse `lint:allow(<rules>)` / `lint:allow-file(<rules>)` markers out
/// of comment text.
fn parse_allows(comment: &str, file_wide: &mut Vec<Rule>, here: &mut Vec<Rule>) {
    for (marker, sink) in [
        ("lint:allow-file(", &mut *file_wide),
        ("lint:allow(", &mut *here),
    ] {
        let mut rest = comment;
        while let Some(pos) = rest.find(marker) {
            let tail = &rest[pos + marker.len()..];
            if let Some(close) = tail.find(')') {
                for name in tail[..close].split(',') {
                    let name = name.trim();
                    if let Some(rule) = Rule::ALL.iter().find(|r| r.id() == name) {
                        sink.push(*rule);
                    }
                }
                rest = &tail[close..];
            } else {
                break;
            }
        }
    }
}

/// Identifier characters, for receiver extraction.
fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier immediately preceding byte offset `pos` in `line`.
fn ident_before(line: &str, pos: usize) -> Option<&str> {
    let head = &line[..pos];
    let start = head
        .rfind(|c: char| !is_ident(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let id = &head[start..];
    (!id.is_empty() && !id.chars().next().unwrap().is_ascii_digit()).then_some(id)
}

/// Collect identifiers declared as hash maps/sets in this file: struct
/// fields and typed bindings (`name: FxHashMap<...>`) plus
/// default-constructed locals (`let [mut] name = FxHashMap::default()`).
fn collect_map_idents(code_lines: &[String]) -> Vec<String> {
    const TYPES: [&str; 4] = ["FxHashMap<", "FxHashSet<", "HashMap<", "HashSet<"];
    const CTORS: [&str; 4] = [
        "FxHashMap::default()",
        "FxHashSet::default()",
        "HashMap::new()",
        "HashSet::new()",
    ];
    let mut idents: Vec<String> = Vec::new();
    for line in code_lines {
        for ty in TYPES {
            for (pos, _) in line.match_indices(ty) {
                // `name: Type<...>` — walk back over the colon.
                let head = line[..pos].trim_end();
                if let Some(head) = head.strip_suffix(':') {
                    if let Some(id) = ident_before(head, head.len()) {
                        idents.push(id.to_string());
                    }
                }
            }
        }
        for ctor in CTORS {
            if let Some(pos) = line.find(ctor) {
                // `let [mut] name = Ctor` / `name = Ctor`.
                let head = line[..pos].trim_end();
                if let Some(head) = head.strip_suffix('=') {
                    if let Some(id) = ident_before(head.trim_end(), head.trim_end().len()) {
                        idents.push(id.to_string());
                    }
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Token lists per rule. A single match reports once per line per rule.
const WALL_CLOCK_TOKENS: [&str; 5] = [
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "rand::random",
    "std::time::",
];
const ENV_TOKENS: [&str; 2] = ["std::env", "env::var"];
const DEFAULT_HASH_TOKENS: [&str; 4] = [
    "std::collections::HashMap",
    "std::collections::HashSet",
    "HashMap::new()",
    "HashSet::new()",
];
const THREAD_TOKENS: [&str; 3] = ["std::thread", "thread::spawn", "mpsc"];
const SANS_IO_TOKENS: [&str; 10] = [
    "println!",
    "eprintln!",
    "print!(",
    "eprint!(",
    "dbg!(",
    "std::fs",
    "File::create",
    "File::open",
    "OpenOptions",
    "io::stdout",
];
const HASH_ITER_METHODS: [&str; 5] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
];

/// Scan one file's contents. `rel` is the path relative to the scanned
/// root (used for classification and reporting).
pub fn scan_source(rel: &Path, source: &str, out: &mut Vec<Violation>) {
    let ctx = classify(rel);
    let raw_lines: Vec<&str> = source.lines().collect();

    // Pass 1: strip comments/strings, harvest allow markers.
    let mut code_lines: Vec<String> = Vec::with_capacity(raw_lines.len());
    let mut line_allows: Vec<Vec<Rule>> = vec![Vec::new(); raw_lines.len()];
    let mut file_allows: Vec<Rule> = Vec::new();
    let mut in_block = false;
    for (i, raw) in raw_lines.iter().enumerate() {
        let (code, comments) = strip_line(raw, &mut in_block);
        let mut here = Vec::new();
        parse_allows(&comments, &mut file_allows, &mut here);
        if !here.is_empty() {
            if code.trim().is_empty() {
                // A standalone allow comment covers the next line.
                if i + 1 < line_allows.len() {
                    line_allows[i + 1].extend(here);
                }
            } else {
                line_allows[i].extend(here);
            }
        }
        code_lines.push(code);
    }

    // Pass 2: track `#[cfg(test)]` regions by brace depth.
    let mut in_test_region = vec![false; code_lines.len()];
    {
        let mut depth: i64 = 0;
        let mut pending_attr = false;
        let mut region_entry: Option<i64> = None;
        for (i, code) in code_lines.iter().enumerate() {
            if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
                pending_attr = true;
            }
            let before = depth;
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if pending_attr && depth > before {
                region_entry = Some(before);
                pending_attr = false;
            }
            if let Some(entry) = region_entry {
                in_test_region[i] = true;
                if depth <= entry {
                    region_entry = None;
                }
            }
        }
    }

    let map_idents = if HASH_ITER_CRATES.contains(&ctx.crate_name.as_str()) {
        collect_map_idents(&code_lines)
    } else {
        Vec::new()
    };

    let allowed = |rule: Rule, i: usize| -> bool {
        file_allows.contains(&rule) || line_allows[i].contains(&rule)
    };
    let mut report = |rule: Rule, i: usize, msg: String| {
        out.push(Violation {
            file: ctx.rel.clone(),
            line: i + 1,
            rule,
            message: msg,
        });
    };

    let io_exempt_crate = IO_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());
    let is_sweep = ctx.rel.to_string_lossy().replace('\\', "/") == SWEEP_FILE;
    let is_rng = ctx.rel.to_string_lossy().replace('\\', "/") == RNG_FILE;

    for (i, code) in code_lines.iter().enumerate() {
        let test_here = ctx.kind == FileKind::Test || in_test_region[i];

        // wall-clock: simulation code (lib + tests) must not read time
        // or ambient randomness. Bins/examples/benches time themselves.
        if ctx.kind != FileKind::Bin && !io_exempt_crate && !allowed(Rule::WallClock, i) {
            if let Some(tok) = WALL_CLOCK_TOKENS.iter().find(|t| code.contains(*t)) {
                report(Rule::WallClock, i, format!("`{tok}` in simulation code"));
            }
        }

        // env-var: only the sweep runner and the bench/lint harnesses
        // may consult the environment.
        if ctx.kind != FileKind::Bin
            && !io_exempt_crate
            && !is_sweep
            && !test_here
            && !allowed(Rule::EnvVar, i)
        {
            if let Some(tok) = ENV_TOKENS.iter().find(|t| code.contains(*t)) {
                report(Rule::EnvVar, i, format!("`{tok}` outside sweep/bench"));
            }
        }

        // default-hash: library code must not build RandomState maps.
        // The path check also catches brace imports
        // (`use std::collections::{HashMap, ...}`).
        if ctx.kind == FileKind::Lib && !test_here && !allowed(Rule::DefaultHash, i) {
            let brace_import = code.contains("std::collections::")
                && (code.contains("HashMap") || code.contains("HashSet"));
            if let Some(tok) = DEFAULT_HASH_TOKENS
                .iter()
                .find(|t| code.contains(*t))
                .or(brace_import.then_some(&"std::collections::{Hash..}"))
            {
                report(
                    Rule::DefaultHash,
                    i,
                    format!("`{tok}` has a per-process RandomState; use FxHashMap/FxHashSet or BTreeMap"),
                );
            }
        }

        // thread: only the sweep runner may spawn or channel.
        if !is_sweep && !allowed(Rule::Thread, i) {
            if let Some(tok) = THREAD_TOKENS.iter().find(|t| code.contains(*t)) {
                report(Rule::Thread, i, format!("`{tok}` outside simcore::sweep"));
            }
        }

        // sans-io: library code performs no I/O.
        if ctx.kind == FileKind::Lib && !test_here && !io_exempt_crate && !allowed(Rule::SansIo, i)
        {
            if let Some(tok) = SANS_IO_TOKENS.iter().find(|t| code.contains(*t)) {
                report(Rule::SansIo, i, format!("`{tok}` in library code"));
            }
        }

        // hash-iter: unordered iteration over a known hash container in
        // an aggregation crate, with no sort in sight. Applies to the
        // experiment binaries too — they are where CSV rows are emitted.
        if ctx.kind != FileKind::Test
            && !test_here
            && !map_idents.is_empty()
            && !allowed(Rule::HashIter, i)
        {
            for m in HASH_ITER_METHODS {
                for (pos, _) in code.match_indices(m) {
                    if let Some(id) = ident_before(code, pos) {
                        if map_idents.iter().any(|mi| mi == id) {
                            // A sort within the next few lines makes the
                            // walk order canonical before anything
                            // observable happens.
                            let sorted_nearby = (i..(i + 5).min(code_lines.len()))
                                .any(|j| code_lines[j].contains("sort"));
                            if !sorted_nearby {
                                report(
                                    Rule::HashIter,
                                    i,
                                    format!(
                                        "unordered iteration `{id}{m}` feeds aggregation; sort the keys or lint:allow with a commutativity argument"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }

        // rng-derivation: every stream handed to the simulator must be
        // derived through the recorded API (`stream`/`stream_indexed`),
        // never by cooking a root seed with ad-hoc arithmetic. A cooked
        // seed bypasses the derivation chain that `World::rebase_seed`
        // replays (DESIGN.md §13), so the stream silently keeps its old
        // seed after a rebase. Only `simcore::rng` itself mixes seeds.
        if !is_rng && !allowed(Rule::RngDerivation, i) {
            for (pos, _) in code.match_indices("SimRng::new(") {
                let tail = &code[pos + "SimRng::new(".len()..];
                // Take the argument up to the matching close paren (or
                // the rest of the line if the call spans lines).
                let mut depth = 1i32;
                let mut end = tail.len();
                for (j, c) in tail.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let arg = &tail[..end];
                const COOKED_SEED_TOKENS: [&str; 4] = ["^", "splitmix64", "fnv1a", "wrapping_"];
                if let Some(tok) = COOKED_SEED_TOKENS.iter().find(|t| arg.contains(*t)) {
                    report(
                        Rule::RngDerivation,
                        i,
                        format!(
                            "`SimRng::new(..{tok}..)` cooks a seed by hand; derive the stream \
                             via `stream`/`stream_indexed` so `rebase_seed` can replay it"
                        ),
                    );
                }
            }
        }
    }

    // clone-nondet: a type whose definition body carries a `lint:allow`
    // escape for one of the determinism rules must not be cloneable.
    // The checkpoint engine (DESIGN.md §13) deep-clones live worlds to
    // fork them; state that had to be escaped from the determinism
    // rules would be silently duplicated into every fork, and
    // fork/resume bit-identity dies in a place no other rule watches.
    // Line-level escapes only: `lint:allow-file` marks a whole file
    // whose *purpose* is the exception (e.g. the hashing shim), not a
    // pocket of nondeterministic state smuggled into simulation types.
    if ctx.kind == FileKind::Lib {
        const NONDET_RULES: [Rule; 4] = [
            Rule::WallClock,
            Rule::EnvVar,
            Rule::DefaultHash,
            Rule::Thread,
        ];
        // Type definitions with brace bodies: (name, first line, last line).
        let mut types: Vec<(String, usize, usize)> = Vec::new();
        {
            let mut depth: i64 = 0;
            let mut open: Vec<(String, usize, i64)> = Vec::new();
            let mut pending: Option<(String, usize)> = None;
            for (i, code) in code_lines.iter().enumerate() {
                for kw in ["struct", "enum"] {
                    for (pos, _) in code.match_indices(kw) {
                        let bounded = code[..pos].chars().next_back().is_none_or(|c| !is_ident(c));
                        let after = &code[pos + kw.len()..];
                        if !bounded || !after.starts_with(char::is_whitespace) {
                            continue;
                        }
                        let name: String = after
                            .trim_start()
                            .chars()
                            .take_while(|&c| is_ident(c))
                            .collect();
                        if !name.is_empty() {
                            pending = Some((name, i));
                        }
                    }
                }
                for c in code.chars() {
                    match c {
                        '{' => {
                            if let Some((name, start)) = pending.take() {
                                open.push((name, start, depth));
                            }
                            depth += 1;
                        }
                        '}' => {
                            depth -= 1;
                            if open.last().is_some_and(|&(_, _, entry)| depth == entry) {
                                let (name, start, _) = open.pop().unwrap();
                                types.push((name, start, i));
                            }
                        }
                        // Tuple/unit struct: no body to inspect.
                        ';' if pending.is_some() => pending = None,
                        _ => {}
                    }
                }
            }
        }
        let contains_word = |line: &str, word: &str| -> bool {
            line.match_indices(word).any(|(pos, _)| {
                line[..pos].chars().next_back().is_none_or(|c| !is_ident(c))
                    && line[pos + word.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !is_ident(c))
            })
        };
        for (name, start, end) in types {
            if in_test_region[start] {
                continue;
            }
            let tainted = (start..=end.min(code_lines.len() - 1))
                .any(|i| NONDET_RULES.iter().any(|r| line_allows[i].contains(r)));
            if !tainted {
                continue;
            }
            // `#[derive(.., Clone, ..)]` in the attribute block above the
            // definition (doc comments strip to blank code lines).
            let derive_line = (0..start)
                .rev()
                .take_while(|&j| {
                    let l = code_lines[j].trim_start();
                    l.starts_with('#') || l.is_empty()
                })
                .find(|&j| {
                    code_lines[j].contains("derive") && contains_word(&code_lines[j], "Clone")
                });
            // `impl [<..>] Clone for Name` anywhere in the file.
            let impl_line = code_lines.iter().position(|l| {
                l.contains("impl")
                    && l.split(" Clone for ").nth(1).is_some_and(|after| {
                        let id: String = after
                            .trim_start()
                            .chars()
                            .take_while(|&c| is_ident(c))
                            .collect();
                        id == name
                    })
            });
            if let Some(at) = derive_line.or(impl_line) {
                if !allowed(Rule::CloneNondet, at) {
                    report(
                        Rule::CloneNondet,
                        at,
                        format!(
                            "`{name}` is Clone but its body carries a lint:allow-escaped \
                             determinism violation; the checkpoint engine would fork that state"
                        ),
                    );
                }
            }
        }
    }

    // forbid-unsafe: crate roots must carry the attribute.
    let is_crate_root = {
        let parts: Vec<&str> = ctx
            .rel
            .components()
            .map(|c| c.as_os_str().to_str().unwrap_or(""))
            .collect();
        parts.last() == Some(&"lib.rs")
            && (parts.as_slice() == ["src", "lib.rs"]
                || (parts.first() == Some(&"crates") && parts.get(2) == Some(&"src")))
    };
    // Checked against stripped code so a doc comment merely *mentioning*
    // the attribute doesn't satisfy the rule.
    if is_crate_root
        && !file_allows.contains(&Rule::ForbidUnsafe)
        && !code_lines
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"))
    {
        out.push(Violation {
            file: ctx.rel.clone(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// Recursively list `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // `target` is build output; `fixtures` holds this linter's
            // own deliberately-violating test inputs.
            if name == "target" || name == "fixtures" {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan a workspace tree rooted at `root`: every `crates/*/{src,tests,
/// examples,benches}` file plus the workspace-level `src/` and `tests/`.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                rust_files(&member.join(sub), &mut files)?;
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        rust_files(&root.join(sub), &mut files)?;
    }
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        scan_source(&rel, &source, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(Path::new(rel), src, &mut out);
        out
    }

    #[test]
    fn strips_comments_and_strings() {
        let mut in_block = false;
        let (code, comments) = strip_line(
            r#"let x = "Instant::now"; // lint:allow(thread)"#,
            &mut in_block,
        );
        assert!(!code.contains("Instant"));
        assert!(comments.contains("lint:allow(thread)"));
        let (code, _) = strip_line("/* SystemTime */ let y = 1;", &mut in_block);
        assert!(!code.contains("SystemTime"));
        assert!(code.contains("let y = 1;"));
    }

    #[test]
    fn block_comment_state_carries_across_lines() {
        let mut in_block = false;
        strip_line("/* open", &mut in_block);
        assert!(in_block);
        let (code, _) = strip_line("SystemTime::now() */ let z = 2;", &mut in_block);
        assert!(!in_block);
        assert!(!code.contains("SystemTime"));
        assert!(code.contains("let z = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let mut in_block = false;
        let (code, _) = strip_line("fn f<'a>(x: &'a str) -> &'a str { x }", &mut in_block);
        assert!(code.contains("fn f<'a>"));
    }

    #[test]
    fn wall_clock_fires_in_lib_not_bin() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(scan_one("crates/simcore/src/x.rs", src).len(), 1);
        assert!(scan_one("crates/bench/src/bin/fig01.rs", src).is_empty());
        assert!(scan_one("crates/workloads/examples/timing.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_io_rules() {
        let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!(\"ok\"); }
}
";
        assert!(scan_one("crates/radio/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_same_line_and_next_line() {
        let same = "let _ = std::env::var(\"X\"); // lint:allow(env-var) test hook\n";
        assert!(scan_one("crates/radio/src/x.rs", same).is_empty());
        let next = "// deliberate: lint:allow(env-var)\nlet _ = std::env::var(\"X\");\n";
        assert!(scan_one("crates/radio/src/x.rs", next).is_empty());
        let bare = "let _ = std::env::var(\"X\");\n";
        assert_eq!(scan_one("crates/radio/src/x.rs", bare).len(), 1);
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// capture subsystem: lint:allow-file(sans-io)\nuse std::fs::File;\nfn f() { let _ = File::open(\"x\"); }\n";
        assert!(scan_one("crates/workloads/src/cap.rs", src).is_empty());
    }

    #[test]
    fn hash_iter_needs_sort_or_allow() {
        let bad = "struct S { m: FxHashMap<u16, u32> }\nfn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n";
        let v = scan_one("crates/workloads/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIter);

        let sorted = "struct S { m: FxHashMap<u16, u32> }\nfn f(s: &S) -> Vec<u16> {\n    let mut ks: Vec<u16> = s.m.keys().copied().collect();\n    ks.sort_unstable();\n    ks\n}\n";
        assert!(scan_one("crates/workloads/src/x.rs", sorted).is_empty());

        // Outside the aggregation crates the rule does not apply.
        assert!(scan_one("crates/netstack/src/x.rs", bad).is_empty());
    }

    #[test]
    fn forbid_unsafe_only_on_crate_roots() {
        let v = scan_one("crates/radio/src/lib.rs", "pub mod x;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ForbidUnsafe);
        assert!(scan_one("crates/radio/src/x.rs", "pub fn f() {}\n").is_empty());
        assert!(scan_one(
            "crates/radio/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n"
        )
        .is_empty());
    }

    #[test]
    fn clone_nondet_fires_on_derive_and_manual_impl() {
        let derived = "#[derive(Debug, Clone)]\npub struct Profiled {\n    depth: usize,\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        let v = scan_one("crates/simcore/src/x.rs", derived);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CloneNondet);
        assert_eq!(v[0].line, 1, "should point at the derive line");

        let manual = "pub struct Knob {\n    // test hook: lint:allow(env-var)\n    jobs: Option<u32>,\n}\nimpl Clone for Knob {\n    fn clone(&self) -> Self {\n        Knob { jobs: self.jobs }\n    }\n}\n";
        let v = scan_one("crates/simcore/src/y.rs", manual);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CloneNondet);
        assert_eq!(v[0].line, 5, "should point at the impl line");
    }

    #[test]
    fn clone_nondet_spares_clean_and_escaped_types() {
        // A Clone type with no escapes in its body is fine, even if the
        // file has escapes elsewhere (e.g. inside a free function).
        let clean = "#[derive(Clone)]\npub struct Plain { x: u32 }\nfn deadline() {\n    // watchdog: lint:allow(wall-clock)\n    let _ = std::time::Instant::now();\n}\n";
        assert!(scan_one("crates/simcore/src/x.rs", clean).is_empty());

        // A tainted type that is *not* Clone is also fine.
        let not_clone = "pub struct Probe {\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        assert!(scan_one("crates/simcore/src/y.rs", not_clone).is_empty());

        // And the rule has its own escape hatch.
        let escaped = "// never reaches a World: lint:allow(clone-nondet)\n#[derive(Clone)]\npub struct Probe {\n    // profiling hook: lint:allow(wall-clock)\n    started: std::time::Instant,\n}\n";
        assert!(scan_one("crates/simcore/src/z.rs", escaped).is_empty());
    }

    #[test]
    fn thread_rule_spares_only_sweep() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(scan_one("crates/workloads/src/x.rs", src).len(), 1);
        assert!(scan_one("crates/simcore/src/sweep.rs", src).is_empty());
    }
}
