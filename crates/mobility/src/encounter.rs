//! Encounter computation: when is the client within range of which AP?
//!
//! Encounters drive everything in the paper — the join model's `t` is the
//! encounter duration, and §2.3 reports a median encounter of ~8 s at
//! town speeds. For linear motion encounters are computed in closed form
//! (circle/line intersection); loops and other models are sampled
//! numerically.

use crate::deployment::Deployment;
use crate::path::MobilityModel;
use spider_simcore::{SimDuration, SimTime};

/// A maximal interval during which the client is within `range` of an AP.
#[derive(Debug, Clone, PartialEq)]
pub struct Encounter {
    /// The AP's id in the deployment.
    pub ap_id: usize,
    /// When the client enters range.
    pub enter: SimTime,
    /// When the client exits range.
    pub exit: SimTime,
}

impl Encounter {
    /// Length of the encounter.
    pub fn duration(&self) -> SimDuration {
        self.exit.saturating_since(self.enter)
    }
}

/// Compute every encounter in `[0, horizon]` between `mobility` and the
/// APs of `deployment`, given a communication range in metres.
///
/// Results are sorted by entry time.
pub fn encounters(
    mobility: &MobilityModel,
    deployment: &Deployment,
    range_m: f64,
    horizon: SimTime,
) -> Vec<Encounter> {
    let mut out = Vec::new();
    for site in &deployment.sites {
        match mobility {
            MobilityModel::Linear { start, velocity } => {
                // Solve |start + v t - ap|^2 = range^2 for t.
                let rel = *start - site.position;
                let a = velocity.dot(*velocity);
                let b = 2.0 * rel.dot(*velocity);
                let c = rel.dot(rel) - range_m * range_m;
                if a == 0.0 {
                    // Stationary-as-linear: in range forever or never.
                    if c <= 0.0 {
                        out.push(Encounter {
                            ap_id: site.id,
                            enter: SimTime::ZERO,
                            exit: horizon,
                        });
                    }
                    continue;
                }
                let disc = b * b - 4.0 * a * c;
                if disc <= 0.0 {
                    continue;
                }
                let sqrt_d = disc.sqrt();
                let t_in = (-b - sqrt_d) / (2.0 * a);
                let t_out = (-b + sqrt_d) / (2.0 * a);
                let enter = t_in.max(0.0);
                let exit = t_out.min(horizon.as_secs_f64());
                if exit > enter {
                    out.push(Encounter {
                        ap_id: site.id,
                        enter: SimTime::from_secs_f64(enter),
                        exit: SimTime::from_secs_f64(exit),
                    });
                }
            }
            MobilityModel::Static(p) => {
                if p.distance_to(site.position) <= range_m {
                    out.push(Encounter {
                        ap_id: site.id,
                        enter: SimTime::ZERO,
                        exit: horizon,
                    });
                }
            }
            MobilityModel::Loop { .. } => {
                // Numeric sweep at 100ms resolution.
                let step = SimDuration::from_millis(100);
                let mut t = SimTime::ZERO;
                let mut inside = false;
                let mut entered = SimTime::ZERO;
                while t <= horizon {
                    let d = mobility.position(t).distance_to(site.position);
                    let now_inside = d <= range_m;
                    if now_inside && !inside {
                        entered = t;
                        inside = true;
                    } else if !now_inside && inside {
                        out.push(Encounter {
                            ap_id: site.id,
                            enter: entered,
                            exit: t,
                        });
                        inside = false;
                    }
                    t += step;
                }
                if inside {
                    out.push(Encounter {
                        ap_id: site.id,
                        enter: entered,
                        exit: horizon,
                    });
                }
            }
        }
    }
    out.sort_by_key(|e| e.enter);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::geometry::Position;
    use spider_simcore::SimRng;
    use spider_wire::Channel;

    fn lab_at(positions: Vec<Position>) -> Deployment {
        Deployment::lab(
            positions.into_iter().map(|p| (p, Channel::CH6)).collect(),
            500_000.0,
        )
    }

    #[test]
    fn head_on_pass_has_full_chord() {
        // AP directly on the road at x=500; client eastbound at 10 m/s,
        // range 100m: in range for x in [400, 600] -> t in [40, 60].
        let mob = MobilityModel::straight_road(10.0);
        let dep = lab_at(vec![Position::new(500.0, 0.0)]);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(200));
        assert_eq!(enc.len(), 1);
        assert!((enc[0].enter.as_secs_f64() - 40.0).abs() < 1e-6);
        assert!((enc[0].exit.as_secs_f64() - 60.0).abs() < 1e-6);
        assert!((enc[0].duration().as_secs_f64() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn offset_ap_has_shorter_chord() {
        // AP 60m off the road: chord = 2*sqrt(100^2-60^2) = 160m -> 16s.
        let mob = MobilityModel::straight_road(10.0);
        let dep = lab_at(vec![Position::new(500.0, 60.0)]);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(200));
        assert_eq!(enc.len(), 1);
        assert!((enc[0].duration().as_secs_f64() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_reach_ap_is_never_encountered() {
        let mob = MobilityModel::straight_road(10.0);
        let dep = lab_at(vec![Position::new(500.0, 150.0)]);
        assert!(encounters(&mob, &dep, 100.0, SimTime::from_secs(200)).is_empty());
    }

    #[test]
    fn horizon_clips_encounters() {
        let mob = MobilityModel::straight_road(10.0);
        let dep = lab_at(vec![Position::new(500.0, 0.0)]);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(50));
        assert_eq!(enc.len(), 1);
        assert_eq!(enc[0].exit, SimTime::from_secs(50));
    }

    #[test]
    fn encounter_behind_start_is_clipped_to_zero() {
        // Client starts inside the AP's range.
        let mob = MobilityModel::Linear {
            start: Position::new(450.0, 0.0),
            velocity: Position::new(10.0, 0.0),
        };
        let dep = lab_at(vec![Position::new(500.0, 0.0)]);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(100));
        assert_eq!(enc.len(), 1);
        assert_eq!(enc[0].enter, SimTime::ZERO);
        assert!((enc[0].exit.as_secs_f64() - 15.0).abs() < 1e-6);
    }

    #[test]
    fn static_node_is_in_range_forever_or_never() {
        let dep = lab_at(vec![Position::new(50.0, 0.0), Position::new(500.0, 0.0)]);
        let mob = MobilityModel::Static(Position::ORIGIN);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(10));
        assert_eq!(enc.len(), 1);
        assert_eq!(enc[0].ap_id, 0);
        assert_eq!(enc[0].exit, SimTime::from_secs(10));
    }

    #[test]
    fn loop_route_reencounters_ap_each_lap() {
        // 400x100 loop at 20 m/s: perimeter 1000m, lap 50s. AP near the
        // first corner.
        let mob = MobilityModel::rectangular_loop(400.0, 100.0, 20.0);
        let dep = lab_at(vec![Position::new(0.0, 0.0)]);
        let enc = encounters(&mob, &dep, 80.0, SimTime::from_secs(150));
        // Expect ~3 encounter clusters (one per lap).
        assert!(enc.len() >= 3, "encounters: {enc:?}");
        for e in &enc {
            assert!(e.exit > e.enter);
        }
    }

    #[test]
    fn encounters_are_sorted_by_entry() {
        let mob = MobilityModel::straight_road(10.0);
        let dep = lab_at(vec![
            Position::new(900.0, 0.0),
            Position::new(300.0, 0.0),
            Position::new(600.0, 0.0),
        ]);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(200));
        assert_eq!(enc.len(), 3);
        assert!(enc.windows(2).all(|w| w[0].enter <= w[1].enter));
        assert_eq!(enc[0].ap_id, 1);
        assert_eq!(enc[1].ap_id, 2);
        assert_eq!(enc[2].ap_id, 0);
    }

    #[test]
    fn town_scenario_encounter_durations_match_paper() {
        // At ~10 m/s with APs scattered within ±30m of the road and 100m
        // range, encounter durations should bracket the paper's numbers
        // (median 8s, mean 22s measured across variable speeds; here a
        // single fixed speed gives 16-20s chords).
        let mut rng = SimRng::new(7);
        let params = crate::deployment::RoadsideParams {
            road_length_m: 20_000.0,
            density_per_km: 10.0,
            ..Default::default()
        };
        let dep = Deployment::poisson_roadside(&mut rng, &params);
        let mob = MobilityModel::straight_road(10.0);
        let enc = encounters(&mob, &dep, 100.0, SimTime::from_secs(2_000));
        assert!(!enc.is_empty());
        let mean = enc.iter().map(|e| e.duration().as_secs_f64()).sum::<f64>() / enc.len() as f64;
        assert!((10.0..22.0).contains(&mean), "mean encounter {mean}s");
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod property_tests {
    use super::*;
    use crate::deployment::{Deployment, RoadsideParams};
    use proptest::prelude::*;
    use spider_simcore::SimRng;

    proptest! {
        /// Linear-mobility encounters are well-formed: exit > enter,
        /// bounded by the horizon, and no encounter outlasts the maximal
        /// chord 2R/v.
        #[test]
        fn linear_encounters_are_well_formed(
            speed in 1.0f64..40.0,
            seed in 0u64..500,
        ) {
            let mut rng = SimRng::new(seed);
            let params = RoadsideParams {
                road_length_m: 3_000.0,
                density_per_km: 8.0,
                ..Default::default()
            };
            let dep = Deployment::poisson_roadside(&mut rng, &params);
            let mob = MobilityModel::straight_road(speed);
            let horizon = SimTime::from_secs(400);
            let max_chord_s = 2.0 * 100.0 / speed;
            for e in encounters(&mob, &dep, 100.0, horizon) {
                prop_assert!(e.exit > e.enter);
                prop_assert!(e.exit <= horizon);
                prop_assert!(
                    e.duration().as_secs_f64() <= max_chord_s + 1e-6,
                    "duration {} exceeds max chord {}",
                    e.duration().as_secs_f64(),
                    max_chord_s
                );
            }
        }
    }
}
