//! 2-D geometry in metres.

use std::ops::{Add, Mul, Sub};

/// A position (or displacement) in metres on a flat 2-D plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: Position) -> f64 {
        self.distance_sq_to(other).sqrt()
    }

    /// Squared Euclidean distance to another position. Range checks and
    /// the flat region of the loss model compare against squared bounds,
    /// skipping the `sqrt` on the per-frame hot path.
    pub fn distance_sq_to(&self, other: Position) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Vector length.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in this direction (origin maps to origin).
    pub fn normalised(&self) -> Position {
        let n = self.norm();
        if n == 0.0 {
            Position::ORIGIN
        } else {
            Position::new(self.x / n, self.y / n)
        }
    }

    /// Dot product.
    pub fn dot(&self, other: Position) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl Add for Position {
    type Output = Position;
    fn add(self, rhs: Position) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Position {
    type Output = Position;
    fn sub(self, rhs: Position) -> Position {
        Position::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Position {
    type Output = Position;
    fn mul(self, k: f64) -> Position {
        Position::new(self.x * k, self.y * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(b.distance_to(a), 5.0);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn vector_ops() {
        let v = Position::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalised();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Position::ORIGIN.normalised(), Position::ORIGIN);
        assert_eq!(v.dot(Position::new(1.0, 0.0)), 3.0);
        assert_eq!((v + v) * 0.5, v);
        assert_eq!(v - v, Position::ORIGIN);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Triangle inequality.
        #[test]
        fn triangle(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                    bx in -1e3f64..1e3, by in -1e3f64..1e3,
                    cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let c = Position::new(cx, cy);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        }
        }
    }
}
