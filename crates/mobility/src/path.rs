//! Mobility models: where the client is at a given simulated time.

use crate::geometry::Position;
use spider_simcore::SimTime;

/// A deterministic mobility model.
#[derive(Debug, Clone)]
pub enum MobilityModel {
    /// A stationary node — the setting multi-AP predecessors (FatVAP,
    /// Juggler) were designed for, used as the indoor scenario of §2.2.2.
    Static(Position),
    /// Constant-velocity travel along a straight road.
    Linear {
        /// Position at t = 0.
        start: Position,
        /// Velocity vector in m/s.
        velocity: Position,
    },
    /// Constant-speed travel around a closed polygonal loop — "the mobile
    /// node following the same route multiple times" (§4.1).
    Loop {
        /// Loop vertices (at least 2; the loop closes back to the first).
        waypoints: Vec<Position>,
        /// Speed along the loop in m/s.
        speed: f64,
    },
}

impl MobilityModel {
    /// A straight eastward drive at `speed` m/s starting at the origin.
    pub fn straight_road(speed: f64) -> MobilityModel {
        MobilityModel::Linear {
            start: Position::ORIGIN,
            velocity: Position::new(speed, 0.0),
        }
    }

    /// A rectangular downtown loop with the given side lengths.
    pub fn rectangular_loop(width_m: f64, height_m: f64, speed: f64) -> MobilityModel {
        MobilityModel::Loop {
            waypoints: vec![
                Position::new(0.0, 0.0),
                Position::new(width_m, 0.0),
                Position::new(width_m, height_m),
                Position::new(0.0, height_m),
            ],
            speed,
        }
    }

    /// Position at time `t`.
    pub fn position(&self, t: SimTime) -> Position {
        match self {
            MobilityModel::Static(p) => *p,
            MobilityModel::Linear { start, velocity } => *start + *velocity * t.as_secs_f64(),
            MobilityModel::Loop { waypoints, speed } => {
                assert!(waypoints.len() >= 2, "a loop needs at least 2 waypoints");
                let perimeter = Self::perimeter(waypoints);
                if perimeter == 0.0 {
                    return waypoints[0];
                }
                let mut dist = (speed * t.as_secs_f64()) % perimeter;
                for i in 0..waypoints.len() {
                    let a = waypoints[i];
                    let b = waypoints[(i + 1) % waypoints.len()];
                    let seg = a.distance_to(b);
                    if dist <= seg {
                        if seg == 0.0 {
                            return a;
                        }
                        return a + (b - a) * (dist / seg);
                    }
                    dist -= seg;
                }
                waypoints[0]
            }
        }
    }

    /// Scalar speed in m/s.
    pub fn speed(&self) -> f64 {
        match self {
            MobilityModel::Static(_) => 0.0,
            MobilityModel::Linear { velocity, .. } => velocity.norm(),
            MobilityModel::Loop { speed, .. } => *speed,
        }
    }

    fn perimeter(waypoints: &[Position]) -> f64 {
        (0..waypoints.len())
            .map(|i| waypoints[i].distance_to(waypoints[(i + 1) % waypoints.len()]))
            .sum()
    }
}

/// A [`MobilityModel`] evaluator with the loop geometry precomputed.
///
/// `MobilityModel::position` re-derives every segment length (one
/// square root each) and the full perimeter on every call; the world
/// evaluates the client position on every frame delivery, so that
/// arithmetic dominates. `CachedPath` computes the lengths once and
/// replays the *same* float-operation sequence at query time, so its
/// positions are bit-identical to the uncached model's — seeded runs
/// do not change.
#[derive(Debug, Clone)]
pub struct CachedPath {
    model: MobilityModel,
    /// Per-segment lengths for [`MobilityModel::Loop`] (empty for the
    /// other variants), in waypoint order, closing segment last.
    segs: Vec<f64>,
    /// Sum of `segs` in order — identical to what
    /// `MobilityModel::position` recomputes per call.
    perimeter: f64,
}

impl CachedPath {
    /// Precompute the geometry of `model`.
    pub fn new(model: MobilityModel) -> CachedPath {
        let (segs, perimeter) = match &model {
            MobilityModel::Loop { waypoints, .. } => {
                assert!(waypoints.len() >= 2, "a loop needs at least 2 waypoints");
                let segs: Vec<f64> = (0..waypoints.len())
                    .map(|i| waypoints[i].distance_to(waypoints[(i + 1) % waypoints.len()]))
                    .collect();
                let perimeter = segs.iter().sum();
                (segs, perimeter)
            }
            _ => (Vec::new(), 0.0),
        };
        CachedPath {
            model,
            segs,
            perimeter,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &MobilityModel {
        &self.model
    }

    /// Position at time `t` — bit-identical to
    /// [`MobilityModel::position`] on the wrapped model.
    pub fn position(&self, t: SimTime) -> Position {
        match &self.model {
            MobilityModel::Static(p) => *p,
            MobilityModel::Linear { start, velocity } => *start + *velocity * t.as_secs_f64(),
            MobilityModel::Loop { waypoints, speed } => {
                if self.perimeter == 0.0 {
                    return waypoints[0];
                }
                let mut dist = (speed * t.as_secs_f64()) % self.perimeter;
                for (i, &seg) in self.segs.iter().enumerate() {
                    let a = waypoints[i];
                    if dist <= seg {
                        if seg == 0.0 {
                            return a;
                        }
                        let b = waypoints[(i + 1) % waypoints.len()];
                        return a + (b - a) * (dist / seg);
                    }
                    dist -= seg;
                }
                waypoints[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_never_moves() {
        let m = MobilityModel::Static(Position::new(5.0, 6.0));
        assert_eq!(m.position(SimTime::from_secs(100)), Position::new(5.0, 6.0));
        assert_eq!(m.speed(), 0.0);
    }

    #[test]
    fn linear_motion() {
        let m = MobilityModel::straight_road(10.0);
        assert_eq!(m.position(SimTime::ZERO), Position::ORIGIN);
        assert_eq!(m.position(SimTime::from_secs(5)), Position::new(50.0, 0.0));
        assert_eq!(m.speed(), 10.0);
    }

    #[test]
    fn loop_traverses_perimeter_and_wraps() {
        // 100x50 rectangle, perimeter 300m, at 10 m/s -> 30s per lap.
        let m = MobilityModel::rectangular_loop(100.0, 50.0, 10.0);
        assert_eq!(m.position(SimTime::ZERO), Position::new(0.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(5)), Position::new(50.0, 0.0));
        assert_eq!(
            m.position(SimTime::from_secs(10)),
            Position::new(100.0, 0.0)
        );
        // 12s: 20m up the right side.
        assert_eq!(
            m.position(SimTime::from_secs(12)),
            Position::new(100.0, 20.0)
        );
        // Full lap returns to start.
        let lap = m.position(SimTime::from_secs(30));
        assert!(lap.distance_to(Position::ORIGIN) < 1e-9);
        // Wraps identically on the second lap.
        assert!(
            m.position(SimTime::from_secs(35))
                .distance_to(m.position(SimTime::from_secs(5)))
                < 1e-9
        );
    }

    #[test]
    fn cached_path_is_bit_identical_to_the_model() {
        let models = [
            MobilityModel::Static(Position::new(3.0, -4.0)),
            MobilityModel::straight_road(11.3),
            MobilityModel::rectangular_loop(1_700.0, 800.0, 10.0),
            MobilityModel::Loop {
                waypoints: vec![
                    Position::new(0.0, 0.0),
                    Position::new(313.7, 0.1),
                    Position::new(290.0, 451.9),
                ],
                speed: 7.77,
            },
        ];
        for model in models {
            let cached = CachedPath::new(model.clone());
            for ms in (0u64..200_000).step_by(137) {
                let t = SimTime::from_millis(ms);
                let a = model.position(t);
                let b = cached.position(t);
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "{model:?} at {ms}ms");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "{model:?} at {ms}ms");
            }
        }
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Linear displacement over dt equals speed * dt.
        #[test]
        fn linear_speed_consistency(speed in 0.1f64..50.0, t1 in 0u64..1000, dt in 1u64..1000) {
            let m = MobilityModel::straight_road(speed);
            let p1 = m.position(SimTime::from_millis(t1));
            let p2 = m.position(SimTime::from_millis(t1 + dt));
            let expected = speed * dt as f64 / 1e3;
            prop_assert!((p1.distance_to(p2) - expected).abs() < 1e-6);
        }

        /// Loop positions always lie within the rectangle's bounding box.
        #[test]
        fn loop_stays_in_bounds(t in 0u64..10_000) {
            let m = MobilityModel::rectangular_loop(100.0, 50.0, 7.0);
            let p = m.position(SimTime::from_millis(t * 10));
            prop_assert!((-1e-9..=100.0 + 1e-9).contains(&p.x));
            prop_assert!((-1e-9..=50.0 + 1e-9).contains(&p.y));
        }
        }
    }
}
