//! Vehicular mobility and access-point deployment.
//!
//! The paper's outdoor experiments drove five cars around a small town
//! and Boston/Cambridge, encountering open APs with a median connection
//! opportunity of ~8 s and a mean of ~22 s (§2.3). This crate provides
//! the synthetic equivalents:
//!
//! * [`geometry`] — 2-D positions and distances,
//! * [`path`] — mobility models (static, straight road, closed loop),
//! * [`deployment`] — roadside AP placement with the measured channel
//!   mix (28 % / 33 % / 34 % on channels 1/6/11, §4.1),
//! * [`encounter`] — when the client is within radio range of which AP,
//!   used by scenario calibration tests and the analytical model,
//! * [`grid`] — a uniform spatial index over deployments so dense
//!   worlds query *nearby* APs instead of scanning all of them.

#![forbid(unsafe_code)]

pub mod deployment;
pub mod encounter;
pub mod geometry;
pub mod grid;
pub mod path;

pub use deployment::{ApSite, ChannelMix, Deployment};
pub use encounter::{encounters, Encounter};
pub use geometry::Position;
pub use grid::SpatialGrid;
pub use path::{CachedPath, MobilityModel};
