//! Access-point deployment generation.
//!
//! The paper measured (§4.1) that nearly all open APs in its town sat on
//! channel 1 (28 %), 6 (33 %) or 11 (34 %); Cabernet reported 83 % on
//! those three in Boston. [`Deployment::poisson_roadside`] generates
//! synthetic deployments with that mix: AP positions follow a Poisson
//! process along the road with a configurable density, displaced laterally
//! as buildings would be.

use crate::geometry::Position;
use spider_simcore::SimRng;
use spider_wire::Channel;

/// Relative frequency of APs per channel.
#[derive(Debug, Clone)]
pub struct ChannelMix {
    weights: Vec<(Channel, f64)>,
}

impl ChannelMix {
    /// The paper's measured town mix: 28 % / 33 % / 34 % on channels
    /// 1/6/11 and the remaining 5 % spread over 3 and 9.
    pub fn paper_town() -> ChannelMix {
        ChannelMix {
            weights: vec![
                (Channel::CH1, 0.28),
                (Channel::CH6, 0.33),
                (Channel::CH11, 0.34),
                (Channel::new(3), 0.03),
                (Channel::new(9), 0.02),
            ],
        }
    }

    /// Cabernet's Boston mix: 39 % on channel 6, 83 % total on 1/6/11
    /// (§4.1), remainder spread.
    pub fn boston() -> ChannelMix {
        ChannelMix {
            weights: vec![
                (Channel::CH1, 0.22),
                (Channel::CH6, 0.39),
                (Channel::CH11, 0.22),
                (Channel::new(3), 0.06),
                (Channel::new(4), 0.05),
                (Channel::new(9), 0.06),
            ],
        }
    }

    /// Every AP on a single channel (for controlled micro-benchmarks).
    pub fn single(ch: Channel) -> ChannelMix {
        ChannelMix {
            weights: vec![(ch, 1.0)],
        }
    }

    /// A custom mix. Weights need not be normalised but must be
    /// non-negative with a positive sum.
    pub fn custom(weights: Vec<(Channel, f64)>) -> ChannelMix {
        assert!(
            weights.iter().map(|&(_, w)| w).sum::<f64>() > 0.0,
            "channel mix needs positive total weight"
        );
        ChannelMix { weights }
    }

    /// Sample a channel.
    pub fn sample(&self, rng: &mut SimRng) -> Channel {
        let ws: Vec<f64> = self.weights.iter().map(|&(_, w)| w).collect();
        self.weights[rng.pick_weighted(&ws)].0
    }

    /// The normalised probability of a channel under this mix.
    pub fn probability(&self, ch: Channel) -> f64 {
        let total: f64 = self.weights.iter().map(|&(_, w)| w).sum();
        self.weights
            .iter()
            .filter(|&&(c, _)| c == ch)
            .map(|&(_, w)| w / total)
            .sum()
    }
}

/// One deployed access point.
#[derive(Debug, Clone)]
pub struct ApSite {
    /// Stable identifier (index into the deployment).
    pub id: usize,
    /// Location.
    pub position: Position,
    /// Operating channel.
    pub channel: Channel,
    /// Backhaul capacity in bytes/second.
    pub backhaul_bps: f64,
    /// One-way backhaul latency to the wired server, seconds.
    pub backhaul_latency_s: f64,
    /// Mean DHCP-server response delay βmin..βmax handled by the
    /// netstack; stored here as (min, max) in seconds so deployments can
    /// mix fast and slow APs.
    pub dhcp_beta: (f64, f64),
    /// Whether the AP's DHCP server answers at all. Open but broken APs
    /// (captive portals, filtered DHCP, dead backhauls) are common in
    /// the wild and are exactly what join-history selection avoids.
    pub dhcp_responsive: bool,
}

/// A set of deployed APs.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    /// The sites.
    pub sites: Vec<ApSite>,
}

/// Parameters for [`Deployment::poisson_roadside`].
#[derive(Debug, Clone)]
pub struct RoadsideParams {
    /// Road length covered, metres.
    pub road_length_m: f64,
    /// AP density per kilometre of road.
    pub density_per_km: f64,
    /// Maximum lateral offset from the road axis, metres.
    pub max_offset_m: f64,
    /// Channel distribution.
    pub mix: ChannelMix,
    /// Backhaul capacity range (bytes/second), sampled uniformly.
    pub backhaul_bps: (f64, f64),
    /// One-way backhaul latency range (seconds), sampled uniformly.
    pub backhaul_latency_s: (f64, f64),
    /// DHCP response time bounds (βmin, βmax) in seconds applied to all
    /// APs.
    pub dhcp_beta: (f64, f64),
    /// Fraction of APs whose DHCP never answers.
    pub dead_dhcp_fraction: f64,
}

impl Default for RoadsideParams {
    fn default() -> Self {
        RoadsideParams {
            road_length_m: 5_000.0,
            density_per_km: 10.0,
            max_offset_m: 30.0,
            mix: ChannelMix::paper_town(),
            // 1–5 Mbps backhaul (Fig. 10 sweeps this band).
            backhaul_bps: (125_000.0, 625_000.0),
            backhaul_latency_s: (0.010, 0.040),
            // βmin = 500ms, βmax = 10s: the paper's model defaults.
            dhcp_beta: (0.5, 10.0),
            dead_dhcp_fraction: 0.0,
        }
    }
}

impl Deployment {
    /// Generate a roadside deployment: AP longitudinal positions follow a
    /// Poisson process with the given density along the x-axis, lateral
    /// offsets are uniform in ±`max_offset_m`.
    pub fn poisson_roadside(rng: &mut SimRng, params: &RoadsideParams) -> Deployment {
        let mean_gap_m = 1_000.0 / params.density_per_km;
        let mut sites = Vec::new();
        let mut x = rng.exponential(mean_gap_m);
        while x < params.road_length_m {
            let y = rng.uniform_in(-params.max_offset_m, params.max_offset_m);
            sites.push(ApSite {
                id: sites.len(),
                position: Position::new(x, y),
                channel: params.mix.sample(rng),
                backhaul_bps: rng.uniform_in(params.backhaul_bps.0, params.backhaul_bps.1),
                backhaul_latency_s: rng
                    .uniform_in(params.backhaul_latency_s.0, params.backhaul_latency_s.1),
                dhcp_beta: params.dhcp_beta,
                dhcp_responsive: !rng.chance(params.dead_dhcp_fraction),
            });
            x += rng.exponential(mean_gap_m);
        }
        Deployment { sites }
    }

    /// Generate a deployment along the perimeter of a rectangular loop
    /// route (the paper's town drives followed "the same route multiple
    /// times", §4.1). AP arc-length positions follow a Poisson process;
    /// lateral offsets are applied perpendicular to the local edge.
    pub fn poisson_loop(
        rng: &mut SimRng,
        width_m: f64,
        height_m: f64,
        params: &RoadsideParams,
    ) -> Deployment {
        let perimeter = 2.0 * (width_m + height_m);
        let mean_gap_m = 1_000.0 / params.density_per_km;
        let mut sites = Vec::new();
        let mut s = rng.exponential(mean_gap_m);
        while s < perimeter {
            let offset = rng.uniform_in(-params.max_offset_m, params.max_offset_m);
            // Map arc length to a point on the rectangle with the offset
            // applied perpendicular to the edge.
            let position = if s < width_m {
                Position::new(s, offset)
            } else if s < width_m + height_m {
                Position::new(width_m + offset, s - width_m)
            } else if s < 2.0 * width_m + height_m {
                Position::new(2.0 * width_m + height_m - s, height_m + offset)
            } else {
                Position::new(offset, perimeter - s)
            };
            sites.push(ApSite {
                id: sites.len(),
                position,
                channel: params.mix.sample(rng),
                backhaul_bps: rng.uniform_in(params.backhaul_bps.0, params.backhaul_bps.1),
                backhaul_latency_s: rng
                    .uniform_in(params.backhaul_latency_s.0, params.backhaul_latency_s.1),
                dhcp_beta: params.dhcp_beta,
                dhcp_responsive: !rng.chance(params.dead_dhcp_fraction),
            });
            s += rng.exponential(mean_gap_m);
        }
        Deployment { sites }
    }

    /// A fixed lab deployment: APs at the given positions/channels with
    /// identical backhaul, used for controlled micro-benchmarks (Fig. 10).
    pub fn lab(aps: Vec<(Position, Channel)>, backhaul_bps: f64) -> Deployment {
        Deployment {
            sites: aps
                .into_iter()
                .enumerate()
                .map(|(id, (position, channel))| ApSite {
                    id,
                    position,
                    channel,
                    backhaul_bps,
                    backhaul_latency_s: 0.005,
                    dhcp_beta: (0.05, 0.3),
                    dhcp_responsive: true,
                })
                .collect(),
        }
    }

    /// Sites operating on `ch`.
    pub fn on_channel(&self, ch: Channel) -> impl Iterator<Item = &ApSite> {
        self.sites.iter().filter(move |s| s.channel == ch)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_frequencies() {
        let mix = ChannelMix::paper_town();
        let mut rng = SimRng::new(1);
        let n = 50_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(mix.sample(&mut rng)).or_insert(0u32) += 1;
        }
        let f = |ch: Channel| counts.get(&ch).copied().unwrap_or(0) as f64 / n as f64;
        assert!((f(Channel::CH1) - 0.28).abs() < 0.01);
        assert!((f(Channel::CH6) - 0.33).abs() < 0.01);
        assert!((f(Channel::CH11) - 0.34).abs() < 0.01);
    }

    #[test]
    fn probability_is_normalised() {
        let mix = ChannelMix::paper_town();
        let total: f64 = (1..=14)
            .filter_map(Channel::try_new)
            .map(|c| mix.probability(c))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_density_is_respected() {
        let mut rng = SimRng::new(2);
        let params = RoadsideParams {
            road_length_m: 100_000.0,
            density_per_km: 10.0,
            ..Default::default()
        };
        let d = Deployment::poisson_roadside(&mut rng, &params);
        // Expect ~1000 APs; Poisson sd ~32.
        assert!((850..1150).contains(&d.len()), "{} APs", d.len());
        for s in &d.sites {
            assert!(s.position.x >= 0.0 && s.position.x <= 100_000.0);
            assert!(s.position.y.abs() <= 30.0);
            assert!(s.backhaul_bps >= 125_000.0 && s.backhaul_bps <= 625_000.0);
        }
        // ids are the indices
        for (i, s) in d.sites.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let params = RoadsideParams::default();
        let a = Deployment::poisson_roadside(&mut SimRng::new(3), &params);
        let b = Deployment::poisson_roadside(&mut SimRng::new(3), &params);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.channel, y.channel);
        }
    }

    #[test]
    fn on_channel_filters() {
        let d = Deployment::lab(
            vec![
                (Position::new(0.0, 0.0), Channel::CH1),
                (Position::new(10.0, 0.0), Channel::CH6),
                (Position::new(20.0, 0.0), Channel::CH1),
            ],
            500_000.0,
        );
        assert_eq!(d.on_channel(Channel::CH1).count(), 2);
        assert_eq!(d.on_channel(Channel::CH6).count(), 1);
        assert_eq!(d.on_channel(Channel::CH11).count(), 0);
        assert!(!d.is_empty());
    }

    #[test]
    fn single_mix() {
        let mix = ChannelMix::single(Channel::CH6);
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), Channel::CH6);
        }
        assert_eq!(mix.probability(Channel::CH6), 1.0);
        assert_eq!(mix.probability(Channel::CH1), 0.0);
    }
}
