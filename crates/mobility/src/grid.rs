//! Uniform spatial grid over a [`Deployment`].
//!
//! The world's hot loop asks one question thousands of times per
//! simulated second: *which APs are near the client right now?* A
//! linear scan answers it in O(all sites); for the dense multi-cell
//! deployments the roadmap targets (≥1,000 sites) that scan dominates
//! wall-clock time. [`SpatialGrid`] buckets sites into square cells of
//! side `cell_m` so a radius query only visits the handful of cells
//! overlapping the query disk.
//!
//! Determinism contract: [`SpatialGrid::within`] returns site ids in
//! ascending id order — exactly the order a linear scan over
//! `deployment.sites` would visit them — so replacing a scan with a
//! grid query never perturbs the sequence of RNG draws made while
//! iterating the result.

use crate::deployment::Deployment;
use crate::geometry::Position;
use spider_simcore::FxHashMap;

/// A uniform grid index over AP sites.
///
/// Build one with [`Deployment::grid`]; query with [`SpatialGrid::within`].
/// The grid borrows nothing: it stores `(id, position)` pairs, so it
/// stays valid for the lifetime of the world that captured the
/// deployment's site data at construction.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_m: f64,
    /// Sites bucketed by integer cell coordinate; each bucket is sorted
    /// by site id.
    cells: FxHashMap<(i64, i64), Vec<(usize, Position)>>,
    len: usize,
}

impl SpatialGrid {
    /// Build a grid with the given cell side length (metres) over a set
    /// of `(id, position)` sites.
    pub fn build(sites: impl IntoIterator<Item = (usize, Position)>, cell_m: f64) -> SpatialGrid {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive, got {cell_m}"
        );
        let mut cells: FxHashMap<(i64, i64), Vec<(usize, Position)>> = FxHashMap::default();
        let mut len = 0;
        for (id, pos) in sites {
            cells
                .entry(Self::cell_of(pos, cell_m))
                .or_default()
                .push((id, pos));
            len += 1;
        }
        for bucket in cells.values_mut() {
            bucket.sort_by_key(|&(id, _)| id);
        }
        SpatialGrid { cell_m, cells, len }
    }

    fn cell_of(pos: Position, cell_m: f64) -> (i64, i64) {
        (
            (pos.x / cell_m).floor() as i64,
            (pos.y / cell_m).floor() as i64,
        )
    }

    /// The cell side length in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of indexed sites.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no sites.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Collect the ids of every site within `radius_m` of `pos` into
    /// `out` (cleared first), in ascending id order.
    ///
    /// The distance test is inclusive (`d <= radius_m`), matching the
    /// linear scans this replaces.
    pub fn within_into(&self, pos: Position, radius_m: f64, out: &mut Vec<usize>) {
        out.clear();
        // NaN radii fall into the same arm as negative ones.
        if self.len == 0 || radius_m < 0.0 || radius_m.is_nan() {
            return;
        }
        let lo = Self::cell_of(
            Position::new(pos.x - radius_m, pos.y - radius_m),
            self.cell_m,
        );
        let hi = Self::cell_of(
            Position::new(pos.x + radius_m, pos.y + radius_m),
            self.cell_m,
        );
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &(id, p) in bucket {
                        if pos.distance_to(p) <= radius_m {
                            out.push(id);
                        }
                    }
                }
            }
        }
        // Cells are visited in row-major order, so ids arrive grouped by
        // cell, not globally sorted; restore the linear-scan order.
        out.sort_unstable();
    }

    /// Ids of every site within `radius_m` of `pos`, ascending.
    pub fn within(&self, pos: Position, radius_m: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_into(pos, radius_m, &mut out);
        out
    }
}

impl Deployment {
    /// Build a [`SpatialGrid`] over this deployment's sites with cell
    /// side `cell_m`. A cell size near the query radius (the radio
    /// horizon) keeps queries to at most a 3×3 cell neighbourhood.
    pub fn grid(&self, cell_m: f64) -> SpatialGrid {
        SpatialGrid::build(self.sites.iter().map(|s| (s.id, s.position)), cell_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::RoadsideParams;
    use spider_simcore::SimRng;

    /// Reference implementation: the linear scan the grid replaces.
    fn linear_within(dep: &Deployment, pos: Position, radius_m: f64) -> Vec<usize> {
        dep.sites
            .iter()
            .filter(|s| pos.distance_to(s.position) <= radius_m)
            .map(|s| s.id)
            .collect()
    }

    #[test]
    fn empty_grid_answers_empty() {
        let grid = SpatialGrid::build(std::iter::empty(), 100.0);
        assert!(grid.is_empty());
        assert!(grid.within(Position::ORIGIN, 1_000.0).is_empty());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let grid = SpatialGrid::build([(0, Position::new(100.0, 0.0))], 50.0);
        assert_eq!(grid.within(Position::ORIGIN, 100.0), vec![0]);
        assert!(grid.within(Position::ORIGIN, 99.999).is_empty());
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        // A site just left of the origin must land in cell (-1, -1),
        // not be truncated into cell (0, 0).
        let grid = SpatialGrid::build([(0, Position::new(-1.0, -1.0))], 100.0);
        assert_eq!(grid.within(Position::ORIGIN, 5.0), vec![0]);
        assert_eq!(grid.within(Position::new(-150.0, -150.0), 250.0), vec![0]);
    }

    #[test]
    fn results_are_in_ascending_id_order() {
        // Sites scattered so they land in different cells in an order
        // unrelated to id.
        let sites = vec![
            (3, Position::new(90.0, 0.0)),
            (0, Position::new(-90.0, 0.0)),
            (2, Position::new(0.0, 90.0)),
            (1, Position::new(0.0, -90.0)),
        ];
        let grid = SpatialGrid::build(sites, 60.0);
        assert_eq!(grid.within(Position::ORIGIN, 100.0), vec![0, 1, 2, 3]);
    }

    /// Property-style check: on random roadside deployments and random
    /// query points, the grid agrees exactly (membership and order)
    /// with the linear scan, across cell sizes smaller and larger than
    /// the query radius.
    #[test]
    fn grid_query_equals_linear_scan_on_random_deployments() {
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let params = RoadsideParams {
                road_length_m: 4_000.0,
                density_per_km: 40.0,
                ..Default::default()
            };
            let dep = Deployment::poisson_roadside(&mut rng, &params);
            for &cell_m in &[35.0, 130.0, 700.0] {
                let grid = dep.grid(cell_m);
                assert_eq!(grid.len(), dep.len());
                for q in 0..40 {
                    let pos = Position::new(
                        rng.uniform_in(-200.0, 4_200.0),
                        rng.uniform_in(-100.0, 100.0),
                    );
                    let radius = rng.uniform_in(0.0, 400.0);
                    assert_eq!(
                        grid.within(pos, radius),
                        linear_within(&dep, pos, radius),
                        "seed {seed} cell {cell_m} query {q}"
                    );
                }
            }
        }
    }
}
