//! Join-success-based AP selection (Design Choice 2, §3.1).
//!
//! "Instead of choosing APs with maximum end-to-end bandwidth, we select
//! APs that have the best history of successful joins." Each join attempt
//! is scored by how far it progressed — 0 (failed association) < `va`
//! (association only) < `vb` (got a DHCP lease) < `vc` (verified
//! end-to-end connectivity) — and an AP's utility is a recency-weighted
//! average of its attempt scores. Unseen open APs with sufficient signal
//! strength bootstrap at the maximum utility so each is tried at least
//! once; ties break on RSSI.

use spider_simcore::{FxHashMap, SimDuration, SimTime};
use spider_wire::{Channel, MacAddr, Ssid};

/// How far a join attempt progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// Link-layer association failed.
    Failed,
    /// Associated, but no DHCP lease.
    AssociatedOnly,
    /// Got a lease, but connectivity was never verified.
    LeaseOnly,
    /// Fully joined with verified end-to-end connectivity.
    FullyJoined,
}

/// Utility weighting parameters.
#[derive(Debug, Clone)]
pub struct UtilityConfig {
    /// Score for association-only attempts.
    pub va: f64,
    /// Score for lease-only attempts.
    pub vb: f64,
    /// Score for fully joined attempts (also the bootstrap value for
    /// never-tried APs).
    pub vc: f64,
    /// Recency weight α: `utility ← α·score + (1-α)·utility`. Larger α
    /// weighs recent attempts more.
    pub recency: f64,
    /// Minimum RSSI for an AP to be considered at all (the "sufficient
    /// signal strength" bootstrap filter).
    pub min_rssi_dbm: f64,
    /// How recently an AP must have been heard to be a candidate.
    pub freshness: SimDuration,
    /// After a failed attempt, the AP is excluded from selection for
    /// this long (prevents hammering a dead AP during one encounter).
    pub failure_cooldown: SimDuration,
    /// Weight of the measured end-to-end throughput in candidate
    /// ranking — the §4.8 extension ("incorporate ... end-to-end
    /// bandwidth estimates in addition to the past successful joins").
    /// 0 (the default) reproduces the paper's join-history-only policy;
    /// 1 weighs a 1 MB/s AP as heavily as a perfect join record.
    pub bandwidth_weight: f64,
}

impl Default for UtilityConfig {
    fn default() -> Self {
        UtilityConfig {
            va: 0.3,
            vb: 0.6,
            vc: 1.0,
            recency: 0.5,
            // Aligns with the reliable core of an outdoor cell (~60 m at
            // the default propagation): joining through the lossy edge
            // band mostly burns retries.
            min_rssi_dbm: -78.0,
            freshness: SimDuration::from_secs(4),
            failure_cooldown: SimDuration::from_secs(2),
            bandwidth_weight: 0.0,
        }
    }
}

impl JoinOutcome {
    fn score(self, cfg: &UtilityConfig) -> f64 {
        match self {
            JoinOutcome::Failed => 0.0,
            JoinOutcome::AssociatedOnly => cfg.va,
            JoinOutcome::LeaseOnly => cfg.vb,
            JoinOutcome::FullyJoined => cfg.vc,
        }
    }
}

/// What the scanner knows about one AP.
#[derive(Debug, Clone)]
pub struct ApRecord {
    /// Network name from its beacons.
    pub ssid: Ssid,
    /// Operating channel.
    pub channel: Channel,
    /// Smoothed signal strength.
    pub rssi_dbm: f64,
    /// When a beacon/probe response was last heard.
    pub last_seen: SimTime,
    /// Recency-weighted join utility.
    pub utility: f64,
    /// Join attempts recorded.
    pub attempts: u32,
    /// Earliest time this AP may be selected again.
    pub not_before: SimTime,
    /// Smoothed end-to-end throughput measured across past connections
    /// to this AP, bytes/second (`None` until first measured).
    pub bw_estimate: Option<f64>,
}

/// The scanner + utility table driving AP selection.
#[derive(Debug, Clone)]
pub struct UtilityTable {
    cfg: UtilityConfig,
    records: FxHashMap<MacAddr, ApRecord>,
}

impl UtilityTable {
    /// Create an empty table.
    pub fn new(cfg: UtilityConfig) -> UtilityTable {
        UtilityTable {
            cfg,
            records: FxHashMap::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &UtilityConfig {
        &self.cfg
    }

    /// Record a beacon or probe response from `bssid` (opportunistic
    /// scanning input).
    pub fn observe(
        &mut self,
        now: SimTime,
        bssid: MacAddr,
        ssid: &Ssid,
        channel: Channel,
        rssi_dbm: f64,
    ) {
        let vc = self.cfg.vc;
        let entry = self.records.entry(bssid).or_insert_with(|| ApRecord {
            ssid: ssid.clone(),
            channel,
            rssi_dbm,
            last_seen: now,
            // Bootstrap at maximum utility so new APs get tried once.
            utility: vc,
            attempts: 0,
            not_before: SimTime::ZERO,
            bw_estimate: None,
        });
        // An AP's SSID essentially never changes; cloning the string on
        // every overheard beacon would dominate the scanner's cost.
        if entry.ssid != *ssid {
            entry.ssid = ssid.clone();
        }
        entry.channel = channel;
        // Light smoothing of RSSI.
        entry.rssi_dbm = 0.7 * entry.rssi_dbm + 0.3 * rssi_dbm;
        entry.last_seen = now;
    }

    /// Record the outcome of a join attempt at `bssid`.
    pub fn record_outcome(&mut self, now: SimTime, bssid: MacAddr, outcome: JoinOutcome) {
        let score = outcome.score(&self.cfg);
        let cooldown = self.cfg.failure_cooldown;
        let alpha = self.cfg.recency;
        if let Some(rec) = self.records.get_mut(&bssid) {
            rec.utility = alpha * score + (1.0 - alpha) * rec.utility;
            rec.attempts += 1;
            if outcome == JoinOutcome::Failed {
                rec.not_before = now + cooldown;
            }
        }
    }

    /// Record a measured end-to-end throughput for a completed
    /// connection to `bssid` (EWMA, bytes/second).
    pub fn record_throughput(&mut self, bssid: MacAddr, bytes_per_sec: f64) {
        if let Some(rec) = self.records.get_mut(&bssid) {
            rec.bw_estimate = Some(match rec.bw_estimate {
                Some(prev) => 0.5 * prev + 0.5 * bytes_per_sec,
                None => bytes_per_sec,
            });
        }
    }

    /// Candidate score: join-history utility plus the (optional)
    /// bandwidth term. Unmeasured APs use the utility alone.
    fn score(&self, rec: &ApRecord) -> f64 {
        let bw_term = match rec.bw_estimate {
            Some(bw) if self.cfg.bandwidth_weight > 0.0 => {
                self.cfg.bandwidth_weight * (bw / 1e6).min(1.0)
            }
            _ => 0.0,
        };
        rec.utility + bw_term
    }

    /// Look up a record.
    pub fn get(&self, bssid: MacAddr) -> Option<&ApRecord> {
        self.records.get(&bssid)
    }

    /// Number of known APs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The best candidate AP to join now: fresh, strong enough, not
    /// cooling down, not in `in_use`, restricted to `channels` (if
    /// non-empty), ranked by utility then RSSI.
    pub fn best_candidate(
        &self,
        now: SimTime,
        channels: &[Channel],
        in_use: &[MacAddr],
    ) -> Option<(MacAddr, &ApRecord)> {
        self.records
            .iter()
            .filter(|(bssid, rec)| {
                now.saturating_since(rec.last_seen) <= self.cfg.freshness
                    && rec.rssi_dbm >= self.cfg.min_rssi_dbm
                    && now >= rec.not_before
                    && !in_use.contains(bssid)
                    && (channels.is_empty() || channels.contains(&rec.channel))
            })
            .max_by(|(a_id, a), (b_id, b)| {
                self.score(a)
                    .total_cmp(&self.score(b))
                    .then(a.rssi_dbm.total_cmp(&b.rssi_dbm))
                    // Deterministic final tie-break.
                    .then(b_id.cmp(a_id))
            })
            .map(|(bssid, rec)| (*bssid, rec))
    }

    /// Drop records not heard from within `horizon` (bounding memory on
    /// long drives).
    pub fn expire(&mut self, now: SimTime, horizon: SimDuration) {
        self.records
            .retain(|_, rec| now.saturating_since(rec.last_seen) <= horizon);
    }

    /// Number of fresh, usable APs per channel — the "AP density" input
    /// to the adaptive scheduler (§4.8).
    pub fn channel_census(&self, now: SimTime) -> FxHashMap<Channel, usize> {
        let mut census = FxHashMap::default();
        for rec in self.records.values() {
            if now.saturating_since(rec.last_seen) <= self.cfg.freshness
                && rec.rssi_dbm >= self.cfg.min_rssi_dbm
            {
                *census.entry(rec.channel).or_insert(0) += 1;
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> UtilityTable {
        UtilityTable::new(UtilityConfig::default())
    }

    fn observe(t: &mut UtilityTable, id: u64, ch: Channel, rssi: f64, now: SimTime) -> MacAddr {
        let mac = MacAddr::from_id(id);
        t.observe(now, mac, &Ssid::new(format!("ap{id}")), ch, rssi);
        mac
    }

    #[test]
    fn new_aps_bootstrap_at_max_utility() {
        let mut t = table();
        let mac = observe(&mut t, 1, Channel::CH6, -70.0, SimTime::ZERO);
        assert_eq!(t.get(mac).unwrap().utility, 1.0);
        assert_eq!(t.get(mac).unwrap().attempts, 0);
    }

    #[test]
    fn outcomes_move_utility() {
        let mut t = table();
        let mac = observe(&mut t, 1, Channel::CH6, -70.0, SimTime::ZERO);
        t.record_outcome(SimTime::from_secs(1), mac, JoinOutcome::Failed);
        let after_fail = t.get(mac).unwrap().utility;
        assert!((after_fail - 0.5).abs() < 1e-12); // 0.5*0 + 0.5*1.0
        t.record_outcome(SimTime::from_secs(2), mac, JoinOutcome::FullyJoined);
        let after_full = t.get(mac).unwrap().utility;
        assert!(after_full > after_fail);
        assert_eq!(t.get(mac).unwrap().attempts, 2);
    }

    #[test]
    fn recency_weights_recent_attempts_more() {
        let mut t = table();
        let mac = observe(&mut t, 1, Channel::CH6, -70.0, SimTime::ZERO);
        // Old success, then recent failures → low utility.
        t.record_outcome(SimTime::from_secs(1), mac, JoinOutcome::FullyJoined);
        t.record_outcome(SimTime::from_secs(2), mac, JoinOutcome::Failed);
        t.record_outcome(SimTime::from_secs(3), mac, JoinOutcome::Failed);
        assert!(t.get(mac).unwrap().utility < 0.3);
    }

    #[test]
    fn selection_prefers_high_utility_then_rssi() {
        let mut t = table();
        let now = SimTime::from_secs(10);
        let good = observe(&mut t, 1, Channel::CH6, -75.0, now);
        let bad = observe(&mut t, 2, Channel::CH6, -50.0, now);
        // Drive bad's utility down.
        t.record_outcome(now, bad, JoinOutcome::Failed);
        t.record_outcome(now, bad, JoinOutcome::Failed);
        // Past bad's cooldown:
        let later = now + SimDuration::from_secs(3);
        let (chosen, _) = t.best_candidate(later, &[], &[]).unwrap();
        // 'good' has stale last_seen though; re-observe both.
        let _ = chosen;
        observe(&mut t, 1, Channel::CH6, -75.0, later);
        observe(&mut t, 2, Channel::CH6, -50.0, later);
        let (chosen, _) = t.best_candidate(later, &[], &[]).unwrap();
        assert_eq!(chosen, good);
        // Equal utility -> RSSI breaks the tie.
        let strong = observe(&mut t, 3, Channel::CH6, -55.0, later);
        let (chosen, _) = t.best_candidate(later, &[], &[good]).unwrap();
        assert_eq!(chosen, strong);
    }

    #[test]
    fn stale_weak_cooling_and_in_use_are_excluded() {
        let mut t = table();
        let now = SimTime::from_secs(100);
        // Stale.
        observe(
            &mut t,
            1,
            Channel::CH6,
            -60.0,
            now - SimDuration::from_secs(10),
        );
        // Too weak.
        observe(&mut t, 2, Channel::CH6, -95.0, now);
        // Cooling down after failure.
        let cooling = observe(&mut t, 3, Channel::CH6, -60.0, now);
        t.record_outcome(now, cooling, JoinOutcome::Failed);
        // In use.
        let used = observe(&mut t, 4, Channel::CH6, -60.0, now);
        assert!(t.best_candidate(now, &[], &[used]).is_none());
    }

    #[test]
    fn channel_restriction() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        observe(&mut t, 1, Channel::CH1, -60.0, now);
        let ch6 = observe(&mut t, 2, Channel::CH6, -75.0, now);
        let (chosen, _) = t.best_candidate(now, &[Channel::CH6], &[]).unwrap();
        assert_eq!(chosen, ch6);
        assert!(t.best_candidate(now, &[Channel::CH11], &[]).is_none());
    }

    #[test]
    fn expiry_bounds_memory() {
        let mut t = table();
        observe(&mut t, 1, Channel::CH6, -60.0, SimTime::ZERO);
        observe(&mut t, 2, Channel::CH6, -60.0, SimTime::from_secs(100));
        t.expire(SimTime::from_secs(101), SimDuration::from_secs(30));
        assert_eq!(t.len(), 1);
        assert!(t.get(MacAddr::from_id(2)).is_some());
    }

    #[test]
    fn outcome_for_unknown_ap_is_ignored() {
        let mut t = table();
        t.record_outcome(SimTime::ZERO, MacAddr::from_id(9), JoinOutcome::FullyJoined);
        assert!(t.is_empty());
    }

    #[test]
    fn deterministic_tiebreak_on_identical_aps() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        observe(&mut t, 5, Channel::CH6, -60.0, now);
        observe(&mut t, 6, Channel::CH6, -60.0, now);
        let a = t.best_candidate(now, &[], &[]).unwrap().0;
        let b = t.best_candidate(now, &[], &[]).unwrap().0;
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;

    fn observe(t: &mut UtilityTable, id: u64, rssi: f64, now: SimTime) -> MacAddr {
        let mac = MacAddr::from_id(id);
        t.observe(now, mac, &Ssid::new(format!("ap{id}")), Channel::CH6, rssi);
        mac
    }

    #[test]
    fn bandwidth_term_is_inert_by_default() {
        let mut t = UtilityTable::new(UtilityConfig::default());
        let now = SimTime::from_secs(1);
        let fast_far = observe(&mut t, 1, -70.0, now);
        let slow_near = observe(&mut t, 2, -50.0, now);
        t.record_throughput(fast_far, 900_000.0);
        t.record_throughput(slow_near, 50_000.0);
        // bandwidth_weight = 0: RSSI tie-break still decides.
        let (chosen, _) = t.best_candidate(now, &[], &[]).unwrap();
        assert_eq!(chosen, slow_near);
    }

    #[test]
    fn bandwidth_weight_prefers_measured_fast_aps() {
        let mut t = UtilityTable::new(UtilityConfig {
            bandwidth_weight: 1.0,
            ..UtilityConfig::default()
        });
        let now = SimTime::from_secs(1);
        let fast_far = observe(&mut t, 1, -70.0, now);
        let slow_near = observe(&mut t, 2, -50.0, now);
        t.record_throughput(fast_far, 900_000.0);
        t.record_throughput(slow_near, 50_000.0);
        let (chosen, _) = t.best_candidate(now, &[], &[]).unwrap();
        assert_eq!(chosen, fast_far);
    }

    #[test]
    fn throughput_estimate_is_smoothed() {
        let mut t = UtilityTable::new(UtilityConfig::default());
        let now = SimTime::from_secs(1);
        let ap = observe(&mut t, 1, -60.0, now);
        t.record_throughput(ap, 100_000.0);
        t.record_throughput(ap, 300_000.0);
        let est = t.get(ap).unwrap().bw_estimate.unwrap();
        assert!((est - 200_000.0).abs() < 1e-6);
        // Unknown AP is a no-op.
        t.record_throughput(MacAddr::from_id(99), 1.0);
    }
}
