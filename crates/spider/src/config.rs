//! Spider configuration and the paper's four evaluation modes (§4.1).

use crate::blacklist::BlacklistConfig;
use crate::schedule::ChannelSchedule;
use crate::utility::UtilityConfig;
use spider_mac80211::ClientMacConfig;
use spider_netstack::DhcpClientConfig;
use spider_simcore::SimDuration;
use spider_wire::Channel;

/// The four configurations evaluated in §4.1.
#[derive(Debug, Clone)]
pub enum OperationMode {
    /// (1) Single-channel, single-AP: "Spider mimics off-the-shelf Wi-Fi
    /// on a single channel."
    SingleChannelSingleAp(Channel),
    /// (2) Single-channel, multi-AP: stay on one channel, join as many
    /// APs there as possible. The throughput winner.
    SingleChannelMultiAp(Channel),
    /// (3) Multi-channel, multi-AP: static rotation over 1/6/11. The
    /// connectivity winner.
    MultiChannelMultiAp {
        /// Total scheduling period (the paper uses 600 ms).
        period: SimDuration,
    },
    /// (4) Multi-channel, single-AP: rotate channels but hold one AP at a
    /// time.
    MultiChannelSingleAp {
        /// Total scheduling period.
        period: SimDuration,
    },
}

impl OperationMode {
    /// Short label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            OperationMode::SingleChannelSingleAp(ch) => format!("{ch}, Single-AP"),
            OperationMode::SingleChannelMultiAp(ch) => format!("{ch}, Multi-AP"),
            OperationMode::MultiChannelMultiAp { .. } => "Multi-channel, Multi-AP".into(),
            OperationMode::MultiChannelSingleAp { .. } => "Multi-channel, Single-AP".into(),
        }
    }
}

/// Full Spider configuration.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Number of virtual interfaces the LMM creates at boot (7 in the
    /// paper's experiments).
    pub num_ifaces: usize,
    /// Maximum APs joined concurrently (1 for the single-AP modes).
    pub max_concurrent: usize,
    /// The channel schedule (operation mode).
    pub schedule: ChannelSchedule,
    /// Link-layer timer tuning.
    pub mac: ClientMacConfig,
    /// DHCP timer tuning.
    pub dhcp: DhcpClientConfig,
    /// AP-selection utility parameters.
    pub utility: UtilityConfig,
    /// Whether interfaces start a TCP download once connected (disabled
    /// for join-only micro-benchmarks).
    pub tcp_enabled: bool,
    /// Client identity (namespaces interface MAC addresses).
    pub client_id: u64,
    /// Housekeeping (AP selection) cadence.
    pub housekeeping: SimDuration,
    /// Restrict AP candidates to these channels (defaults to the
    /// schedule's channels). Used by the §2.2 experiments, which measure
    /// join delays to channel-6 APs while the radio schedule spans
    /// several channels.
    pub candidate_channels: Option<Vec<Channel>>,
    /// Periodically broadcast probe requests on the current channel
    /// ("Spider can also be configured to periodically broadcast probe
    /// requests", §3.2.1). `None` = purely passive scanning.
    pub probe_interval: Option<SimDuration>,
    /// Exponential-backoff blacklist for APs whose joins fail (keeps a
    /// blacked-out or zombie AP from trapping the driver in a
    /// join/fail loop).
    pub blacklist: BlacklistConfig,
    /// Broadcast a probe request immediately when a connection dies, so
    /// replacement candidates are discovered faster than the passive
    /// beacon cadence allows.
    pub rescan_on_down: bool,
}

impl SpiderConfig {
    /// Spider defaults for a given operation mode: 7 interfaces, reduced
    /// link-layer (100 ms) and DHCP (200 ms) timeouts, paper utility
    /// weights.
    pub fn for_mode(mode: OperationMode, client_id: u64) -> SpiderConfig {
        let (schedule, max_concurrent) = match &mode {
            OperationMode::SingleChannelSingleAp(ch) => (ChannelSchedule::single(*ch), 1),
            OperationMode::SingleChannelMultiAp(ch) => (ChannelSchedule::single(*ch), 7),
            OperationMode::MultiChannelMultiAp { period } => {
                (ChannelSchedule::equal(&Channel::ORTHOGONAL, *period), 7)
            }
            OperationMode::MultiChannelSingleAp { period } => {
                (ChannelSchedule::equal(&Channel::ORTHOGONAL, *period), 1)
            }
        };
        SpiderConfig {
            num_ifaces: 7,
            max_concurrent,
            schedule,
            mac: ClientMacConfig::reduced(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(200)),
            utility: UtilityConfig::default(),
            tcp_enabled: true,
            client_id,
            housekeeping: SimDuration::from_millis(100),
            candidate_channels: None,
            probe_interval: None,
            blacklist: BlacklistConfig::default(),
            rescan_on_down: true,
        }
    }

    /// Override the schedule while keeping everything else.
    pub fn with_schedule(mut self, schedule: ChannelSchedule) -> SpiderConfig {
        self.schedule = schedule;
        self
    }

    /// Override link-layer and DHCP timers (the sweep of Table 3).
    pub fn with_timeouts(mut self, mac: ClientMacConfig, dhcp: DhcpClientConfig) -> SpiderConfig {
        self.mac = mac;
        self.dhcp = dhcp;
        self
    }

    /// Enable active scanning: broadcast a probe request this often.
    pub fn with_active_probing(mut self, interval: SimDuration) -> SpiderConfig {
        self.probe_interval = Some(interval);
        self
    }

    /// Restrict AP candidates to specific channels regardless of the
    /// schedule.
    pub fn with_candidates(mut self, channels: Vec<Channel>) -> SpiderConfig {
        self.candidate_channels = Some(channels);
        self
    }

    /// Override the interface count (Fig. 15's 1-vs-7 comparison).
    pub fn with_ifaces(mut self, n: usize) -> SpiderConfig {
        assert!(n >= 1);
        self.num_ifaces = n;
        self.max_concurrent = self.max_concurrent.min(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_map_to_schedules() {
        let c1 = SpiderConfig::for_mode(OperationMode::SingleChannelSingleAp(Channel::CH1), 0);
        assert!(c1.schedule.is_single_channel());
        assert_eq!(c1.max_concurrent, 1);

        let c2 = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH1), 0);
        assert!(c2.schedule.is_single_channel());
        assert_eq!(c2.max_concurrent, 7);

        let c3 = SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
            0,
        );
        assert_eq!(c3.schedule.channels().len(), 3);
        assert_eq!(c3.max_concurrent, 7);

        let c4 = SpiderConfig::for_mode(
            OperationMode::MultiChannelSingleAp {
                period: SimDuration::from_millis(600),
            },
            0,
        );
        assert_eq!(c4.max_concurrent, 1);
    }

    #[test]
    fn builders_compose() {
        let cfg = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH6), 1)
            .with_ifaces(3);
        assert_eq!(cfg.num_ifaces, 3);
        assert_eq!(cfg.max_concurrent, 3);
    }

    #[test]
    fn labels() {
        assert_eq!(
            OperationMode::SingleChannelMultiAp(Channel::CH1).label(),
            "ch1, Multi-AP"
        );
    }
}
