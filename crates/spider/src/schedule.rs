//! Static channel schedules.
//!
//! An *operation mode* is "the total amount of time to be scheduled among
//! channels and the fraction of time spent on each channel" (§3.2.2). The
//! schedule is round-robin with period `D`: channel *i* holds the radio
//! for `f_i · D`, in slot order. The feasibility constraint is the
//! optimisation framework's Eq. 10: Σ (f_i·D + ⌈f_i⌉·w) ≤ D.

use spider_radio::PhyParams;
use spider_simcore::{SimDuration, SimTime};
use spider_wire::Channel;

/// A static round-robin channel schedule.
#[derive(Debug, Clone)]
pub struct ChannelSchedule {
    period: SimDuration,
    /// `(channel, fraction)` slots in rotation order; fractions sum to 1.
    slots: Vec<(Channel, f64)>,
}

impl ChannelSchedule {
    /// Spend 100 % of the time on one channel (no switching ever).
    pub fn single(ch: Channel) -> ChannelSchedule {
        ChannelSchedule {
            period: SimDuration::from_millis(600),
            slots: vec![(ch, 1.0)],
        }
    }

    /// Equal time on each of the given channels with total period
    /// `period` (e.g. the paper's D = 600 ms over channels 1/6/11).
    pub fn equal(channels: &[Channel], period: SimDuration) -> ChannelSchedule {
        assert!(!channels.is_empty());
        let f = 1.0 / channels.len() as f64;
        ChannelSchedule {
            period,
            slots: channels.iter().map(|&c| (c, f)).collect(),
        }
    }

    /// A custom schedule. Fractions must be positive and sum to ~1.
    pub fn custom(period: SimDuration, slots: Vec<(Channel, f64)>) -> ChannelSchedule {
        assert!(!slots.is_empty(), "schedule needs at least one slot");
        assert!(!period.is_zero(), "period must be positive");
        let sum: f64 = slots.iter().map(|&(_, f)| f).sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "slot fractions must sum to 1, got {sum}"
        );
        assert!(
            slots.iter().all(|&(_, f)| f > 0.0),
            "slot fractions must be positive"
        );
        ChannelSchedule { period, slots }
    }

    /// The paper's experimental schedule notation "(x, y, z)" — percent
    /// of a period dedicated to channels 1, 6 and 11 (zeros skipped),
    /// e.g. `(100, 0, 0)` or `(50, 0, 50)` from Fig. 10.
    pub fn percent_1_6_11(p1: u32, p6: u32, p11: u32, period: SimDuration) -> ChannelSchedule {
        let total = (p1 + p6 + p11) as f64;
        assert!(total > 0.0);
        let mut slots = Vec::new();
        for (ch, p) in [(Channel::CH1, p1), (Channel::CH6, p6), (Channel::CH11, p11)] {
            if p > 0 {
                slots.push((ch, p as f64 / total));
            }
        }
        ChannelSchedule { period, slots }
    }

    /// Scheduling period `D`.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The slots.
    pub fn slots(&self) -> &[(Channel, f64)] {
        &self.slots
    }

    /// Channels appearing in the schedule.
    pub fn channels(&self) -> Vec<Channel> {
        self.slots.iter().map(|&(c, _)| c).collect()
    }

    /// Whether the schedule never switches.
    pub fn is_single_channel(&self) -> bool {
        self.slots.len() == 1
    }

    /// The fraction of time on `ch` (the model's `f_i`).
    pub fn fraction(&self, ch: Channel) -> f64 {
        self.slots
            .iter()
            .filter(|&&(c, _)| c == ch)
            .map(|&(_, f)| f)
            .sum()
    }

    /// The channel scheduled at time `now`.
    pub fn channel_at(&self, now: SimTime) -> Channel {
        if self.slots.len() == 1 {
            return self.slots[0].0;
        }
        let phase = now.as_micros() % self.period.as_micros();
        let mut acc = 0u64;
        for &(ch, f) in &self.slots {
            acc += (self.period.as_micros() as f64 * f).round() as u64;
            if phase < acc {
                return ch;
            }
        }
        self.slots.last().unwrap().0
    }

    /// The next instant at which the scheduled channel changes (strictly
    /// after `now`). For a single-channel schedule this is
    /// [`SimTime::MAX`].
    pub fn next_boundary(&self, now: SimTime) -> SimTime {
        if self.slots.len() == 1 {
            return SimTime::MAX;
        }
        let period_us = self.period.as_micros();
        let phase = now.as_micros() % period_us;
        let mut acc = 0u64;
        for &(_, f) in &self.slots {
            acc += (period_us as f64 * f).round() as u64;
            if phase < acc {
                let boundary = acc.min(period_us);
                return SimTime::from_micros(now.as_micros() - phase + boundary);
            }
        }
        SimTime::from_micros(now.as_micros() - phase + period_us)
    }

    /// Eq. 10 feasibility: the slot times plus one switch per slot must
    /// fit in the period. Returns the slack (negative = infeasible).
    pub fn slack(&self, phy: &PhyParams) -> f64 {
        if self.slots.len() == 1 {
            return 0.0;
        }
        let switches = self.slots.len() as f64;
        let w = phy.switch_latency(0).as_secs_f64();
        let d = self.period.as_secs_f64();
        let used: f64 = self.slots.iter().map(|&(_, f)| f * d).sum::<f64>() + switches * w;
        d - used
    }

    /// Whether the schedule satisfies Eq. 10 under `phy` — note switch
    /// time comes out of the slots themselves in our implementation, so
    /// a schedule is usable if each slot is at least one switch long.
    pub fn is_feasible(&self, phy: &PhyParams) -> bool {
        if self.slots.len() == 1 {
            return true;
        }
        let w = phy.switch_latency(0).as_secs_f64();
        let d = self.period.as_secs_f64();
        self.slots.iter().all(|&(_, f)| f * d > w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_never_switches() {
        let s = ChannelSchedule::single(Channel::CH1);
        assert!(s.is_single_channel());
        assert_eq!(s.channel_at(SimTime::from_millis(123)), Channel::CH1);
        assert_eq!(s.next_boundary(SimTime::from_millis(123)), SimTime::MAX);
        assert_eq!(s.fraction(Channel::CH1), 1.0);
        assert_eq!(s.fraction(Channel::CH6), 0.0);
    }

    #[test]
    fn equal_three_channel_rotation() {
        let s = ChannelSchedule::equal(&Channel::ORTHOGONAL, SimDuration::from_millis(600));
        // 200ms per channel.
        assert_eq!(s.channel_at(SimTime::from_millis(0)), Channel::CH1);
        assert_eq!(s.channel_at(SimTime::from_millis(199)), Channel::CH1);
        assert_eq!(s.channel_at(SimTime::from_millis(200)), Channel::CH6);
        assert_eq!(s.channel_at(SimTime::from_millis(420)), Channel::CH11);
        // Wraps around the period.
        assert_eq!(s.channel_at(SimTime::from_millis(600)), Channel::CH1);
        assert_eq!(s.channel_at(SimTime::from_millis(800)), Channel::CH6);
    }

    #[test]
    fn boundaries_are_strictly_future() {
        let s = ChannelSchedule::equal(&Channel::ORTHOGONAL, SimDuration::from_millis(600));
        assert_eq!(s.next_boundary(SimTime::ZERO), SimTime::from_millis(200));
        assert_eq!(
            s.next_boundary(SimTime::from_millis(200)),
            SimTime::from_millis(400)
        );
        assert_eq!(
            s.next_boundary(SimTime::from_millis(599)),
            SimTime::from_millis(600)
        );
        assert_eq!(
            s.next_boundary(SimTime::from_millis(1_250)),
            SimTime::from_millis(1_400)
        );
    }

    #[test]
    fn skewed_schedule() {
        let s = ChannelSchedule::custom(
            SimDuration::from_millis(400),
            vec![(Channel::CH6, 0.75), (Channel::CH1, 0.25)],
        );
        assert_eq!(s.channel_at(SimTime::from_millis(299)), Channel::CH6);
        assert_eq!(s.channel_at(SimTime::from_millis(300)), Channel::CH1);
        assert!((s.fraction(Channel::CH6) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn percent_notation() {
        let s = ChannelSchedule::percent_1_6_11(50, 0, 50, SimDuration::from_millis(200));
        assert_eq!(s.slots().len(), 2);
        assert_eq!(s.channels(), vec![Channel::CH1, Channel::CH11]);
        let single = ChannelSchedule::percent_1_6_11(100, 0, 0, SimDuration::from_millis(400));
        assert!(single.is_single_channel());
    }

    #[test]
    fn feasibility_under_switch_cost() {
        let phy = PhyParams::b11();
        // 200ms slots dwarf a 5ms switch.
        let ok = ChannelSchedule::equal(&Channel::ORTHOGONAL, SimDuration::from_millis(600));
        assert!(ok.is_feasible(&phy));
        assert!(ok.slack(&phy) < 0.0); // switches eat into slots
                                       // 3ms slots are shorter than the switch itself.
        let bad = ChannelSchedule::equal(&Channel::ORTHOGONAL, SimDuration::from_millis(9));
        assert!(!bad.is_feasible(&phy));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalised() {
        ChannelSchedule::custom(
            SimDuration::from_millis(100),
            vec![(Channel::CH1, 0.5), (Channel::CH6, 0.2)],
        );
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// channel_at is consistent with next_boundary: the channel is
        /// constant within [now, boundary).
        #[test]
        fn channel_constant_until_boundary(t in 0u64..10_000_000) {
            let s = ChannelSchedule::custom(
                SimDuration::from_millis(500),
                vec![(Channel::CH1, 0.4), (Channel::CH6, 0.35), (Channel::CH11, 0.25)],
            );
            let now = SimTime::from_micros(t);
            let ch = s.channel_at(now);
            let boundary = s.next_boundary(now);
            prop_assert!(boundary > now);
            let just_before = SimTime::from_micros(boundary.as_micros() - 1);
            prop_assert_eq!(s.channel_at(just_before), ch);
            let just_after = boundary;
            prop_assert_ne!(s.channel_at(just_after), ch);
        }
        }
    }
}
