//! The Spider driver: channel scheduling, PSM choreography, opportunistic
//! scanning and link management glued over the virtual interfaces.
//!
//! Implements [`ClientSystem`] so the simulation world can drive it
//! exactly like the baseline drivers.

use crate::blacklist::ApBlacklist;
use crate::config::SpiderConfig;
use crate::iface::{ClientIface, IfaceEvent};
use crate::schedule::ChannelSchedule;
use crate::utility::{JoinOutcome, UtilityTable};
use spider_mac80211::{ApTarget, ClientObservation, ClientSystem, DriverAction, JoinLog, RxFrame};
use spider_netstack::{LeaseCache, PingConfig};
use spider_simcore::{SimDuration, SimTime};
use spider_wire::{Channel, Frame, FrameBody, MacAddr};

/// The Spider client system.
// Clone backs `ClientSystem::clone_boxed`: every field — interfaces,
// utility table, lease cache, blacklist, hot caches — is part of the
// world snapshot and must copy deeply (DESIGN.md §13).
#[derive(Clone)]
pub struct SpiderDriver {
    cfg: SpiderConfig,
    ifaces: Vec<ClientIface>,
    utility: UtilityTable,
    lease_cache: LeaseCache,
    blacklist: ApBlacklist,
    /// Set while absorbing events from a driver-initiated teardown (IP
    /// collision): those Downs are not the AP's fault.
    suppress_blacklist: bool,
    log: JoinLog,
    /// Tuned channel; `None` while a switch is in flight.
    current: Option<Channel>,
    switching_to: Option<Channel>,
    next_housekeeping: SimTime,
    next_probe: SimTime,
    /// Per-interface (bssid, connected-at, delivered-at-connect) markers
    /// for end-to-end throughput feedback into the utility table.
    sessions: Vec<Option<(MacAddr, SimTime, u64)>>,
    /// Channel switches requested (observability; the radio itself also
    /// counts).
    pub switches_requested: u64,
    /// Interface MAC addresses packed contiguously: frame routing scans
    /// this 42-byte strip instead of striding over the full
    /// [`ClientIface`] structs (one cache line vs seven).
    iface_addrs: Vec<MacAddr>,
    /// Per-interface `next_wakeup`, refreshed by [`Self::refresh_hot`]
    /// at the end of every mutating entry point. Lets `poll_into` skip
    /// interfaces with nothing due and `next_wakeup` answer without
    /// walking the interface structs.
    iface_wakeups: Vec<SimTime>,
    /// Per-interface delivered-bytes snapshots backing `hot_delivered`.
    iface_delivered: Vec<u64>,
    /// Per-interface connectivity snapshots backing `hot_connected`.
    iface_connected: Vec<bool>,
    /// Cached sum of per-interface delivered bytes (see `iface_wakeups`).
    hot_delivered: u64,
    /// Cached any-interface-connected flag (see `iface_wakeups`).
    hot_connected: bool,
    /// Set by paths that may touch interfaces other than the one being
    /// driven (IP-collision teardown, AP selection); tells the entry
    /// point to do a full [`Self::refresh_hot`] instead of the
    /// single-interface refresh.
    hot_dirty_all: bool,
}

impl SpiderDriver {
    /// Create a driver; the radio is assumed initially tuned to the first
    /// scheduled channel.
    pub fn new(cfg: SpiderConfig) -> SpiderDriver {
        let ifaces: Vec<ClientIface> = (0..cfg.num_ifaces)
            .map(|i| {
                ClientIface::new(
                    i,
                    MacAddr::from_id(cfg.client_id * 1_000 + i as u64 + 1),
                    cfg.mac.clone(),
                    cfg.dhcp.clone(),
                    PingConfig::paper(i as u16),
                    cfg.tcp_enabled,
                )
            })
            .collect();
        let utility = UtilityTable::new(cfg.utility.clone());
        let current = Some(cfg.schedule.channel_at(SimTime::ZERO));
        let sessions = vec![None; cfg.num_ifaces];
        let blacklist = ApBlacklist::new(cfg.blacklist.clone());
        let iface_addrs = ifaces.iter().map(|i: &ClientIface| i.addr).collect();
        let iface_wakeups = ifaces
            .iter()
            .map(|i: &ClientIface| i.next_wakeup())
            .collect();
        let n = cfg.num_ifaces;
        SpiderDriver {
            cfg,
            ifaces,
            utility,
            lease_cache: LeaseCache::new(),
            blacklist,
            suppress_blacklist: false,
            log: JoinLog::new(),
            current,
            switching_to: None,
            next_housekeeping: SimTime::ZERO,
            next_probe: SimTime::ZERO,
            sessions,
            switches_requested: 0,
            iface_addrs,
            iface_wakeups,
            iface_delivered: vec![0; n],
            iface_connected: vec![false; n],
            hot_delivered: 0,
            hot_connected: false,
            hot_dirty_all: false,
        }
    }

    /// Recompute the packed hot-state caches in a single pass over the
    /// interfaces. Must run at the end of every entry point that can
    /// mutate interface state ([`ClientSystem::poll_into`],
    /// [`ClientSystem::on_frame_into`] when a frame was routed,
    /// [`ClientSystem::on_switch_complete_into`]); the caches are what
    /// `next_wakeup`/`observe` and the due-check in `poll_into` read,
    /// replacing three separate walks per delivered event with one.
    fn refresh_hot(&mut self) {
        let mut delivered = 0u64;
        let mut connected = false;
        for (idx, iface) in self.ifaces.iter().enumerate() {
            self.iface_wakeups[idx] = iface.next_wakeup();
            let d = iface.delivered_bytes();
            let c = iface.is_connected();
            self.iface_delivered[idx] = d;
            self.iface_connected[idx] = c;
            delivered += d;
            connected |= c;
        }
        self.hot_delivered = delivered;
        self.hot_connected = connected;
        self.hot_dirty_all = false;
    }

    /// Single-interface variant of [`Self::refresh_hot`] for the common
    /// case where only interface `idx` was driven. Falls back to the
    /// full pass when another path flagged a wider mutation.
    fn refresh_one(&mut self, idx: usize) {
        if self.hot_dirty_all {
            self.refresh_hot();
            return;
        }
        let iface = &self.ifaces[idx];
        self.iface_wakeups[idx] = iface.next_wakeup();
        let d = iface.delivered_bytes();
        let c = iface.is_connected();
        self.hot_delivered = self.hot_delivered - self.iface_delivered[idx] + d;
        self.iface_delivered[idx] = d;
        if c != self.iface_connected[idx] {
            self.iface_connected[idx] = c;
            self.hot_connected = self.iface_connected.iter().any(|&b| b);
        }
    }

    /// The channel the driver believes it is tuned to.
    pub fn current_channel(&self) -> Option<Channel> {
        self.current
    }

    /// `iwconfig`-style status dump: one line per virtual interface —
    /// the paper's Design Choice 3 exposes each connection as a separate
    /// Linux interface precisely so ordinary tooling can inspect it.
    pub fn ifconfig(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for iface in &self.ifaces {
            let _ = write!(out, "ath{}: ", iface.index);
            match iface.target() {
                None => {
                    let _ = writeln!(out, "unassociated");
                }
                Some(t) => {
                    let ip = iface
                        .current_lease()
                        .map(|l| l.ip.to_string())
                        .unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "{} bssid {} {} ip {} [{:?}]{}",
                        t.ssid,
                        t.bssid,
                        t.channel,
                        ip,
                        iface.phase(),
                        if iface.is_connected() { " UP" } else { "" },
                    );
                }
            }
        }
        out
    }

    /// The utility table (for experiment introspection).
    pub fn utility_table(&self) -> &UtilityTable {
        &self.utility
    }

    /// The lease cache (introspection).
    pub fn lease_cache(&self) -> &LeaseCache {
        &self.lease_cache
    }

    /// The AP blacklist (introspection).
    pub fn blacklist(&self) -> &ApBlacklist {
        &self.blacklist
    }

    /// Total gateway resolutions across all interfaces — one per lease
    /// bind (see [`spider_netstack::GatewayArp`]). A rejoin after an
    /// ARP-poison teardown shows up as this advancing past the first
    /// join: recovery re-resolved the gateway.
    pub fn gateway_resolutions(&self) -> u64 {
        self.ifaces
            .iter()
            .map(|i| i.gateway_arp().resolutions())
            .sum()
    }

    /// Interfaces currently associated at the link layer.
    pub fn associated_count(&self) -> usize {
        self.ifaces.iter().filter(|i| i.is_associated()).count()
    }

    /// Interfaces with verified connectivity.
    pub fn connected_count(&self) -> usize {
        self.ifaces.iter().filter(|i| i.is_connected()).count()
    }

    /// Replace the channel schedule at runtime ("the link management
    /// module provides support for dynamically changing the schedule",
    /// §3.2.2). Used by the adaptive extension.
    pub fn set_schedule(&mut self, schedule: ChannelSchedule) {
        self.cfg.schedule = schedule;
    }

    /// The active schedule.
    pub fn schedule(&self) -> &ChannelSchedule {
        &self.cfg.schedule
    }

    fn on_channel(&self, iface: &ClientIface) -> bool {
        match (self.current, iface.target()) {
            (Some(cur), Some(t)) => cur == t.channel,
            _ => false,
        }
    }

    /// Consume interface events into driver actions + bookkeeping.
    fn absorb(
        &mut self,
        now: SimTime,
        iface_idx: usize,
        events: Vec<IfaceEvent>,
        actions: &mut Vec<DriverAction>,
    ) {
        for ev in events {
            match ev {
                IfaceEvent::Transmit(frame) => actions.push(DriverAction::Transmit {
                    iface: iface_idx,
                    frame,
                }),
                IfaceEvent::GotLease { bssid, lease, .. } => {
                    self.lease_cache.insert(bssid, lease);
                    // IP-collision rule (§3.2.2): "if the same IP address
                    // is assigned to different virtual interfaces by
                    // different APs, we only use the most recently
                    // assigned interface" — tear the older one down.
                    let colliding: Vec<usize> = self
                        .ifaces
                        .iter()
                        .enumerate()
                        .filter(|(j, other)| {
                            *j != iface_idx && other.current_lease().map(|l| l.ip) == Some(lease.ip)
                        })
                        .map(|(j, _)| j)
                        .collect();
                    for j in colliding {
                        // Another interface mutates here: the entry
                        // point's single-interface cache refresh is no
                        // longer sufficient.
                        self.hot_dirty_all = true;
                        let evs = self.ifaces[j].teardown(now);
                        // Not the AP's fault — don't let the recursive
                        // absorb blacklist it.
                        let prev = self.suppress_blacklist;
                        self.suppress_blacklist = true;
                        self.absorb(now, j, evs, actions);
                        self.suppress_blacklist = prev;
                    }
                }
                IfaceEvent::ConnectivityUp { bssid, .. } => {
                    self.utility
                        .record_outcome(now, bssid, JoinOutcome::FullyJoined);
                    self.blacklist.record_success(bssid);
                    self.sessions[iface_idx] =
                        Some((bssid, now, self.ifaces[iface_idx].delivered_bytes()));
                }
                IfaceEvent::Down { bssid, outcome } => {
                    if let Some(outcome) = outcome {
                        self.utility.record_outcome(now, bssid, outcome);
                    }
                    // Feed the session's measured throughput back into the
                    // selection table (§4.8 extension; inert unless
                    // `bandwidth_weight > 0`).
                    if let Some((session_bssid, up_at, bytes_at_up)) =
                        self.sessions[iface_idx].take()
                    {
                        if session_bssid == bssid {
                            let span = now.saturating_since(up_at).as_secs_f64();
                            if span > 0.5 {
                                let bytes = self.ifaces[iface_idx].delivered_bytes() - bytes_at_up;
                                self.utility.record_throughput(bssid, bytes as f64 / span);
                            }
                        }
                    }
                    // A dead or failed AP goes into exponential-backoff
                    // blacklist so selection doesn't loop on it while it
                    // is still beaconing attractively.
                    if !self.suppress_blacklist && bssid != MacAddr::BROADCAST {
                        self.blacklist.record_failure(now, bssid);
                    }
                    // Re-scan right away: a broadcast probe solicits
                    // responses from every AP on the current channel, so
                    // a replacement is found faster than waiting out the
                    // beacon interval.
                    if self.cfg.rescan_on_down && self.current.is_some() {
                        let src = self.ifaces[iface_idx].addr;
                        actions.push(DriverAction::Transmit {
                            iface: iface_idx,
                            frame: Frame {
                                src,
                                dst: MacAddr::BROADCAST,
                                bssid: MacAddr::BROADCAST,
                                body: FrameBody::ProbeRequest { ssid: None },
                            },
                        });
                    }
                    // Try to rebind immediately.
                    self.next_housekeeping = now;
                }
                IfaceEvent::PortalSuspected { bssid } => {
                    // A captive portal answers pings but delivers nothing:
                    // demote straight to the blacklist ceiling so selection
                    // does not keep walking into the same walled garden
                    // (the matching `Down` follows and cannot shorten it).
                    if !self.suppress_blacklist && bssid != MacAddr::BROADCAST {
                        self.blacklist.record_portal(now, bssid);
                    }
                }
                IfaceEvent::LeaseRejected { bssid } => {
                    // The server NAKed the cached lease: it is stale.
                    self.lease_cache.invalidate(bssid);
                }
            }
        }
    }

    /// Assign idle interfaces to the best candidate APs.
    fn select_aps(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        loop {
            let busy = self.ifaces.iter().filter(|i| i.is_busy()).count();
            if busy >= self.cfg.max_concurrent {
                return;
            }
            let now_ready = |i: &ClientIface| !i.is_busy() && i.dhcp_ready(now);
            let Some(idle_idx) = self.ifaces.iter().position(now_ready) else {
                return;
            };
            let mut in_use: Vec<MacAddr> = self.ifaces.iter().filter_map(|i| i.bssid()).collect();
            // Blacklisted APs are excluded from selection exactly like
            // ones we are already bound to.
            in_use.extend(self.blacklist.blocked(now));
            let channels = self
                .cfg
                .candidate_channels
                .clone()
                .unwrap_or_else(|| self.cfg.schedule.channels());
            let Some((bssid, rec)) = self.utility.best_candidate(now, &channels, &in_use) else {
                return;
            };
            let target = ApTarget {
                bssid,
                ssid: rec.ssid.clone(),
                channel: rec.channel,
            };
            let cached = self.lease_cache.lookup(now, bssid);
            self.hot_dirty_all = true;
            self.ifaces[idle_idx].start_join(now, target, cached);
            // Give it an immediate poll so the first frame goes out now.
            let on_ch = self.on_channel(&self.ifaces[idle_idx]);
            let mut log = std::mem::take(&mut self.log);
            let evs = self.ifaces[idle_idx].poll(now, on_ch, &mut log);
            self.log = log;
            self.absorb(now, idle_idx, evs, actions);
        }
    }

    /// PSM choreography + switch initiation when the schedule says so.
    fn drive_schedule(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        if self.switching_to.is_some() {
            return; // mid-switch
        }
        let desired = self.cfg.schedule.channel_at(now);
        if self.current == Some(desired) {
            return;
        }
        // Park every associated interface on the old channel.
        if let Some(cur) = self.current {
            for (idx, iface) in self.ifaces.iter().enumerate() {
                if iface.is_associated() && iface.target().map(|t| t.channel) == Some(cur) {
                    if let Some(bssid) = iface.bssid() {
                        actions.push(DriverAction::Transmit {
                            iface: idx,
                            frame: Frame {
                                src: iface.addr,
                                dst: bssid,
                                bssid,
                                body: FrameBody::Null { power_save: true },
                            },
                        });
                    }
                }
            }
        }
        self.switching_to = Some(desired);
        self.current = None;
        self.switches_requested += 1;
        actions.push(DriverAction::SwitchChannel(desired));
    }
}

impl ClientSystem for SpiderDriver {
    fn label(&self) -> String {
        let sched = &self.cfg.schedule;
        let chans: Vec<String> = sched
            .slots()
            .iter()
            .map(|(c, f)| format!("{c}:{:.0}%", f * 100.0))
            .collect();
        format!(
            "Spider[{} ifaces, max {} APs, {}]",
            self.cfg.num_ifaces,
            self.cfg.max_concurrent,
            chans.join("/")
        )
    }

    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, actions: &mut Vec<DriverAction>) {
        // Opportunistic scanning: absorb any beacon / probe response we
        // overhear, whether or not it was addressed to us.
        match &rx.frame.body {
            FrameBody::Beacon { ssid, channel, .. }
            | FrameBody::ProbeResponse { ssid, channel } => {
                if let Some(rssi) = rx.rssi_dbm {
                    self.utility
                        .observe(now, rx.frame.src, ssid, *channel, rssi);
                }
            }
            _ => {}
        }
        // Route to the owning interface by destination address (the
        // packed address strip, not the interface structs). Broadcast
        // frames never match an interface address, so they go straight
        // to the DHCP-chaddr fallback — beacons (the bulk of the event
        // stream) skip the scan entirely.
        let idx = if rx.frame.dst == MacAddr::BROADCAST {
            // Broadcast DHCP responses address the chaddr inside.
            if let FrameBody::Data { packet, .. } = &rx.frame.body {
                if let spider_wire::ip::L4::Dhcp(msg) = &packet.payload {
                    self.iface_addrs.iter().position(|a| *a == msg.chaddr)
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            self.iface_addrs.iter().position(|a| rx.frame.dst == *a)
        };
        if let Some(idx) = idx {
            let mut log = std::mem::take(&mut self.log);
            let evs = self.ifaces[idx].on_frame(now, rx.frame, &mut log);
            self.log = log;
            self.absorb(now, idx, evs, actions);
            // Flush any transmissions unlocked by the state change (e.g.
            // the assoc request right after an auth response). Steady
            // connected interfaces skip this: their polls are
            // deadline-driven and the next wakeup reproduces the work.
            if self.ifaces[idx].needs_immediate_poll(now) {
                let on_ch = self.on_channel(&self.ifaces[idx]);
                let mut log = std::mem::take(&mut self.log);
                let evs2 = self.ifaces[idx].poll(now, on_ch, &mut log);
                self.log = log;
                self.absorb(now, idx, evs2, actions);
            }
            self.refresh_one(idx);
        }
    }

    fn on_switch_complete_into(
        &mut self,
        now: SimTime,
        ch: Channel,
        actions: &mut Vec<DriverAction>,
    ) {
        self.current = Some(ch);
        self.switching_to = None;
        // Wake every associated interface on the new channel (flushes the
        // AP-side PSM buffers).
        for (idx, iface) in self.ifaces.iter().enumerate() {
            if iface.is_associated() && iface.target().map(|t| t.channel) == Some(ch) {
                if let Some(bssid) = iface.bssid() {
                    actions.push(DriverAction::Transmit {
                        iface: idx,
                        frame: Frame {
                            src: iface.addr,
                            dst: bssid,
                            bssid,
                            body: FrameBody::Null { power_save: false },
                        },
                    });
                }
            }
        }
        // Immediately drive interfaces that were waiting for this channel.
        for idx in 0..self.ifaces.len() {
            let on_ch = self.on_channel(&self.ifaces[idx]);
            if on_ch {
                let mut log = std::mem::take(&mut self.log);
                let evs = self.ifaces[idx].poll(now, true, &mut log);
                self.log = log;
                self.absorb(now, idx, evs, actions);
            }
        }
        self.refresh_hot();
    }

    fn poll_into(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        self.drive_schedule(now, actions);
        for idx in 0..self.ifaces.len() {
            // Interface polls are deadline-driven: one with nothing due
            // is a no-op, so skip it straight off the cached wakeup
            // strip. Phase transitions and joins happen in `on_frame` /
            // `select_aps`, which refresh the cache themselves.
            if self.iface_wakeups[idx] > now {
                continue;
            }
            let on_ch = self.on_channel(&self.ifaces[idx]);
            let mut log = std::mem::take(&mut self.log);
            let evs = self.ifaces[idx].poll(now, on_ch, &mut log);
            self.log = log;
            self.absorb(now, idx, evs, actions);
            self.refresh_one(idx);
        }
        if now >= self.next_housekeeping {
            self.next_housekeeping = now + self.cfg.housekeeping;
            self.utility.expire(now, SimDuration::from_secs(3_600));
            self.blacklist.prune(now);
            self.lease_cache.evict_expired(now);
            self.select_aps(now, actions);
        }
        // Active scanning (§3.2.1, optional): a broadcast probe request
        // solicits probe responses from every AP on the current channel,
        // feeding the scanner faster than beacons alone.
        if let (Some(interval), Some(_ch)) = (self.cfg.probe_interval, self.current) {
            if now >= self.next_probe {
                self.next_probe = now + interval;
                let src = self.ifaces[0].addr;
                actions.push(DriverAction::Transmit {
                    iface: 0,
                    frame: Frame {
                        src,
                        dst: MacAddr::BROADCAST,
                        bssid: MacAddr::BROADCAST,
                        body: FrameBody::ProbeRequest { ssid: None },
                    },
                });
            }
        }
        if self.hot_dirty_all {
            self.refresh_hot();
        }
    }

    fn next_wakeup(&self, now: SimTime) -> SimTime {
        let mut t = self.next_housekeeping;
        if self.cfg.probe_interval.is_some() {
            t = t.min(self.next_probe);
        }
        if !self.cfg.schedule.is_single_channel() && self.switching_to.is_none() {
            t = t.min(self.cfg.schedule.next_boundary(now));
        }
        // Per-interface deadlines come off the packed cache (kept fresh
        // by `refresh_hot` at the end of every mutating entry point)
        // rather than a walk over the interface structs.
        for &w in &self.iface_wakeups {
            t = t.min(w);
        }
        t.max(now)
    }

    fn join_log(&self) -> &JoinLog {
        &self.log
    }

    fn is_connected(&self) -> bool {
        self.ifaces.iter().any(|i| i.is_connected())
    }

    fn delivered_bytes(&self) -> u64 {
        self.ifaces.iter().map(|i| i.delivered_bytes()).sum()
    }

    fn observe(&self, now: SimTime) -> ClientObservation {
        // The world calls this once per delivered event; everything it
        // needs is already in the hot cache, so the former three walks
        // over the interface structs collapse to a handful of loads.
        ClientObservation {
            delivered_bytes: self.hot_delivered,
            connected: self.hot_connected,
            next_wakeup: self.next_wakeup(now),
        }
    }

    fn associated_interfaces(&self) -> usize {
        self.associated_count()
    }

    fn initial_channel(&self) -> Channel {
        self.cfg.schedule.channel_at(SimTime::ZERO)
    }

    fn can_use_channel(&self, ch: Channel) -> bool {
        match &self.cfg.candidate_channels {
            Some(channels) => channels.contains(&ch),
            None => self.cfg.schedule.channels().contains(&ch),
        }
    }

    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperationMode;
    use spider_mac80211::RxBuf;
    use spider_wire::Ssid;

    fn driver(mode: OperationMode) -> SpiderDriver {
        SpiderDriver::new(SpiderConfig::for_mode(mode, 1))
    }

    fn beacon(ap_id: u64, ch: Channel) -> RxBuf {
        RxBuf {
            frame: Frame {
                src: MacAddr::from_id(ap_id),
                dst: MacAddr::BROADCAST,
                bssid: MacAddr::from_id(ap_id),
                body: FrameBody::Beacon {
                    ssid: Ssid::new(format!("ap{ap_id}")),
                    channel: ch,
                    interval: SimDuration::from_micros(102_400),
                },
            },
            channel: ch,
            rssi_dbm: Some(-60.0),
        }
    }

    #[test]
    fn lease_rejected_evicts_cached_lease() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH6));
        let bssid = MacAddr::from_id(7);
        d.lease_cache.insert(
            bssid,
            spider_netstack::Lease {
                ip: spider_wire::Ipv4Addr::new(10, 0, 0, 9),
                server: spider_wire::Ipv4Addr::new(10, 0, 0, 1),
                expires: SimTime::from_secs(1_000),
            },
        );
        let mut actions = Vec::new();
        d.absorb(
            SimTime::ZERO,
            0,
            vec![IfaceEvent::LeaseRejected { bssid }],
            &mut actions,
        );
        assert!(d.lease_cache.is_empty(), "NAKed lease must be evicted");
    }

    #[test]
    fn downed_ap_is_blacklisted_until_backoff_expires() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH6));
        let bssid = MacAddr::from_id(7);
        d.on_frame(SimTime::ZERO, &beacon(7, Channel::CH6).rx());
        let mut actions = Vec::new();
        d.absorb(
            SimTime::from_millis(10),
            0,
            vec![IfaceEvent::Down {
                bssid,
                outcome: Some(JoinOutcome::Failed),
            }],
            &mut actions,
        );
        assert!(d.blacklist.is_blocked(SimTime::from_millis(11), bssid));
        // While blocked, housekeeping must not re-bind to the AP even
        // though it is the only (and attractively loud) candidate.
        d.poll(SimTime::from_millis(20));
        assert!(
            d.ifaces.iter().all(|i| !i.is_busy()),
            "driver re-joined a blacklisted AP"
        );
        // Once the backoff passes, the AP is fair game again.
        let until = d.blacklist.blocked_until(bssid).expect("listed");
        d.poll(until + SimDuration::from_millis(1));
        assert!(
            d.ifaces.iter().any(|i| i.bssid() == Some(bssid)),
            "driver should retry after the backoff expires"
        );
    }

    #[test]
    fn down_triggers_immediate_rescan_probe() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH6));
        let mut actions = Vec::new();
        d.absorb(
            SimTime::from_millis(10),
            0,
            vec![IfaceEvent::Down {
                bssid: MacAddr::from_id(7),
                outcome: Some(JoinOutcome::Failed),
            }],
            &mut actions,
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, DriverAction::Transmit { frame, .. }
                if matches!(frame.body, FrameBody::ProbeRequest { .. }))),
            "a dead link should trigger an immediate broadcast probe"
        );
    }

    #[test]
    fn single_channel_mode_never_switches() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH1));
        for i in 0..100 {
            let actions = d.poll(SimTime::from_millis(i * 50));
            assert!(actions
                .iter()
                .all(|a| !matches!(a, DriverAction::SwitchChannel(_))));
        }
        assert_eq!(d.switches_requested, 0);
        assert_eq!(d.current_channel(), Some(Channel::CH1));
    }

    #[test]
    fn multi_channel_mode_switches_at_boundaries() {
        let mut d = driver(OperationMode::MultiChannelMultiAp {
            period: SimDuration::from_millis(600),
        });
        assert_eq!(d.current_channel(), Some(Channel::CH1));
        // At t=200ms the schedule moves to ch6.
        let actions = d.poll(SimTime::from_millis(200));
        assert!(actions
            .iter()
            .any(|a| matches!(a, DriverAction::SwitchChannel(c) if *c == Channel::CH6)));
        assert_eq!(d.current_channel(), None, "deaf mid-switch");
        let _ = d.on_switch_complete(SimTime::from_millis(205), Channel::CH6);
        assert_eq!(d.current_channel(), Some(Channel::CH6));
    }

    #[test]
    fn beacon_triggers_join_on_scheduled_channel() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH1));
        let t = SimTime::from_millis(10);
        let actions = d.on_frame(t, &beacon(100, Channel::CH1).rx());
        // Selection happens on the housekeeping tick.
        let actions2 = d.poll(SimTime::from_millis(100));
        let all: Vec<&DriverAction> = actions.iter().chain(actions2.iter()).collect();
        assert!(
            all.iter()
                .any(|a| matches!(a, DriverAction::Transmit { frame, .. }
                if matches!(frame.body, FrameBody::AuthRequest))),
            "driver should start joining the advertised AP: {all:?}"
        );
    }

    #[test]
    fn off_schedule_channel_aps_are_ignored() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH1));
        d.on_frame(SimTime::from_millis(10), &beacon(100, Channel::CH11).rx());
        let actions = d.poll(SimTime::from_millis(100));
        assert!(actions
            .iter()
            .all(|a| !matches!(a, DriverAction::Transmit { frame, .. }
                if matches!(frame.body, FrameBody::AuthRequest))));
    }

    #[test]
    fn single_ap_mode_joins_at_most_one() {
        let mut d = driver(OperationMode::SingleChannelSingleAp(Channel::CH1));
        d.on_frame(SimTime::from_millis(10), &beacon(100, Channel::CH1).rx());
        d.on_frame(SimTime::from_millis(11), &beacon(101, Channel::CH1).rx());
        let actions = d.poll(SimTime::from_millis(100));
        let auth_targets: Vec<MacAddr> = actions
            .iter()
            .filter_map(|a| match a {
                DriverAction::Transmit { frame, .. }
                    if matches!(frame.body, FrameBody::AuthRequest) =>
                {
                    Some(frame.dst)
                }
                _ => None,
            })
            .collect();
        assert_eq!(auth_targets.len(), 1);
    }

    #[test]
    fn multi_ap_mode_joins_several() {
        let mut d = driver(OperationMode::SingleChannelMultiAp(Channel::CH1));
        for ap in 0..4 {
            d.on_frame(
                SimTime::from_millis(10 + ap),
                &beacon(100 + ap, Channel::CH1).rx(),
            );
        }
        let actions = d.poll(SimTime::from_millis(100));
        let auth_targets: std::collections::HashSet<MacAddr> = actions
            .iter()
            .filter_map(|a| match a {
                DriverAction::Transmit { frame, .. }
                    if matches!(frame.body, FrameBody::AuthRequest) =>
                {
                    Some(frame.dst)
                }
                _ => None,
            })
            .collect();
        assert_eq!(auth_targets.len(), 4, "one join per distinct AP");
    }

    #[test]
    fn psm_null_sent_before_switch() {
        let mut d = driver(OperationMode::MultiChannelMultiAp {
            period: SimDuration::from_millis(600),
        });
        d.on_frame(SimTime::from_millis(10), &beacon(100, Channel::CH1).rx());
        let actions = d.poll(SimTime::from_millis(50));
        // The join begins (auth request).
        assert!(actions
            .iter()
            .any(|a| matches!(a, DriverAction::Transmit { frame, .. }
            if matches!(frame.body, FrameBody::AuthRequest))));
        // Answer auth + assoc so the iface is associated.
        let auth_ok = RxBuf {
            frame: Frame {
                src: MacAddr::from_id(100),
                dst: MacAddr::from_id(1_001),
                bssid: MacAddr::from_id(100),
                body: FrameBody::AuthResponse { ok: true },
            },
            channel: Channel::CH1,
            rssi_dbm: Some(-60.0),
        };
        d.on_frame(SimTime::from_millis(60), &auth_ok.rx());
        let assoc_ok = RxBuf {
            frame: Frame {
                src: MacAddr::from_id(100),
                dst: MacAddr::from_id(1_001),
                bssid: MacAddr::from_id(100),
                body: FrameBody::AssocResponse { ok: true, aid: 1 },
            },
            channel: Channel::CH1,
            rssi_dbm: Some(-60.0),
        };
        d.on_frame(SimTime::from_millis(70), &assoc_ok.rx());
        assert_eq!(d.associated_count(), 1);
        // At the boundary the driver parks the AP before switching.
        let actions = d.poll(SimTime::from_millis(200));
        let psm_then_switch = actions.iter().any(|a| {
            matches!(a, DriverAction::Transmit { frame, .. }
                if matches!(frame.body, FrameBody::Null { power_save: true }))
        }) && actions
            .iter()
            .any(|a| matches!(a, DriverAction::SwitchChannel(_)));
        assert!(psm_then_switch, "{actions:?}");
        // On return to ch1 (next period) the driver wakes the AP.
        d.on_switch_complete(SimTime::from_millis(205), Channel::CH6);
        d.poll(SimTime::from_millis(400)); // -> switch to ch11
        d.on_switch_complete(SimTime::from_millis(405), Channel::CH11);
        d.poll(SimTime::from_millis(600)); // -> switch to ch1
        let actions = d.on_switch_complete(SimTime::from_millis(605), Channel::CH1);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, DriverAction::Transmit { frame, .. }
                if matches!(frame.body, FrameBody::Null { power_save: false }))),
            "{actions:?}"
        );
    }

    #[test]
    fn wakeup_is_never_in_the_past_and_bounded_by_housekeeping() {
        let d = driver(OperationMode::SingleChannelMultiAp(Channel::CH6));
        let now = SimTime::from_millis(37);
        let wk = d.next_wakeup(now);
        assert!(wk >= now);
        assert!(wk <= now + SimDuration::from_millis(100));
    }

    #[test]
    fn label_reflects_mode() {
        let d = driver(OperationMode::SingleChannelMultiAp(Channel::CH1));
        assert!(d.label().contains("ch1"));
        assert!(d.label().contains("max 7"));
    }
}

#[cfg(test)]
mod probing_tests {
    use super::*;
    use crate::config::OperationMode;
    use spider_simcore::SimDuration;

    #[test]
    fn active_probing_broadcasts_probe_requests() {
        let cfg = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH6), 1)
            .with_active_probing(SimDuration::from_millis(500));
        let mut d = SpiderDriver::new(cfg);
        let mut probes = 0;
        for i in 0..20 {
            for a in d.poll(SimTime::from_millis(i * 100)) {
                if let DriverAction::Transmit { frame, .. } = a {
                    if matches!(frame.body, FrameBody::ProbeRequest { .. }) {
                        probes += 1;
                        assert!(frame.dst.is_broadcast());
                    }
                }
            }
        }
        // 2s of polling at a 500ms probe interval: 4-5 probes.
        assert!((4..=5).contains(&probes), "probes: {probes}");
    }

    #[test]
    fn passive_default_sends_no_probes() {
        let cfg = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH6), 1);
        let mut d = SpiderDriver::new(cfg);
        for i in 0..20 {
            for a in d.poll(SimTime::from_millis(i * 100)) {
                if let DriverAction::Transmit { frame, .. } = a {
                    assert!(!matches!(frame.body, FrameBody::ProbeRequest { .. }));
                }
            }
        }
    }

    #[test]
    fn probe_wakeups_are_scheduled() {
        let cfg = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH6), 1)
            .with_active_probing(SimDuration::from_millis(300));
        let mut d = SpiderDriver::new(cfg);
        d.poll(SimTime::ZERO);
        let wk = d.next_wakeup(SimTime::from_millis(1));
        assert!(wk <= SimTime::from_millis(100).max(SimTime::from_millis(300)));
    }
}

#[cfg(test)]
mod ifconfig_tests {
    use super::*;
    use crate::config::OperationMode;

    #[test]
    fn ifconfig_lists_every_interface() {
        let d = SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        ));
        let dump = d.ifconfig();
        assert_eq!(dump.lines().count(), 7);
        assert!(dump.lines().all(|l| l.contains("unassociated")));
        assert!(dump.starts_with("ath0:"));
    }
}
