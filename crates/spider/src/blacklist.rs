//! Per-BSSID blacklist with exponential backoff.
//!
//! An AP whose join failed (or whose verified link just died) is a poor
//! candidate to re-join immediately: a blacked-out or zombie AP will
//! keep beaconing, keep winning the utility ranking on signal strength,
//! and trap the driver in a join/fail loop. The blacklist holds each
//! failed BSSID out of AP selection for an exponentially growing,
//! jittered window — `base * 2^(strikes-1)` capped at `max` — and clears
//! the slate on the first verified success. Jitter is deterministic per
//! `(bssid, strikes)` so runs stay reproducible.

use spider_simcore::{FxHashMap, SimDuration, SimTime};
use spider_wire::MacAddr;

/// Backoff tuning.
#[derive(Debug, Clone)]
pub struct BlacklistConfig {
    /// First-strike hold-off.
    pub base: SimDuration,
    /// Backoff ceiling.
    pub max: SimDuration,
    /// Jitter fraction: the hold-off is scaled by a factor drawn
    /// deterministically from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for BlacklistConfig {
    fn default() -> BlacklistConfig {
        BlacklistConfig {
            base: SimDuration::from_secs(2),
            max: SimDuration::from_secs(60),
            jitter: 0.2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    strikes: u32,
    blocked_until: SimTime,
}

/// The blacklist proper.
#[derive(Debug, Clone)]
pub struct ApBlacklist {
    cfg: BlacklistConfig,
    entries: FxHashMap<MacAddr, Entry>,
}

/// FNV-1a over the BSSID and strike count: a tiny, fully deterministic
/// hash for jitter (the std hasher's keys are not guaranteed stable).
fn jitter_hash(bssid: MacAddr, strikes: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bssid.0.iter().copied().chain(strikes.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ApBlacklist {
    /// Empty blacklist.
    pub fn new(cfg: BlacklistConfig) -> ApBlacklist {
        ApBlacklist {
            cfg,
            entries: FxHashMap::default(),
        }
    }

    /// Record a failure against `bssid` at `now`: strike count grows and
    /// the AP is held out until the (jittered, capped) backoff passes.
    /// Returns the instant the block expires.
    pub fn record_failure(&mut self, now: SimTime, bssid: MacAddr) -> SimTime {
        let entry = self.entries.entry(bssid).or_insert(Entry {
            strikes: 0,
            blocked_until: now,
        });
        entry.strikes = entry.strikes.saturating_add(1);
        let exp = entry.strikes.saturating_sub(1).min(16);
        let backoff = SimDuration::from_micros(
            self.cfg
                .base
                .as_micros()
                .saturating_mul(1u64 << exp)
                .min(self.cfg.max.as_micros()),
        );
        // Map the hash into [1 - jitter, 1 + jitter].
        let unit = (jitter_hash(bssid, entry.strikes) % 10_000) as f64 / 10_000.0;
        let factor = 1.0 + self.cfg.jitter * (2.0 * unit - 1.0);
        entry.blocked_until = now.saturating_add(backoff.mul_f64(factor));
        entry.blocked_until
    }

    /// A portal classification against `bssid`: demote straight to the
    /// backoff ceiling instead of climbing the ladder. A captive portal
    /// is not *failing* — it is working exactly as its operator
    /// intends, and will still be intercepting on the next retry — so
    /// strikes jump past the exponent cap (the ladder saturates there,
    /// keeping any later [`ApBlacklist::record_failure`] at the
    /// ceiling too). Returns the instant the block expires.
    pub fn record_portal(&mut self, now: SimTime, bssid: MacAddr) -> SimTime {
        // One past the record_failure exponent cap of 16.
        const PORTAL_STRIKES: u32 = 17;
        let entry = self.entries.entry(bssid).or_insert(Entry {
            strikes: 0,
            blocked_until: now,
        });
        entry.strikes = entry.strikes.max(PORTAL_STRIKES);
        let unit = (jitter_hash(bssid, entry.strikes) % 10_000) as f64 / 10_000.0;
        let factor = 1.0 + self.cfg.jitter * (2.0 * unit - 1.0);
        entry.blocked_until = now.saturating_add(self.cfg.max.mul_f64(factor));
        entry.blocked_until
    }

    /// A verified join succeeded: forgive all strikes.
    pub fn record_success(&mut self, bssid: MacAddr) {
        self.entries.remove(&bssid);
    }

    /// Whether `bssid` is currently held out of selection.
    pub fn is_blocked(&self, now: SimTime, bssid: MacAddr) -> bool {
        self.entries
            .get(&bssid)
            .map(|e| now < e.blocked_until)
            .unwrap_or(false)
    }

    /// When the block on `bssid` expires (None if not listed).
    pub fn blocked_until(&self, bssid: MacAddr) -> Option<SimTime> {
        self.entries.get(&bssid).map(|e| e.blocked_until)
    }

    /// Strike count for `bssid` (0 if not listed).
    pub fn strikes(&self, bssid: MacAddr) -> u32 {
        self.entries.get(&bssid).map(|e| e.strikes).unwrap_or(0)
    }

    /// All currently blocked BSSIDs, sorted for determinism.
    pub fn blocked(&self, now: SimTime) -> Vec<MacAddr> {
        let mut v: Vec<MacAddr> = self
            .entries
            .iter()
            .filter(|(_, e)| now < e.blocked_until)
            .map(|(b, _)| *b)
            .collect();
        v.sort();
        v
    }

    /// Forget entries whose block expired more than `cfg.max` ago —
    /// long enough that fresh trouble should escalate from scratch.
    pub fn prune(&mut self, now: SimTime) {
        let grace = self.cfg.max;
        self.entries
            .retain(|_, e| now < e.blocked_until.saturating_add(grace));
    }

    /// Number of remembered BSSIDs (blocked or in post-block grace).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bl() -> ApBlacklist {
        ApBlacklist::new(BlacklistConfig {
            base: SimDuration::from_secs(2),
            max: SimDuration::from_secs(60),
            jitter: 0.0,
        })
    }

    const AP: MacAddr = MacAddr([2, 0, 0, 0, 0, 7]);

    #[test]
    fn failure_blocks_and_expires() {
        let mut b = bl();
        assert!(!b.is_blocked(SimTime::ZERO, AP));
        let until = b.record_failure(SimTime::ZERO, AP);
        assert_eq!(until, SimTime::from_secs(2));
        assert!(b.is_blocked(SimTime::from_millis(1_999), AP));
        assert!(!b.is_blocked(SimTime::from_secs(2), AP));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = bl();
        let t = SimTime::from_secs(100);
        // Strikes 1..: 2, 4, 8, 16, 32, 60 (cap), 60 ...
        let mut widths = Vec::new();
        for _ in 0..7 {
            let until = b.record_failure(t, AP);
            widths.push(until.saturating_since(t));
        }
        let secs = |s| SimDuration::from_secs(s);
        assert_eq!(
            widths,
            vec![
                secs(2),
                secs(4),
                secs(8),
                secs(16),
                secs(32),
                secs(60),
                secs(60)
            ]
        );
    }

    #[test]
    fn portal_demotion_jumps_to_the_ceiling_and_stays_there() {
        let mut b = bl();
        let until = b.record_portal(SimTime::ZERO, AP);
        assert_eq!(until, SimTime::from_secs(60), "straight to the cap");
        assert_eq!(b.strikes(AP), 17);
        // A later plain failure (the matching Down) cannot shorten it.
        let later = b.record_failure(SimTime::ZERO, AP);
        assert_eq!(later, SimTime::from_secs(60));
        // Strikes already past the ladder never regress.
        b.record_portal(SimTime::ZERO, AP);
        assert_eq!(b.strikes(AP), 18);
        // Success still forgives everything.
        b.record_success(AP);
        assert_eq!(b.strikes(AP), 0);
    }

    #[test]
    fn success_forgives_all_strikes() {
        let mut b = bl();
        b.record_failure(SimTime::ZERO, AP);
        b.record_failure(SimTime::ZERO, AP);
        b.record_success(AP);
        assert_eq!(b.strikes(AP), 0);
        // Next failure starts the ladder over.
        let until = b.record_failure(SimTime::from_secs(10), AP);
        assert_eq!(until, SimTime::from_secs(12));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mk = || {
            ApBlacklist::new(BlacklistConfig {
                base: SimDuration::from_secs(2),
                max: SimDuration::from_secs(60),
                jitter: 0.2,
            })
        };
        let mut a = mk();
        let mut b = mk();
        let ua = a.record_failure(SimTime::ZERO, AP);
        let ub = b.record_failure(SimTime::ZERO, AP);
        assert_eq!(ua, ub, "same inputs must give the same backoff");
        let w = ua.saturating_since(SimTime::ZERO).as_millis_f64();
        assert!((1_600.0..=2_400.0).contains(&w), "width {w} outside ±20%");
        // A different BSSID jitters differently (with overwhelming
        // likelihood for this pair).
        let other = MacAddr([2, 0, 0, 0, 0, 8]);
        let uo = a.record_failure(SimTime::ZERO, other);
        assert_ne!(ua, uo);
    }

    #[test]
    fn blocked_lists_only_active_blocks() {
        let mut b = bl();
        let other = MacAddr([2, 0, 0, 0, 0, 8]);
        b.record_failure(SimTime::ZERO, AP); // until 2s
        b.record_failure(SimTime::ZERO, other); // until 2s
        assert_eq!(b.blocked(SimTime::from_secs(1)).len(), 2);
        assert!(b.blocked(SimTime::from_secs(3)).is_empty());
    }

    #[test]
    fn prune_forgets_long_expired_entries() {
        let mut b = bl();
        b.record_failure(SimTime::ZERO, AP); // blocked until 2s, grace 60s
        b.prune(SimTime::from_secs(30));
        assert_eq!(b.len(), 1, "still inside the strike-memory grace");
        b.prune(SimTime::from_secs(63));
        assert!(b.is_empty());
    }
}
