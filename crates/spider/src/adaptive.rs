//! Adaptive channel scheduling — the paper's §4.8 extension.
//!
//! "An augmented design would encompass both mobile and nomadic scenarios
//! by alternating between staying on one channel at high speeds and
//! managing multiple channels when moving slowly." The analytical model
//! puts the dividing speed below 10 m/s for typical parameters (§2.1.3,
//! Fig. 4).
//!
//! [`AdaptiveSpider`] wraps a [`SpiderDriver`] and periodically reviews a
//! speed hint (GPS in a real deployment; supplied by the scenario here)
//! plus the scanner's per-channel AP census, re-targeting the schedule:
//!
//! * fast ⇒ single channel, picked as the one with the most usable APs
//!   (falling back to the busiest historical channel),
//! * slow ⇒ equal multi-channel rotation over the channels that actually
//!   have APs.

use crate::driver::SpiderDriver;
use crate::schedule::ChannelSchedule;
use spider_mac80211::{ClientSystem, DriverAction, JoinLog, RxFrame};
use spider_simcore::{SimDuration, SimTime};
use spider_wire::Channel;

/// Adaptive policy parameters.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Speed above which only one channel is scheduled (the model's
    /// dividing speed, ~10 m/s).
    pub dividing_speed_mps: f64,
    /// Scheduling period used when rotating multiple channels.
    pub multi_period: SimDuration,
    /// How often the schedule decision is reviewed.
    pub review_interval: SimDuration,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            dividing_speed_mps: 10.0,
            multi_period: SimDuration::from_millis(600),
            review_interval: SimDuration::from_secs(5),
        }
    }
}

impl AdaptivePolicy {
    /// Choose a schedule given the current speed and per-channel AP
    /// census.
    pub fn choose(
        &self,
        speed_mps: f64,
        census: &spider_simcore::FxHashMap<Channel, usize>,
    ) -> ChannelSchedule {
        let mut channels: Vec<(Channel, usize)> = Channel::ORTHOGONAL
            .iter()
            .map(|&c| (c, census.get(&c).copied().unwrap_or(0)))
            .collect();
        channels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.number().cmp(&b.0.number())));
        if speed_mps >= self.dividing_speed_mps {
            ChannelSchedule::single(channels[0].0)
        } else {
            let populated: Vec<Channel> = channels
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(c, _)| c)
                .collect();
            if populated.len() >= 2 {
                ChannelSchedule::equal(&populated, self.multi_period)
            } else {
                // A single radio only hears the channel it sits on, so a
                // thin census is not evidence of an empty band — explore
                // all orthogonal channels while moving slowly.
                ChannelSchedule::equal(&Channel::ORTHOGONAL, self.multi_period)
            }
        }
    }
}

/// A Spider driver that re-schedules itself based on observed conditions.
// Clone backs `ClientSystem::clone_boxed` (DESIGN.md §13).
#[derive(Clone)]
pub struct AdaptiveSpider {
    inner: SpiderDriver,
    policy: AdaptivePolicy,
    speed_hint_mps: f64,
    next_review: SimTime,
    /// Schedule replacements performed.
    pub mode_changes: u64,
}

impl AdaptiveSpider {
    /// Wrap a driver with the given policy.
    pub fn new(inner: SpiderDriver, policy: AdaptivePolicy) -> AdaptiveSpider {
        AdaptiveSpider {
            inner,
            policy,
            speed_hint_mps: 0.0,
            next_review: SimTime::ZERO,
            mode_changes: 0,
        }
    }

    /// Update the externally supplied speed estimate (GPS).
    pub fn set_speed_hint(&mut self, mps: f64) {
        self.speed_hint_mps = mps;
    }

    /// Access the wrapped driver.
    pub fn inner(&self) -> &SpiderDriver {
        &self.inner
    }

    fn review(&mut self, now: SimTime) {
        if now < self.next_review {
            return;
        }
        self.next_review = now + self.policy.review_interval;
        let census = self.inner.utility_table().channel_census(now);
        let desired = self.policy.choose(self.speed_hint_mps, &census);
        let current = self.inner.schedule();
        let same = current.slots().len() == desired.slots().len()
            && current
                .slots()
                .iter()
                .zip(desired.slots())
                .all(|(a, b)| a.0 == b.0 && (a.1 - b.1).abs() < 1e-9);
        if !same {
            self.inner.set_schedule(desired);
            self.mode_changes += 1;
        }
    }
}

impl ClientSystem for AdaptiveSpider {
    fn label(&self) -> String {
        format!("Adaptive[{}]", self.inner.label())
    }

    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, out: &mut Vec<DriverAction>) {
        self.inner.on_frame_into(now, rx, out);
    }

    fn on_switch_complete_into(&mut self, now: SimTime, ch: Channel, out: &mut Vec<DriverAction>) {
        self.inner.on_switch_complete_into(now, ch, out);
    }

    fn poll_into(&mut self, now: SimTime, out: &mut Vec<DriverAction>) {
        self.review(now);
        self.inner.poll_into(now, out);
    }

    fn next_wakeup(&self, now: SimTime) -> SimTime {
        self.inner.next_wakeup(now).min(self.next_review).max(now)
    }

    fn join_log(&self) -> &JoinLog {
        self.inner.join_log()
    }

    fn is_connected(&self) -> bool {
        self.inner.is_connected()
    }

    fn delivered_bytes(&self) -> u64 {
        self.inner.delivered_bytes()
    }

    fn associated_interfaces(&self) -> usize {
        self.inner.associated_interfaces()
    }

    fn initial_channel(&self) -> Channel {
        self.inner.initial_channel()
    }

    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OperationMode, SpiderConfig};
    use spider_simcore::FxHashMap;

    #[test]
    fn fast_speed_picks_single_busiest_channel() {
        let p = AdaptivePolicy::default();
        let mut census = FxHashMap::default();
        census.insert(Channel::CH6, 5);
        census.insert(Channel::CH1, 2);
        let s = p.choose(15.0, &census);
        assert!(s.is_single_channel());
        assert_eq!(s.channels(), vec![Channel::CH6]);
    }

    #[test]
    fn slow_speed_rotates_populated_channels() {
        let p = AdaptivePolicy::default();
        let mut census = FxHashMap::default();
        census.insert(Channel::CH6, 3);
        census.insert(Channel::CH11, 1);
        let s = p.choose(3.0, &census);
        assert_eq!(s.channels().len(), 2);
        assert!(s.channels().contains(&Channel::CH6));
        assert!(s.channels().contains(&Channel::CH11));
    }

    #[test]
    fn slow_with_thin_census_explores_all_channels() {
        // A single radio cannot hear channels it never visits; a slow
        // node with a one-channel census must explore.
        let p = AdaptivePolicy::default();
        let mut census = FxHashMap::default();
        census.insert(Channel::CH1, 4);
        let s = p.choose(3.0, &census);
        assert_eq!(s.channels().len(), 3);
    }

    #[test]
    fn empty_census_explores_when_slow_but_not_fast() {
        let p = AdaptivePolicy::default();
        let slow = p.choose(3.0, &FxHashMap::default());
        assert_eq!(slow.channels().len(), 3);
        let fast = p.choose(15.0, &FxHashMap::default());
        assert!(fast.is_single_channel());
    }

    #[test]
    fn review_changes_schedule_on_speed_change() {
        let inner = SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        ));
        let mut ad = AdaptiveSpider::new(inner, AdaptivePolicy::default());
        ad.set_speed_hint(15.0);
        ad.poll(SimTime::ZERO);
        assert!(ad.inner().schedule().is_single_channel());
        // Slowing down triggers exploration of all orthogonal channels at
        // the next review.
        ad.set_speed_hint(2.0);
        ad.poll(SimTime::from_secs(6));
        assert!(!ad.inner().schedule().is_single_channel());
        assert!(ad.mode_changes >= 1);
        // Speeding back up re-locks a single channel.
        ad.set_speed_hint(20.0);
        ad.poll(SimTime::from_secs(12));
        assert!(ad.inner().schedule().is_single_channel());
    }
}
