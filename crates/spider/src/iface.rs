//! One virtual interface = one concurrent AP connection (Design Choice 3).
//!
//! Each interface is a self-contained stack: the link-layer association
//! machine, a DHCP client (fed from the per-BSSID lease cache), the ping
//! liveness engine, and a TCP bulk-download endpoint that starts once
//! connectivity is verified. The interface reports lifecycle events to
//! the driver, which records join statistics and utility outcomes.

use spider_mac80211::{ApTarget, ClientMacConfig, InterfaceMac, JoinLog, MacEvent};
use spider_netstack::{
    DhcpClient, DhcpClientConfig, DhcpClientEvent, GatewayArp, Lease, PingConfig, PingEngine,
    PingEvent,
};
use spider_simcore::{SimDuration, SimTime};
use spider_tcpsim::TcpReceiver;
use spider_wire::ip::L4;
use spider_wire::{Frame, FrameBody, Ipv4Addr, Ipv4Packet, MacAddr};

use crate::utility::JoinOutcome;

/// The well-known wired sink the evaluation downloads from and pings
/// (reachable through every AP's backhaul).
pub const SERVER_IP: Ipv4Addr = Ipv4Addr([192, 0, 2, 1]);

/// TCP server port of the sink.
pub const SERVER_PORT: u16 = 80;

/// Interface lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfacePhase {
    /// Unbound.
    Idle,
    /// Link-layer join in progress.
    Associating,
    /// DHCP acquisition in progress.
    Dhcp,
    /// Lease held; connectivity not yet verified.
    Verifying,
    /// Fully joined; data flowing.
    Connected,
}

/// Events reported to the driver.
#[derive(Debug, Clone)]
pub enum IfaceEvent {
    /// Transmit this frame.
    Transmit(Frame),
    /// A DHCP lease was obtained (cache it).
    GotLease {
        /// The AP it came from.
        bssid: MacAddr,
        /// The lease.
        lease: Lease,
        /// DISCOVER/REQUEST-to-ACK duration.
        took: SimDuration,
        /// Whether the cached-lease fast path succeeded.
        via_cache: bool,
    },
    /// End-to-end connectivity verified — the join is complete.
    ConnectivityUp {
        /// The AP.
        bssid: MacAddr,
        /// Join-start-to-verification duration.
        join_took: SimDuration,
    },
    /// The interface went down; `outcome` is the utility score to record
    /// (`None` when a FullyJoined outcome was already recorded at
    /// ConnectivityUp).
    Down {
        /// The AP.
        bssid: MacAddr,
        /// Outcome to record against the AP's utility.
        outcome: Option<JoinOutcome>,
    },
    /// The DHCP server NAKed our REQUEST — any cached lease for this
    /// BSSID is stale and must be evicted from the driver's cache.
    LeaseRejected {
        /// The AP whose server rejected the lease.
        bssid: MacAddr,
    },
    /// The interface classified this AP as a captive portal: the link
    /// fell back to gateway probing (end-to-end ICMP is dead), gateway
    /// pings are answered — so the link *looks* alive — yet the data
    /// plane has delivered nothing for a sustained window. A portal is
    /// not failing, it is working as its operator intends, so the
    /// driver should demote the AP rather than retry it forever. A
    /// matching [`IfaceEvent::Down`] follows.
    PortalSuspected {
        /// The AP behind the suspected portal.
        bssid: MacAddr,
    },
}

/// A virtual interface.
#[derive(Debug)]
// Clone is the per-interface leg of the world snapshot (DESIGN.md §13):
// MAC state machine, DHCP client, ping engine and TCP receiver all clone
// deeply, so a forked interface resumes bit-identically.
#[derive(Clone)]
pub struct ClientIface {
    /// Index within the driver.
    pub index: usize,
    /// The interface's MAC address.
    pub addr: MacAddr,
    mac: InterfaceMac,
    dhcp: DhcpClient,
    ping: PingEngine,
    tcp: Option<TcpReceiver>,
    phase: IfacePhase,
    lease: Option<Lease>,
    /// Probe the gateway instead of the wired server (set once the ping
    /// engine reports that end-to-end ICMP looks filtered, §3.2.2).
    ping_gateway: bool,
    /// Gateway-resolution state: resolved on every lease bind, flushed
    /// on teardown. Re-resolution is how an ARP-poisoned session
    /// recovers, and the resolution counter is the observable proof.
    arp: GatewayArp,
    /// When the gateway-ping fallback engaged, while the captive-portal
    /// classifier is armed (`None` once the data plane shows progress —
    /// an honest ICMP-filtering gateway, not a portal).
    fell_back_at: Option<SimTime>,
    /// Bytes delivered at the instant of fallback, the zero-progress
    /// reference for the portal classifier.
    fallback_bytes: u64,
    join_started: SimTime,
    fully_joined: bool,
    tcp_enabled: bool,
    next_iss: u32,
    /// Last time the TCP flow made delivery progress (or was created).
    flow_progress_at: SimTime,
    /// Bytes delivered at the last progress check.
    flow_progress_bytes: u64,
    /// Cumulative TCP bytes delivered across all connections on this
    /// interface.
    pub delivered_base: u64,
}

impl ClientIface {
    /// Create an idle interface.
    pub fn new(
        index: usize,
        addr: MacAddr,
        mac_cfg: ClientMacConfig,
        dhcp_cfg: DhcpClientConfig,
        ping_cfg: PingConfig,
        tcp_enabled: bool,
    ) -> ClientIface {
        ClientIface {
            index,
            addr,
            mac: InterfaceMac::new(addr, mac_cfg),
            dhcp: DhcpClient::new(addr, dhcp_cfg),
            ping: PingEngine::new(ping_cfg),
            tcp: None,
            phase: IfacePhase::Idle,
            lease: None,
            ping_gateway: false,
            arp: GatewayArp::new(),
            fell_back_at: None,
            fallback_bytes: 0,
            join_started: SimTime::ZERO,
            fully_joined: false,
            tcp_enabled,
            next_iss: (index as u32 + 1) * 10_000,
            flow_progress_at: SimTime::ZERO,
            flow_progress_bytes: 0,
            delivered_base: 0,
        }
    }

    /// How long a connected flow may sit without progress before being
    /// re-dialled (an application-level retry, as a stalled `wget` would).
    const FLOW_STALL: SimDuration = SimDuration::from_secs(5);

    /// How long a fallen-back link may show zero delivery progress
    /// before it is classified as a captive portal. Two flow-stall
    /// windows: long enough for a genuine ICMP-filtering gateway to get
    /// a first byte through even under heavy interference (the flow
    /// re-dials at [`Self::FLOW_STALL`]), short enough that a portal is
    /// demoted well inside a drive-by encounter.
    const PORTAL_SUSPECT: SimDuration = SimDuration::from_secs(10);

    fn open_flow(&mut self, now: SimTime) -> Vec<IfaceEvent> {
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(100_000);
        let mut tcp = TcpReceiver::new(5_000 + self.index as u16, SERVER_PORT, iss);
        let syn = tcp.connect(now);
        let out = vec![IfaceEvent::Transmit(self.wrap_tcp(syn))];
        self.tcp = Some(tcp);
        self.flow_progress_at = now;
        self.flow_progress_bytes = self.delivered_bytes();
        out
    }

    /// Current phase.
    pub fn phase(&self) -> IfacePhase {
        self.phase
    }

    /// Whether the interface is bound to (joining or joined with) an AP.
    pub fn is_busy(&self) -> bool {
        self.phase != IfacePhase::Idle
    }

    /// Whether link-layer association currently holds.
    pub fn is_associated(&self) -> bool {
        self.mac.is_associated()
    }

    /// Whether end-to-end connectivity is verified right now.
    pub fn is_connected(&self) -> bool {
        self.phase == IfacePhase::Connected && self.ping.is_alive()
    }

    /// The AP this interface is bound to.
    pub fn bssid(&self) -> Option<MacAddr> {
        self.mac.target().map(|t| t.bssid)
    }

    /// The target AP (including channel).
    pub fn target(&self) -> Option<&ApTarget> {
        self.mac.target()
    }

    /// Whether the DHCP client can start a new acquisition (not inside
    /// its failure backoff window).
    pub fn dhcp_ready(&self, now: SimTime) -> bool {
        self.dhcp.can_start(now)
    }

    /// The lease currently held (None until DHCP binds).
    pub fn current_lease(&self) -> Option<Lease> {
        self.lease
    }

    /// Total TCP bytes delivered on this interface (across connections).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_base + self.tcp.as_ref().map(|t| t.delivered).unwrap_or(0)
    }

    /// Gateway-resolution state (see [`GatewayArp`]): how many times
    /// this interface has resolved a gateway, and whether a mapping is
    /// currently held.
    pub fn gateway_arp(&self) -> &GatewayArp {
        &self.arp
    }

    /// Begin joining `target`, optionally with a cached lease.
    pub fn start_join(&mut self, now: SimTime, target: ApTarget, cached: Option<Lease>) {
        self.teardown_stacks();
        self.join_started = now;
        self.fully_joined = false;
        self.phase = IfacePhase::Associating;
        self.mac.start_join(now, target);
        // Stash the cached lease decision until association completes.
        self.lease = cached;
    }

    fn teardown_stacks(&mut self) {
        if let Some(tcp) = self.tcp.take() {
            self.delivered_base += tcp.delivered;
        }
        self.ping.stop();
        self.dhcp.reset();
        self.mac.reset();
        self.lease = None;
        self.ping_gateway = false;
        self.arp.flush();
        self.fell_back_at = None;
        self.fallback_bytes = 0;
        self.phase = IfacePhase::Idle;
    }

    /// Tear the interface down (driver decision: lost AP, reschedule,
    /// shutdown). Returns the deauth frame to send if associated and the
    /// outcome event.
    pub fn teardown(&mut self, _now: SimTime) -> Vec<IfaceEvent> {
        let mut out = Vec::new();
        let Some(target) = self.mac.target().cloned() else {
            self.teardown_stacks();
            return out;
        };
        if self.mac.is_associated() {
            out.push(IfaceEvent::Transmit(Frame {
                src: self.addr,
                dst: target.bssid,
                bssid: target.bssid,
                body: FrameBody::Deauth { reason: 3 },
            }));
        }
        let outcome = self.pending_outcome();
        out.push(IfaceEvent::Down {
            bssid: target.bssid,
            outcome,
        });
        self.teardown_stacks();
        out
    }

    fn pending_outcome(&self) -> Option<JoinOutcome> {
        if self.fully_joined {
            None
        } else {
            Some(match self.phase {
                IfacePhase::Idle | IfacePhase::Associating => JoinOutcome::Failed,
                IfacePhase::Dhcp => JoinOutcome::AssociatedOnly,
                IfacePhase::Verifying => JoinOutcome::LeaseOnly,
                IfacePhase::Connected => JoinOutcome::FullyJoined,
            })
        }
    }

    fn ip(&self) -> Ipv4Addr {
        self.lease.map(|l| l.ip).unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    fn data_frame(&self, packet: Ipv4Packet) -> Frame {
        let bssid = self
            .mac
            .target()
            .map(|t| t.bssid)
            .unwrap_or(MacAddr::BROADCAST);
        Frame {
            src: self.addr,
            dst: bssid,
            bssid,
            body: FrameBody::Data {
                packet,
                more_data: false,
            },
        }
    }

    fn wrap_dhcp(&self, msg: spider_wire::DhcpMessage) -> Frame {
        let dst = if msg.server_id.is_unspecified() {
            Ipv4Addr::BROADCAST
        } else {
            msg.server_id
        };
        self.data_frame(Ipv4Packet {
            src: self.ip(),
            dst,
            payload: L4::Dhcp(msg),
        })
    }

    fn wrap_icmp(&self, msg: spider_wire::IcmpMessage) -> Frame {
        // Normally probe end-to-end; fall back to the gateway when the
        // path upstream of the AP filters ICMP (§3.2.2).
        let dst = if self.ping_gateway {
            self.lease.map(|l| l.server).unwrap_or(SERVER_IP)
        } else {
            SERVER_IP
        };
        self.data_frame(Ipv4Packet {
            src: self.ip(),
            dst,
            payload: L4::Icmp(msg),
        })
    }

    fn wrap_tcp(&self, seg: spider_wire::TcpSegment) -> Frame {
        self.data_frame(Ipv4Packet {
            src: self.ip(),
            dst: SERVER_IP,
            payload: L4::Tcp(seg),
        })
    }

    /// Timer-driven processing. `on_channel` is true iff the radio is on
    /// this interface's target channel.
    pub fn poll(&mut self, now: SimTime, on_channel: bool, log: &mut JoinLog) -> Vec<IfaceEvent> {
        let mut out = Vec::new();
        match self.phase {
            IfacePhase::Idle => {}
            IfacePhase::Associating => {
                for ev in self.mac.poll(now, on_channel) {
                    match ev {
                        MacEvent::Send(frame) => out.push(IfaceEvent::Transmit(frame)),
                        MacEvent::JoinFailed { bssid } => {
                            log.join_failures += 1;
                            out.push(IfaceEvent::Down {
                                bssid,
                                outcome: Some(JoinOutcome::Failed),
                            });
                            self.teardown_stacks();
                            return out;
                        }
                        _ => {}
                    }
                }
            }
            IfacePhase::Dhcp => {
                for ev in self.dhcp.poll(now, on_channel) {
                    match ev {
                        DhcpClientEvent::Send(msg) => {
                            out.push(IfaceEvent::Transmit(self.wrap_dhcp(msg)))
                        }
                        DhcpClientEvent::Failed => {
                            log.dhcp_failures += 1;
                            log.join_failures += 1;
                            let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                            if self.mac.is_associated() {
                                out.push(IfaceEvent::Transmit(Frame {
                                    src: self.addr,
                                    dst: bssid,
                                    bssid,
                                    body: FrameBody::Deauth { reason: 3 },
                                }));
                            }
                            out.push(IfaceEvent::Down {
                                bssid,
                                outcome: Some(JoinOutcome::AssociatedOnly),
                            });
                            self.teardown_stacks();
                            return out;
                        }
                        DhcpClientEvent::Bound { .. } | DhcpClientEvent::Nak => {
                            // Handled in on_frame path normally; poll can
                            // produce neither.
                        }
                    }
                }
            }
            IfacePhase::Verifying | IfacePhase::Connected => {
                let ping_events = self.ping.poll(now, on_channel);
                // If the whole session has been silence, redirect the
                // probes at the gateway before wrapping any Send below —
                // and arm the portal classifier: a link that *stays* on
                // gateway probing with zero delivery progress is being
                // intercepted, not filtered.
                if !self.ping_gateway && self.ping.should_fall_back() {
                    self.ping_gateway = true;
                    self.fell_back_at = Some(now);
                    self.fallback_bytes = self.delivered_bytes();
                }
                for ev in ping_events {
                    match ev {
                        PingEvent::Send(msg) => out.push(IfaceEvent::Transmit(self.wrap_icmp(msg))),
                        PingEvent::Down => {
                            let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                            if self.phase == IfacePhase::Verifying {
                                log.join_failures += 1;
                            }
                            if self.mac.is_associated() {
                                out.push(IfaceEvent::Transmit(Frame {
                                    src: self.addr,
                                    dst: bssid,
                                    bssid,
                                    body: FrameBody::Deauth { reason: 3 },
                                }));
                            }
                            out.push(IfaceEvent::Down {
                                bssid,
                                outcome: self.pending_outcome(),
                            });
                            self.teardown_stacks();
                            return out;
                        }
                        PingEvent::Up => {
                            // Handled in on_frame path (replies arrive as
                            // frames); unreachable from poll.
                        }
                    }
                }
                let rexmit = self.tcp.as_mut().and_then(|tcp| tcp.poll(now, on_channel));
                if let Some(seg) = rexmit {
                    out.push(IfaceEvent::Transmit(self.wrap_tcp(seg)));
                }
                // Off-channel the stall clock cannot tick (nothing can
                // flow or be re-dialled); slide it so wakeups progress.
                if self.tcp_enabled
                    && self.phase == IfacePhase::Connected
                    && !on_channel
                    && now.saturating_since(self.flow_progress_at) >= Self::FLOW_STALL
                {
                    self.flow_progress_at = now;
                }
                // Same for the portal clock: progress is impossible
                // off-channel, so an expiry there slides instead of
                // firing (the judgement window must elapse on-channel).
                if self.tcp_enabled && self.phase == IfacePhase::Connected && !on_channel {
                    if let Some(fb) = self.fell_back_at {
                        if now.saturating_since(fb) >= Self::PORTAL_SUSPECT {
                            self.fell_back_at = Some(now);
                        }
                    }
                }
                // Application-level retry: if the flow died (SYN gave up,
                // server sender timed out away) or stalled, and the link
                // itself is verified alive, dial a fresh connection.
                if self.tcp_enabled && self.phase == IfacePhase::Connected && on_channel {
                    let delivered = self.delivered_bytes();
                    if delivered > self.flow_progress_bytes {
                        self.flow_progress_bytes = delivered;
                        self.flow_progress_at = now;
                    }
                    let dead = self.tcp.as_ref().map(|t| t.has_failed()).unwrap_or(true);
                    let stalled = now.saturating_since(self.flow_progress_at) >= Self::FLOW_STALL;
                    if dead || stalled {
                        if let Some(old_flow) = self.tcp.take() {
                            self.delivered_base += old_flow.delivered;
                        }
                        let flow = self.open_flow(now);
                        out.extend(flow);
                    }
                    // Captive-portal classifier: fallen back to gateway
                    // probing (so the ping engine says "alive"), yet not
                    // one byte delivered since the fallback. An honest
                    // ICMP-filtering gateway shows progress and disarms;
                    // a portal never does — demote it and move on.
                    if let Some(fb) = self.fell_back_at {
                        if self.delivered_bytes() > self.fallback_bytes {
                            self.fell_back_at = None;
                        } else if now.saturating_since(fb) >= Self::PORTAL_SUSPECT {
                            let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                            out.push(IfaceEvent::PortalSuspected { bssid });
                            if self.mac.is_associated() {
                                out.push(IfaceEvent::Transmit(Frame {
                                    src: self.addr,
                                    dst: bssid,
                                    bssid,
                                    body: FrameBody::Deauth { reason: 3 },
                                }));
                            }
                            out.push(IfaceEvent::Down {
                                bssid,
                                outcome: self.pending_outcome(),
                            });
                            self.teardown_stacks();
                            return out;
                        }
                    }
                }
            }
        }
        out
    }

    /// Earliest instant this interface needs a poll.
    pub fn next_wakeup(&self) -> SimTime {
        let mut t = SimTime::MAX;
        match self.phase {
            IfacePhase::Idle => {}
            IfacePhase::Associating => t = t.min(self.mac.next_wakeup()),
            IfacePhase::Dhcp => t = t.min(self.dhcp.next_wakeup()),
            IfacePhase::Verifying | IfacePhase::Connected => {
                t = t.min(self.ping.next_wakeup());
                if let Some(tcp) = &self.tcp {
                    t = t.min(tcp.next_wakeup());
                }
                if self.tcp_enabled && self.phase == IfacePhase::Connected {
                    t = t.min(self.flow_progress_at + Self::FLOW_STALL);
                    if let Some(fb) = self.fell_back_at {
                        t = t.min(fb + Self::PORTAL_SUSPECT);
                    }
                }
            }
        }
        t
    }

    /// Whether `on_frame` may have unlocked a transmission that a
    /// follow-up `poll` at the same instant must flush. Join-phase
    /// machines (auth → assoc → DHCP → verify) advance frame by frame,
    /// so any received frame can unlock the next handshake step. In
    /// steady `Connected` state every transmission is deadline-driven:
    /// unless a deadline is already due or the flow needs re-dialling,
    /// the poll at the next scheduled wakeup reproduces the same work,
    /// so the per-data-frame poll can be elided.
    pub fn needs_immediate_poll(&self, now: SimTime) -> bool {
        match self.phase {
            IfacePhase::Idle => false,
            IfacePhase::Connected => {
                (self.tcp_enabled && self.tcp.as_ref().map(|t| t.has_failed()).unwrap_or(true))
                    || self.next_wakeup() <= now
            }
            _ => true,
        }
    }

    /// Process a frame relevant to this interface.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame, log: &mut JoinLog) -> Vec<IfaceEvent> {
        let mut out = Vec::new();
        // Link-layer management first.
        for ev in self.mac.on_frame(now, frame, log) {
            match ev {
                MacEvent::Send(f) => out.push(IfaceEvent::Transmit(f)),
                MacEvent::Associated { .. } => {
                    // Association done → start DHCP (cached fast path if a
                    // lease was supplied).
                    self.phase = IfacePhase::Dhcp;
                    let cached = self.lease.take().filter(|l| l.valid_at(now));
                    self.dhcp.start(now, cached);
                }
                MacEvent::JoinFailed { bssid } => {
                    log.join_failures += 1;
                    out.push(IfaceEvent::Down {
                        bssid,
                        outcome: Some(JoinOutcome::Failed),
                    });
                    self.teardown_stacks();
                    return out;
                }
                MacEvent::Deauthenticated { bssid } => {
                    out.push(IfaceEvent::Down {
                        bssid,
                        outcome: self.pending_outcome(),
                    });
                    self.teardown_stacks();
                    return out;
                }
            }
        }
        // After a state change the MAC may need to transmit immediately
        // (e.g. the association request right after auth succeeds).
        // The driver polls us next; no action needed here.

        // Network payloads.
        if let FrameBody::Data { packet, .. } = &frame.body {
            match &packet.payload {
                L4::Dhcp(msg) => {
                    for ev in self.dhcp.on_message(now, msg) {
                        match ev {
                            DhcpClientEvent::Send(m) => {
                                out.push(IfaceEvent::Transmit(self.wrap_dhcp(m)))
                            }
                            DhcpClientEvent::Bound {
                                lease,
                                took,
                                via_cache,
                            } => {
                                self.lease = Some(lease);
                                // The lease names the gateway: resolve it.
                                // A rejoin after an ARP-poison episode
                                // lands here again — that second
                                // resolution *is* the recovery.
                                self.arp.resolve(now, lease.server);
                                self.phase = IfacePhase::Verifying;
                                log.record_dhcp(now, took);
                                let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                                out.push(IfaceEvent::GotLease {
                                    bssid,
                                    lease,
                                    took,
                                    via_cache,
                                });
                                self.ping.start(now);
                            }
                            DhcpClientEvent::Failed => {
                                log.dhcp_failures += 1;
                                log.join_failures += 1;
                                let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                                out.push(IfaceEvent::Down {
                                    bssid,
                                    outcome: Some(JoinOutcome::AssociatedOnly),
                                });
                                self.teardown_stacks();
                                return out;
                            }
                            DhcpClientEvent::Nak => {
                                // Stale cached lease: tell the driver to
                                // evict it (the client already falls back
                                // to a fresh DISCOVER or fails on its own).
                                let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                                out.push(IfaceEvent::LeaseRejected { bssid });
                            }
                        }
                    }
                }
                L4::Icmp(msg) => {
                    for ev in self.ping.on_reply(now, msg) {
                        if let PingEvent::Up = ev {
                            let was_verifying = self.phase == IfacePhase::Verifying;
                            self.phase = IfacePhase::Connected;
                            if was_verifying && !self.fully_joined {
                                self.fully_joined = true;
                                let join_took = now.saturating_since(self.join_started);
                                log.record_join(now, join_took);
                                let bssid = self.bssid().unwrap_or(MacAddr::BROADCAST);
                                out.push(IfaceEvent::ConnectivityUp { bssid, join_took });
                                if self.tcp_enabled {
                                    let flow = self.open_flow(now);
                                    out.extend(flow);
                                }
                            }
                        }
                    }
                }
                L4::Tcp(seg) => {
                    let ack = self.tcp.as_mut().and_then(|tcp| tcp.on_segment(now, seg));
                    if let Some(ack) = ack {
                        out.push(IfaceEvent::Transmit(self.wrap_tcp(ack)));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_wire::{Channel, DhcpMessage, DhcpOp, IcmpMessage, Ssid, TcpFlags, TcpSegment};

    const AP: MacAddr = MacAddr([2, 0, 0, 0, 0, 100]);

    fn iface() -> (ClientIface, JoinLog) {
        (
            ClientIface::new(
                0,
                MacAddr::from_id(1),
                ClientMacConfig::reduced(),
                DhcpClientConfig::reduced(SimDuration::from_millis(200)),
                PingConfig::paper(0),
                true,
            ),
            JoinLog::new(),
        )
    }

    fn target() -> ApTarget {
        ApTarget {
            bssid: AP,
            ssid: Ssid::new("net"),
            channel: Channel::CH6,
        }
    }

    fn ap_frame(body: FrameBody) -> Frame {
        Frame {
            src: AP,
            dst: MacAddr::from_id(1),
            bssid: AP,
            body,
        }
    }

    fn ap_data(payload: L4) -> Frame {
        ap_frame(FrameBody::Data {
            packet: Ipv4Packet {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(10, 0, 0, 9),
                payload,
            },
            more_data: false,
        })
    }

    /// Drive the interface through association+dhcp+ping to Connected.
    fn connect(iface: &mut ClientIface, log: &mut JoinLog) -> Vec<IfaceEvent> {
        let t0 = SimTime::from_millis(0);
        iface.start_join(t0, target(), None);
        // Assoc handshake.
        let ev = iface.poll(t0, true, log);
        assert!(matches!(&ev[..], [IfaceEvent::Transmit(f)]
            if matches!(f.body, FrameBody::AuthRequest)));
        iface.on_frame(t0, &ap_frame(FrameBody::AuthResponse { ok: true }), log);
        let ev = iface.poll(t0, true, log);
        assert!(matches!(&ev[..], [IfaceEvent::Transmit(f)]
            if matches!(f.body, FrameBody::AssocRequest { .. })));
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AssocResponse { ok: true, aid: 1 }),
            log,
        );
        assert_eq!(iface.phase(), IfacePhase::Dhcp);
        // DHCP.
        let ev = iface.poll(t0, true, log);
        let xid = match &ev[..] {
            [IfaceEvent::Transmit(f)] => match &f.body {
                FrameBody::Data { packet, .. } => match &packet.payload {
                    L4::Dhcp(m) => {
                        assert_eq!(m.op, DhcpOp::Discover);
                        m.xid
                    }
                    _ => panic!(),
                },
                _ => panic!(),
            },
            other => panic!("{other:?}"),
        };
        let offer = DhcpMessage {
            op: DhcpOp::Offer,
            xid,
            chaddr: MacAddr::from_id(1),
            yiaddr: Ipv4Addr::new(10, 0, 0, 9),
            server_id: Ipv4Addr::new(10, 0, 0, 1),
            lease: SimDuration::from_secs(3600),
        };
        iface.on_frame(t0, &ap_data(L4::Dhcp(offer.clone())), log);
        iface.poll(t0, true, log); // sends REQUEST
        let ack = DhcpMessage {
            op: DhcpOp::Ack,
            ..offer
        };
        let t1 = SimTime::from_millis(500);
        let ev = iface.on_frame(t1, &ap_data(L4::Dhcp(ack)), log);
        assert!(ev.iter().any(|e| matches!(e, IfaceEvent::GotLease { .. })));
        assert_eq!(iface.phase(), IfacePhase::Verifying);
        // Ping.
        let ev = iface.poll(t1, true, log);
        let (id, seq) = ev
            .iter()
            .find_map(|e| match e {
                IfaceEvent::Transmit(f) => match &f.body {
                    FrameBody::Data { packet, .. } => match packet.payload {
                        L4::Icmp(IcmpMessage::EchoRequest { id, seq }) => Some((id, seq)),
                        _ => None,
                    },
                    _ => None,
                },
                _ => None,
            })
            .expect("ping sent");
        let t2 = SimTime::from_millis(550);
        let ev = iface.on_frame(
            t2,
            &ap_data(L4::Icmp(IcmpMessage::EchoReply { id, seq })),
            log,
        );
        assert!(ev
            .iter()
            .any(|e| matches!(e, IfaceEvent::ConnectivityUp { .. })));
        assert_eq!(iface.phase(), IfacePhase::Connected);
        ev
    }

    #[test]
    fn full_join_records_all_stages() {
        let (mut iface, mut log) = iface();
        let ev = connect(&mut iface, &mut log);
        assert_eq!(log.assoc.len(), 1);
        assert_eq!(log.dhcp.len(), 1);
        assert_eq!(log.join.len(), 1);
        assert!(iface.is_connected());
        // A TCP SYN goes out upon connectivity.
        assert!(ev.iter().any(|e| matches!(e, IfaceEvent::Transmit(f)
            if matches!(&f.body, FrameBody::Data { packet, .. }
                if matches!(&packet.payload, L4::Tcp(s) if s.flags.syn)))));
    }

    #[test]
    fn silent_path_falls_back_to_gateway_pings() {
        let (mut iface, mut log) = iface();
        let t0 = SimTime::ZERO;
        iface.start_join(t0, target(), None);
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AuthResponse { ok: true }),
            &mut log,
        );
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AssocResponse { ok: true, aid: 1 }),
            &mut log,
        );
        let ev = iface.poll(t0, true, &mut log);
        let xid = ev
            .iter()
            .find_map(|e| match e {
                IfaceEvent::Transmit(f) => match &f.body {
                    FrameBody::Data { packet, .. } => match &packet.payload {
                        L4::Dhcp(m) => Some(m.xid),
                        _ => None,
                    },
                    _ => None,
                },
                _ => None,
            })
            .expect("DISCOVER sent");
        let offer = DhcpMessage {
            op: DhcpOp::Offer,
            xid,
            chaddr: MacAddr::from_id(1),
            yiaddr: Ipv4Addr::new(10, 0, 0, 9),
            server_id: Ipv4Addr::new(10, 0, 0, 1),
            lease: SimDuration::from_secs(3600),
        };
        iface.on_frame(t0, &ap_data(L4::Dhcp(offer.clone())), &mut log);
        iface.poll(t0, true, &mut log); // REQUEST
        let ack = DhcpMessage {
            op: DhcpOp::Ack,
            ..offer
        };
        iface.on_frame(t0, &ap_data(L4::Dhcp(ack)), &mut log);
        assert_eq!(iface.phase(), IfacePhase::Verifying);
        // Never answer a single probe: after 10 silent expiries the
        // probes must redirect to the gateway (paper fallback, §3.2.2).
        let mut server_pings = 0;
        let mut gateway_pings = 0;
        for i in 0..=11u64 {
            let t = t0 + SimDuration::from_millis(i * 100);
            for ev in iface.poll(t, true, &mut log) {
                if let IfaceEvent::Transmit(f) = ev {
                    if let FrameBody::Data { packet, .. } = f.body {
                        if matches!(packet.payload, L4::Icmp(IcmpMessage::EchoRequest { .. })) {
                            if packet.dst == SERVER_IP {
                                server_pings += 1;
                                assert_eq!(
                                    gateway_pings, 0,
                                    "must not flap back to end-to-end probing"
                                );
                            } else {
                                assert_eq!(packet.dst, Ipv4Addr::new(10, 0, 0, 1));
                                gateway_pings += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(server_pings, 10);
        assert!(gateway_pings > 0);
    }

    #[test]
    fn dhcp_nak_on_cached_lease_reports_lease_rejected() {
        let (mut iface, mut log) = iface();
        let t0 = SimTime::ZERO;
        let cached = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 9),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: SimTime::from_secs(3600),
        };
        iface.start_join(t0, target(), Some(cached));
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AuthResponse { ok: true }),
            &mut log,
        );
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AssocResponse { ok: true, aid: 1 }),
            &mut log,
        );
        // Cached fast path: the REQUEST goes straight out.
        let ev = iface.poll(t0, true, &mut log);
        let xid = ev
            .iter()
            .find_map(|e| match e {
                IfaceEvent::Transmit(f) => match &f.body {
                    FrameBody::Data { packet, .. } => match &packet.payload {
                        L4::Dhcp(m) if m.op == DhcpOp::Request => Some(m.xid),
                        _ => None,
                    },
                    _ => None,
                },
                _ => None,
            })
            .expect("cached REQUEST sent");
        let nak = DhcpMessage {
            op: DhcpOp::Nak,
            xid,
            chaddr: MacAddr::from_id(1),
            yiaddr: Ipv4Addr::UNSPECIFIED,
            server_id: Ipv4Addr::new(10, 0, 0, 1),
            lease: SimDuration::ZERO,
        };
        let ev = iface.on_frame(t0, &ap_data(L4::Dhcp(nak)), &mut log);
        // The driver is told to evict the stale cache entry...
        assert!(ev
            .iter()
            .any(|e| matches!(e, IfaceEvent::LeaseRejected { bssid } if *bssid == AP)));
        // ...while the client itself falls back to a fresh DISCOVER.
        assert_eq!(iface.phase(), IfacePhase::Dhcp);
        let ev = iface.poll(t0, true, &mut log);
        assert!(ev.iter().any(|e| matches!(e, IfaceEvent::Transmit(f)
            if matches!(&f.body, FrameBody::Data { packet, .. }
                if matches!(&packet.payload, L4::Dhcp(m) if m.op == DhcpOp::Discover)))));
    }

    #[test]
    fn tcp_delivery_counts_bytes() {
        let (mut iface, mut log) = iface();
        connect(&mut iface, &mut log);
        let t = SimTime::from_secs(1);
        // Grab the receiver's iss by replying SYN-ACK to its SYN (iss is
        // deterministic: (index+1)*10_000 = 10_000).
        let synack = TcpSegment {
            src_port: SERVER_PORT,
            dst_port: 5_000,
            seq: 777,
            ack: 10_001,
            window: 65_535,
            flags: TcpFlags::SYN_ACK,
            payload_len: 0,
        };
        let ev = iface.on_frame(t, &ap_data(L4::Tcp(synack)), &mut log);
        assert!(!ev.is_empty());
        let data = TcpSegment {
            src_port: SERVER_PORT,
            dst_port: 5_000,
            seq: 778,
            ack: 0,
            window: 65_535,
            flags: TcpFlags::ACK,
            payload_len: 1448,
        };
        iface.on_frame(t, &ap_data(L4::Tcp(data)), &mut log);
        assert_eq!(iface.delivered_bytes(), 1448);
    }

    #[test]
    fn dead_pings_tear_down_and_keep_full_outcome() {
        let (mut iface, mut log) = iface();
        connect(&mut iface, &mut log);
        // Stop answering pings; drive time forward past 30 losses.
        let mut down = None;
        for i in 0..600 {
            let t = SimTime::from_millis(600 + i * 100);
            for ev in iface.poll(t, true, &mut log) {
                if let IfaceEvent::Down { outcome, .. } = ev {
                    down = Some(outcome);
                }
            }
            if down.is_some() {
                break;
            }
        }
        // outcome None: FullyJoined was already recorded at Up.
        assert_eq!(down, Some(None));
        assert_eq!(iface.phase(), IfacePhase::Idle);
    }

    #[test]
    fn assoc_failure_reports_failed_outcome() {
        let (mut iface, mut log) = iface();
        iface.start_join(SimTime::ZERO, target(), None);
        let mut down = None;
        for i in 0..20 {
            let t = SimTime::from_millis(i * 100);
            for ev in iface.poll(t, true, &mut log) {
                if let IfaceEvent::Down { outcome, .. } = ev {
                    down = Some(outcome);
                }
            }
            if down.is_some() {
                break;
            }
        }
        assert_eq!(down, Some(Some(JoinOutcome::Failed)));
        assert_eq!(log.join_failures, 1);
    }

    #[test]
    fn dhcp_failure_reports_associated_only() {
        let (mut iface, mut log) = iface();
        let t0 = SimTime::ZERO;
        iface.start_join(t0, target(), None);
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AuthResponse { ok: true }),
            &mut log,
        );
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AssocResponse { ok: true, aid: 1 }),
            &mut log,
        );
        // Never answer DHCP.
        let mut down = None;
        for i in 0..30 {
            let t = SimTime::from_millis(i * 200);
            for ev in iface.poll(t, true, &mut log) {
                if let IfaceEvent::Down { outcome, .. } = ev {
                    down = Some(outcome);
                }
            }
            if down.is_some() {
                break;
            }
        }
        assert_eq!(down, Some(Some(JoinOutcome::AssociatedOnly)));
        assert_eq!(log.dhcp_failures, 1);
    }

    #[test]
    fn cached_lease_skips_discover() {
        let (mut iface, mut log) = iface();
        let t0 = SimTime::ZERO;
        let cached = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 9),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: SimTime::from_secs(1000),
        };
        iface.start_join(t0, target(), Some(cached));
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AuthResponse { ok: true }),
            &mut log,
        );
        iface.poll(t0, true, &mut log);
        iface.on_frame(
            t0,
            &ap_frame(FrameBody::AssocResponse { ok: true, aid: 1 }),
            &mut log,
        );
        // First DHCP transmission is a REQUEST, not a DISCOVER.
        let ev = iface.poll(t0, true, &mut log);
        let op = ev
            .iter()
            .find_map(|e| match e {
                IfaceEvent::Transmit(f) => match &f.body {
                    FrameBody::Data { packet, .. } => match &packet.payload {
                        L4::Dhcp(m) => Some(m.op),
                        _ => None,
                    },
                    _ => None,
                },
                _ => None,
            })
            .unwrap();
        assert_eq!(op, DhcpOp::Request);
    }

    #[test]
    fn teardown_sends_deauth_when_associated() {
        let (mut iface, mut log) = iface();
        connect(&mut iface, &mut log);
        let ev = iface.teardown(SimTime::from_secs(2));
        assert!(ev.iter().any(|e| matches!(e, IfaceEvent::Transmit(f)
            if matches!(f.body, FrameBody::Deauth { .. }))));
        assert!(ev
            .iter()
            .any(|e| matches!(e, IfaceEvent::Down { outcome: None, .. })));
        assert!(!iface.is_busy());
    }

    #[test]
    fn delivered_bytes_survive_reconnects() {
        let (mut iface, mut log) = iface();
        connect(&mut iface, &mut log);
        let synack = TcpSegment {
            src_port: SERVER_PORT,
            dst_port: 5_000,
            seq: 0,
            ack: 10_001,
            window: 65_535,
            flags: TcpFlags::SYN_ACK,
            payload_len: 0,
        };
        let t = SimTime::from_secs(1);
        iface.on_frame(t, &ap_data(L4::Tcp(synack)), &mut log);
        let data = TcpSegment {
            src_port: SERVER_PORT,
            dst_port: 5_000,
            seq: 1,
            ack: 0,
            window: 65_535,
            flags: TcpFlags::ACK,
            payload_len: 500,
        };
        iface.on_frame(t, &ap_data(L4::Tcp(data)), &mut log);
        assert_eq!(iface.delivered_bytes(), 500);
        iface.teardown(SimTime::from_secs(2));
        assert_eq!(iface.delivered_bytes(), 500, "bytes persist after teardown");
    }
}
