//! **Spider** — concurrent Wi-Fi connections for highly mobile clients.
//!
//! This crate is the paper's primary contribution, structured exactly
//! along its three design choices (§3.1):
//!
//! 1. **Channel-based switching** ([`schedule`]) — the radio is scheduled
//!    among *channels*, not APs. All interfaces on the scheduled channel
//!    are live simultaneously, so joining one AP never starves
//!    communication with another on the same channel, and same-channel
//!    aggregation pays zero switching overhead.
//! 2. **AP selection by join success** ([`utility`]) — optimal multi-AP
//!    subset selection is NP-hard (paper Appendix A; see
//!    `spider-model::selection` for the proof's construction and an exact
//!    solver), so Spider ranks APs by a recency-weighted history of how
//!    far past join attempts progressed (association < DHCP < verified
//!    connectivity), bootstrapping unseen APs optimistically and breaking
//!    ties by signal strength.
//! 3. **One interface per AP** ([`iface`]) — each concurrent connection
//!    is a self-contained stack: association state machine, DHCP client
//!    with per-BSSID lease cache, ping-based liveness (10/s, 30 misses =
//!    dead) and a TCP download endpoint.
//!
//! [`driver::SpiderDriver`] glues these into the `ClientSystem` driven by
//! the simulation world, and [`config::SpiderConfig`] exposes the four
//! evaluation configurations of §4.1 plus every timer the paper sweeps.
//! [`adaptive`] implements the §4.8 "future work" extension: switching
//! between single-channel and multi-channel operation based on observed
//! conditions.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod blacklist;
pub mod config;
pub mod driver;
pub mod iface;
pub mod schedule;
pub mod utility;

pub use blacklist::{ApBlacklist, BlacklistConfig};
pub use config::{OperationMode, SpiderConfig};
pub use driver::SpiderDriver;
pub use schedule::ChannelSchedule;
pub use utility::{JoinOutcome, UtilityConfig, UtilityTable};
