//! End-to-end liveness probing.
//!
//! Spider continuously verifies that a joined connection actually reaches
//! the Internet: it pings end-to-end (or the gateway when ICMP is
//! filtered) at 10 pings/second and declares the connection dropped
//! after 30 consecutive losses (§3.2.2). The first successful reply is
//! also what completes a "join" in the paper's accounting — a join is
//! association + DHCP + *verified connectivity* (§3.1).

use spider_simcore::{SimDuration, SimTime};
use spider_wire::IcmpMessage;
use std::collections::VecDeque;

/// Liveness-probe configuration.
#[derive(Debug, Clone)]
pub struct PingConfig {
    /// Interval between probes (100 ms → 10/s).
    pub interval: SimDuration,
    /// Consecutive losses after which the link is declared dead.
    pub fail_threshold: u32,
    /// ICMP identifier for this probe stream (one per interface).
    pub id: u16,
    /// How long after transmission an unanswered probe counts as lost.
    /// The paper counts a probe failed when the next one is due, so the
    /// paper configuration sets this to `interval`; replies that arrive
    /// after the deadline still reset the failure counter (see
    /// [`PingEngine::on_reply`]), so a slow-but-alive path is not
    /// declared dead.
    pub reply_deadline: SimDuration,
    /// After this many probes in a session with *no* replies at all,
    /// the caller should redirect probes at the gateway — the §3.2.2
    /// fallback for APs whose upstream filters end-to-end ICMP.
    /// Exposed via [`PingEngine::should_fall_back`]; `None` disables.
    pub gateway_fallback_after: Option<u32>,
}

impl PingConfig {
    /// The paper's parameters: 10 pings/second, 30 consecutive
    /// failures, a probe counted lost when its successor is due, and
    /// the gateway fallback armed after 10 unanswered probes.
    pub fn paper(id: u16) -> PingConfig {
        PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold: 30,
            id,
            reply_deadline: SimDuration::from_millis(100),
            gateway_fallback_after: Some(10),
        }
    }
}

/// Events produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PingEvent {
    /// Transmit this echo request.
    Send(IcmpMessage),
    /// First reply (or first after a Down): connectivity verified.
    Up,
    /// `fail_threshold` consecutive probes lost: connection dead.
    Down,
}

/// The liveness engine for one interface.
#[derive(Debug, Clone)]
pub struct PingEngine {
    cfg: PingConfig,
    running: bool,
    next_send: SimTime,
    next_seq: u16,
    /// Outstanding (seq, deadline) pairs, oldest first.
    outstanding: VecDeque<(u16, SimTime)>,
    consecutive_failures: u32,
    alive: bool,
    /// First sequence number of the current session (set by `start`);
    /// replies older than this are from a previous binding and ignored.
    session_start_seq: u16,
    /// Probes expired unanswered this session.
    session_expired: u32,
    /// Replies received this session (late ones included).
    session_received: u64,
    /// Total probes sent (observability).
    pub sent: u64,
    /// Total replies received.
    pub received: u64,
}

impl PingEngine {
    /// Create a stopped engine.
    pub fn new(cfg: PingConfig) -> PingEngine {
        PingEngine {
            cfg,
            running: false,
            next_send: SimTime::ZERO,
            next_seq: 0,
            outstanding: VecDeque::new(),
            consecutive_failures: 0,
            alive: false,
            session_start_seq: 0,
            session_expired: 0,
            session_received: 0,
            sent: 0,
            received: 0,
        }
    }

    /// Start probing at `now` (e.g. right after a DHCP bind).
    pub fn start(&mut self, now: SimTime) {
        self.running = true;
        self.next_send = now;
        self.outstanding.clear();
        self.consecutive_failures = 0;
        self.alive = false;
        self.session_start_seq = self.next_seq;
        self.session_expired = 0;
        self.session_received = 0;
    }

    /// Stop probing (interface torn down).
    pub fn stop(&mut self) {
        self.running = false;
        self.outstanding.clear();
        self.alive = false;
    }

    /// Whether the engine currently believes the link is alive.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Whether the engine is probing.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Timer processing. Probes are sent only while `on_channel`; loss
    /// deadlines expire regardless (a probe that got no answer is a
    /// failure no matter where the radio is).
    pub fn poll(&mut self, now: SimTime, on_channel: bool) -> Vec<PingEvent> {
        let mut out = Vec::new();
        if !self.running {
            return out;
        }
        // Expire outstanding probes at `sent + reply_deadline`. The
        // paper counts a probe failed when the next one is due; a reply
        // that shows up after its probe expired is handled in
        // `on_reply` and still resets the failure counter.
        while let Some(&(_, deadline)) = self.outstanding.front() {
            if now >= deadline {
                self.outstanding.pop_front();
                self.consecutive_failures += 1;
                self.session_expired += 1;
                if self.consecutive_failures == self.cfg.fail_threshold {
                    if self.alive {
                        self.alive = false;
                        out.push(PingEvent::Down);
                    } else {
                        // Never came up: still report Down once so the
                        // caller can abandon the join.
                        out.push(PingEvent::Down);
                    }
                }
            } else {
                break;
            }
        }
        // While off-channel the probe cannot be sent; skip it forward
        // (the radio being elsewhere is not a liveness failure in
        // itself — unanswered probes already in flight count above).
        if now >= self.next_send && !on_channel {
            self.next_send = now + self.cfg.interval;
        }
        // Send the next probe when due.
        if now >= self.next_send && on_channel {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.outstanding
                .push_back((seq, now + self.cfg.reply_deadline));
            self.sent += 1;
            self.next_send = now + self.cfg.interval;
            out.push(PingEvent::Send(IcmpMessage::EchoRequest {
                id: self.cfg.id,
                seq,
            }));
        }
        out
    }

    /// Next instant `poll` must run.
    pub fn next_wakeup(&self) -> SimTime {
        if !self.running {
            return SimTime::MAX;
        }
        let dl = self
            .outstanding
            .front()
            .map(|&(_, d)| d)
            .unwrap_or(SimTime::MAX);
        self.next_send.min(dl)
    }

    /// Process a received echo reply. Returns `Up` on a transition to
    /// alive.
    pub fn on_reply(&mut self, _now: SimTime, msg: &IcmpMessage) -> Vec<PingEvent> {
        let IcmpMessage::EchoReply { id, seq } = msg else {
            return Vec::new();
        };
        if *id != self.cfg.id || !self.running {
            return Vec::new();
        }
        // Any reply for a still-outstanding probe counts; later probes
        // whose replies raced are left to expire harmlessly (failures
        // reset below anyway).
        if let Some(pos) = self.outstanding.iter().position(|&(s, _)| s == *seq) {
            // Everything older than the answered probe is moot.
            self.outstanding.drain(..=pos);
        } else {
            // Not outstanding: either already expired (a slow path, e.g.
            // a bloated backhaul queue) or from before this session.
            // Late replies from *this* session still prove the path
            // forwards, so they reset the failure counter; stale ones
            // from a previous binding are ignored.
            let age = seq.wrapping_sub(self.session_start_seq);
            let sent_this_session = self.next_seq.wrapping_sub(self.session_start_seq);
            if age >= sent_this_session {
                return Vec::new();
            }
        }
        self.received += 1;
        self.session_received += 1;
        self.consecutive_failures = 0;
        if !self.alive {
            self.alive = true;
            vec![PingEvent::Up]
        } else {
            Vec::new()
        }
    }

    /// Whether the caller should redirect probes at the gateway: the
    /// session has produced `gateway_fallback_after` expired probes and
    /// not a single reply — end-to-end ICMP is likely filtered
    /// upstream of this AP (§3.2.2).
    pub fn should_fall_back(&self) -> bool {
        match self.cfg.gateway_fallback_after {
            Some(n) => self.running && self.session_received == 0 && self.session_expired >= n,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A relaxed engine: 3-interval reply deadline, no fallback. The
    /// older tests below were written against this grace window.
    fn engine() -> PingEngine {
        let mut e = PingEngine::new(PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold: 3,
            id: 9,
            reply_deadline: SimDuration::from_millis(300),
            gateway_fallback_after: None,
        });
        e.start(SimTime::ZERO);
        e
    }

    /// Paper-style timing (deadline = interval) with a small threshold.
    fn strict_engine(fail_threshold: u32) -> PingEngine {
        let mut e = PingEngine::new(PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold,
            id: 9,
            reply_deadline: SimDuration::from_millis(100),
            gateway_fallback_after: None,
        });
        e.start(SimTime::ZERO);
        e
    }

    fn reply(seq: u16) -> IcmpMessage {
        IcmpMessage::EchoReply { id: 9, seq }
    }

    #[test]
    fn first_reply_reports_up() {
        let mut e = engine();
        let ev = e.poll(SimTime::ZERO, true);
        assert!(matches!(
            &ev[..],
            [PingEvent::Send(IcmpMessage::EchoRequest { seq: 0, .. })]
        ));
        let ev = e.on_reply(SimTime::from_millis(20), &reply(0));
        assert_eq!(ev, vec![PingEvent::Up]);
        assert!(e.is_alive());
        // A second reply does not re-announce.
        e.poll(SimTime::from_millis(100), true);
        let ev = e.on_reply(SimTime::from_millis(120), &reply(1));
        assert!(ev.is_empty());
    }

    #[test]
    fn consecutive_failures_report_down() {
        let mut e = engine();
        // Answer the first probe so we are Up.
        e.poll(SimTime::ZERO, true);
        e.on_reply(SimTime::from_millis(10), &reply(0));
        // Let the next probes go unanswered. Deadline is send + 3*interval.
        let mut down = false;
        for i in 1..20 {
            let t = SimTime::from_millis(i * 100);
            for ev in e.poll(t, true) {
                if ev == PingEvent::Down {
                    down = true;
                }
            }
            if down {
                break;
            }
        }
        assert!(down);
        assert!(!e.is_alive());
    }

    #[test]
    fn reply_resets_failure_count() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true); // seq 0
        e.on_reply(SimTime::from_millis(10), &reply(0));
        e.poll(SimTime::from_millis(100), true); // seq 1
        e.poll(SimTime::from_millis(200), true); // seq 2
        e.poll(SimTime::from_millis(300), true); // seq 3
                                                 // seq1 expires at 400 (1 failure) ... then seq 3 answered at 450.
        let ev = e.poll(SimTime::from_millis(400), true); // seq 4 sent, seq1 expired
        assert!(!ev.contains(&PingEvent::Down));
        e.on_reply(SimTime::from_millis(450), &reply(3));
        // failures reset; takes 3 fresh expiries to go down again.
        assert!(e.is_alive());
    }

    #[test]
    fn probes_only_sent_on_channel() {
        let mut e = engine();
        // Off-channel: the due probe is skipped forward, not sent.
        assert!(e.poll(SimTime::ZERO, false).is_empty());
        assert_eq!(e.sent, 0);
        assert_eq!(e.next_wakeup(), SimTime::from_millis(100));
        // Back on channel after the skip: probe goes out.
        let ev = e.poll(SimTime::from_millis(100), true);
        assert_eq!(ev.len(), 1);
        assert_eq!(e.sent, 1);
    }

    #[test]
    fn stop_silences_engine() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true);
        e.stop();
        assert!(e.poll(SimTime::from_millis(100), true).is_empty());
        assert_eq!(e.next_wakeup(), SimTime::MAX);
        assert!(e.on_reply(SimTime::from_millis(110), &reply(0)).is_empty());
    }

    #[test]
    fn foreign_id_is_ignored() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true);
        let foreign = IcmpMessage::EchoReply { id: 1, seq: 0 };
        assert!(e.on_reply(SimTime::from_millis(1), &foreign).is_empty());
        assert!(!e.is_alive());
    }

    #[test]
    fn never_up_still_reports_down_once() {
        let mut e = engine();
        let mut downs = 0;
        for i in 0..40 {
            for ev in e.poll(SimTime::from_millis(i * 100), true) {
                if ev == PingEvent::Down {
                    downs += 1;
                }
            }
        }
        assert_eq!(downs, 1);
    }

    #[test]
    fn wakeup_tracks_send_and_deadlines() {
        let mut e = engine();
        assert_eq!(e.next_wakeup(), SimTime::ZERO);
        e.poll(SimTime::ZERO, true);
        // Next send at 100ms; outstanding deadline at 300ms.
        assert_eq!(e.next_wakeup(), SimTime::from_millis(100));
    }

    #[test]
    fn down_fires_exactly_at_fail_threshold() {
        // Boundary check: with threshold 3 and deadline = interval, the
        // Down must fire at the tick where the 3rd probe expires — not
        // one earlier, not one later. Probe i goes out at i*100ms and
        // expires at (i+1)*100ms.
        let mut e = strict_engine(3);
        let mut down_at = None;
        for i in 0..10u64 {
            let t = SimTime::from_millis(i * 100);
            for ev in e.poll(t, true) {
                if ev == PingEvent::Down && down_at.is_none() {
                    down_at = Some(t);
                }
            }
        }
        // Expiries land at 100/200/300ms; the 3rd is the threshold.
        assert_eq!(down_at, Some(SimTime::from_millis(300)));
    }

    #[test]
    fn reordered_reply_across_expiry_deadline_resets_counter() {
        // seq 0 expires before its reply lands while seq 1's reply
        // arrives in-order: the late seq-0 reply (already expired) must
        // still be accepted as proof of life, not dropped as unknown.
        let mut e = strict_engine(3);
        e.poll(SimTime::ZERO, true); // seq 0, deadline 100ms
        let ev = e.poll(SimTime::from_millis(100), true); // seq 0 expires, seq 1 out
        assert!(!ev.contains(&PingEvent::Down));
        // The reply to the expired probe arrives late, out of order.
        let ev = e.on_reply(SimTime::from_millis(150), &reply(0));
        assert_eq!(ev, vec![PingEvent::Up]);
        assert!(e.is_alive());
        // And the in-flight probe answers normally afterwards.
        assert!(e.on_reply(SimTime::from_millis(160), &reply(1)).is_empty());
    }

    #[test]
    fn late_success_after_down_resets_counter_and_revives() {
        let mut e = strict_engine(3);
        // Probes 0..=2 expire unanswered: Down at 300ms.
        let mut down = false;
        for i in 0..4u64 {
            for ev in e.poll(SimTime::from_millis(i * 100), true) {
                if ev == PingEvent::Down {
                    down = true;
                }
            }
        }
        assert!(down);
        // A straggler reply for probe 2 finally crawls back: failure
        // counter resets and the engine reports Up again.
        let ev = e.on_reply(SimTime::from_millis(350), &reply(2));
        assert_eq!(ev, vec![PingEvent::Up]);
        assert!(e.is_alive());
        // Fresh failures must again accumulate from zero: the next Down
        // needs 3 new expiries (probes 3..=5 expire at 400/500/600ms).
        let mut second_down_at = None;
        for i in 4..10u64 {
            let t = SimTime::from_millis(i * 100);
            for ev in e.poll(t, true) {
                if ev == PingEvent::Down && second_down_at.is_none() {
                    second_down_at = Some(t);
                }
            }
        }
        assert_eq!(second_down_at, Some(SimTime::from_millis(600)));
    }

    #[test]
    fn stale_reply_from_previous_session_is_ignored() {
        let mut e = strict_engine(3);
        e.poll(SimTime::ZERO, true); // seq 0 of session 1
        e.stop();
        e.start(SimTime::from_secs(1)); // session 2 starts at seq 1
                                        // Session-1 reply must not count for session 2.
        assert!(e.on_reply(SimTime::from_secs(1), &reply(0)).is_empty());
        assert!(!e.is_alive());
        assert_eq!(e.received, 0);
    }

    #[test]
    fn gateway_fallback_arms_after_silent_probes() {
        let mut e = PingEngine::new(PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold: 30,
            id: 9,
            reply_deadline: SimDuration::from_millis(100),
            gateway_fallback_after: Some(5),
        });
        e.start(SimTime::ZERO);
        for i in 0..5u64 {
            e.poll(SimTime::from_millis(i * 100), true);
            assert!(!e.should_fall_back());
        }
        // The 5th expiry happens at 500ms: now fall back.
        e.poll(SimTime::from_millis(500), true);
        assert!(e.should_fall_back());
        // A reply (to the still-outstanding probe) disarms it for good.
        e.on_reply(SimTime::from_millis(510), &reply(5));
        assert!(!e.should_fall_back());
    }
}
