//! End-to-end liveness probing.
//!
//! Spider continuously verifies that a joined connection actually reaches
//! the Internet: it pings end-to-end (or the gateway when ICMP is
//! filtered) at 10 pings/second and declares the connection dropped
//! after 30 consecutive losses (§3.2.2). The first successful reply is
//! also what completes a "join" in the paper's accounting — a join is
//! association + DHCP + *verified connectivity* (§3.1).

use spider_simcore::{SimDuration, SimTime};
use spider_wire::IcmpMessage;
use std::collections::VecDeque;

/// Liveness-probe configuration.
#[derive(Debug, Clone)]
pub struct PingConfig {
    /// Interval between probes (100 ms → 10/s).
    pub interval: SimDuration,
    /// Consecutive losses after which the link is declared dead.
    pub fail_threshold: u32,
    /// ICMP identifier for this probe stream (one per interface).
    pub id: u16,
}

impl PingConfig {
    /// The paper's parameters: 10 pings/second, 30 consecutive failures.
    pub fn paper(id: u16) -> PingConfig {
        PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold: 30,
            id,
        }
    }
}

/// Events produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PingEvent {
    /// Transmit this echo request.
    Send(IcmpMessage),
    /// First reply (or first after a Down): connectivity verified.
    Up,
    /// `fail_threshold` consecutive probes lost: connection dead.
    Down,
}

/// The liveness engine for one interface.
#[derive(Debug, Clone)]
pub struct PingEngine {
    cfg: PingConfig,
    running: bool,
    next_send: SimTime,
    next_seq: u16,
    /// Outstanding (seq, deadline) pairs, oldest first.
    outstanding: VecDeque<(u16, SimTime)>,
    consecutive_failures: u32,
    alive: bool,
    /// Total probes sent (observability).
    pub sent: u64,
    /// Total replies received.
    pub received: u64,
}

impl PingEngine {
    /// Create a stopped engine.
    pub fn new(cfg: PingConfig) -> PingEngine {
        PingEngine {
            cfg,
            running: false,
            next_send: SimTime::ZERO,
            next_seq: 0,
            outstanding: VecDeque::new(),
            consecutive_failures: 0,
            alive: false,
            sent: 0,
            received: 0,
        }
    }

    /// Start probing at `now` (e.g. right after a DHCP bind).
    pub fn start(&mut self, now: SimTime) {
        self.running = true;
        self.next_send = now;
        self.outstanding.clear();
        self.consecutive_failures = 0;
        self.alive = false;
    }

    /// Stop probing (interface torn down).
    pub fn stop(&mut self) {
        self.running = false;
        self.outstanding.clear();
        self.alive = false;
    }

    /// Whether the engine currently believes the link is alive.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Whether the engine is probing.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Timer processing. Probes are sent only while `on_channel`; loss
    /// deadlines expire regardless (a probe that got no answer is a
    /// failure no matter where the radio is).
    pub fn poll(&mut self, now: SimTime, on_channel: bool) -> Vec<PingEvent> {
        let mut out = Vec::new();
        if !self.running {
            return out;
        }
        // Expire outstanding probes. A probe is failed if unanswered one
        // full interval * threshold after transmission would be too lax;
        // the paper counts a probe failed when the next is due, i.e.
        // deadline = sent + interval.
        while let Some(&(_, deadline)) = self.outstanding.front() {
            if now >= deadline {
                self.outstanding.pop_front();
                self.consecutive_failures += 1;
                if self.consecutive_failures == self.cfg.fail_threshold {
                    if self.alive {
                        self.alive = false;
                        out.push(PingEvent::Down);
                    } else {
                        // Never came up: still report Down once so the
                        // caller can abandon the join.
                        out.push(PingEvent::Down);
                    }
                }
            } else {
                break;
            }
        }
        // While off-channel the probe cannot be sent; skip it forward
        // (the radio being elsewhere is not a liveness failure in
        // itself — unanswered probes already in flight count above).
        if now >= self.next_send && !on_channel {
            self.next_send = now + self.cfg.interval;
        }
        // Send the next probe when due.
        if now >= self.next_send && on_channel {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.outstanding
                .push_back((seq, now + self.cfg.interval * 3));
            self.sent += 1;
            self.next_send = now + self.cfg.interval;
            out.push(PingEvent::Send(IcmpMessage::EchoRequest {
                id: self.cfg.id,
                seq,
            }));
        }
        out
    }

    /// Next instant `poll` must run.
    pub fn next_wakeup(&self) -> SimTime {
        if !self.running {
            return SimTime::MAX;
        }
        let dl = self
            .outstanding
            .front()
            .map(|&(_, d)| d)
            .unwrap_or(SimTime::MAX);
        self.next_send.min(dl)
    }

    /// Process a received echo reply. Returns `Up` on a transition to
    /// alive.
    pub fn on_reply(&mut self, _now: SimTime, msg: &IcmpMessage) -> Vec<PingEvent> {
        let IcmpMessage::EchoReply { id, seq } = msg else {
            return Vec::new();
        };
        if *id != self.cfg.id || !self.running {
            return Vec::new();
        }
        // Any reply for a still-outstanding probe counts; later probes
        // whose replies raced are left to expire harmlessly (failures
        // reset below anyway).
        let Some(pos) = self.outstanding.iter().position(|&(s, _)| s == *seq) else {
            return Vec::new();
        };
        // Everything older than the answered probe is moot.
        self.outstanding.drain(..=pos);
        self.received += 1;
        self.consecutive_failures = 0;
        if !self.alive {
            self.alive = true;
            vec![PingEvent::Up]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PingEngine {
        let mut e = PingEngine::new(PingConfig {
            interval: SimDuration::from_millis(100),
            fail_threshold: 3,
            id: 9,
        });
        e.start(SimTime::ZERO);
        e
    }

    fn reply(seq: u16) -> IcmpMessage {
        IcmpMessage::EchoReply { id: 9, seq }
    }

    #[test]
    fn first_reply_reports_up() {
        let mut e = engine();
        let ev = e.poll(SimTime::ZERO, true);
        assert!(matches!(&ev[..], [PingEvent::Send(IcmpMessage::EchoRequest { seq: 0, .. })]));
        let ev = e.on_reply(SimTime::from_millis(20), &reply(0));
        assert_eq!(ev, vec![PingEvent::Up]);
        assert!(e.is_alive());
        // A second reply does not re-announce.
        e.poll(SimTime::from_millis(100), true);
        let ev = e.on_reply(SimTime::from_millis(120), &reply(1));
        assert!(ev.is_empty());
    }

    #[test]
    fn consecutive_failures_report_down() {
        let mut e = engine();
        // Answer the first probe so we are Up.
        e.poll(SimTime::ZERO, true);
        e.on_reply(SimTime::from_millis(10), &reply(0));
        // Let the next probes go unanswered. Deadline is send + 3*interval.
        let mut down = false;
        for i in 1..20 {
            let t = SimTime::from_millis(i * 100);
            for ev in e.poll(t, true) {
                if ev == PingEvent::Down {
                    down = true;
                }
            }
            if down {
                break;
            }
        }
        assert!(down);
        assert!(!e.is_alive());
    }

    #[test]
    fn reply_resets_failure_count() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true); // seq 0
        e.on_reply(SimTime::from_millis(10), &reply(0));
        e.poll(SimTime::from_millis(100), true); // seq 1
        e.poll(SimTime::from_millis(200), true); // seq 2
        e.poll(SimTime::from_millis(300), true); // seq 3
        // seq1 expires at 400 (1 failure) ... then seq 3 answered at 450.
        let ev = e.poll(SimTime::from_millis(400), true); // seq 4 sent, seq1 expired
        assert!(!ev.contains(&PingEvent::Down));
        e.on_reply(SimTime::from_millis(450), &reply(3));
        // failures reset; takes 3 fresh expiries to go down again.
        assert!(e.is_alive());
    }

    #[test]
    fn probes_only_sent_on_channel() {
        let mut e = engine();
        // Off-channel: the due probe is skipped forward, not sent.
        assert!(e.poll(SimTime::ZERO, false).is_empty());
        assert_eq!(e.sent, 0);
        assert_eq!(e.next_wakeup(), SimTime::from_millis(100));
        // Back on channel after the skip: probe goes out.
        let ev = e.poll(SimTime::from_millis(100), true);
        assert_eq!(ev.len(), 1);
        assert_eq!(e.sent, 1);
    }

    #[test]
    fn stop_silences_engine() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true);
        e.stop();
        assert!(e.poll(SimTime::from_millis(100), true).is_empty());
        assert_eq!(e.next_wakeup(), SimTime::MAX);
        assert!(e.on_reply(SimTime::from_millis(110), &reply(0)).is_empty());
    }

    #[test]
    fn foreign_id_is_ignored() {
        let mut e = engine();
        e.poll(SimTime::ZERO, true);
        let foreign = IcmpMessage::EchoReply { id: 1, seq: 0 };
        assert!(e.on_reply(SimTime::from_millis(1), &foreign).is_empty());
        assert!(!e.is_alive());
    }

    #[test]
    fn never_up_still_reports_down_once() {
        let mut e = engine();
        let mut downs = 0;
        for i in 0..40 {
            for ev in e.poll(SimTime::from_millis(i * 100), true) {
                if ev == PingEvent::Down {
                    downs += 1;
                }
            }
        }
        assert_eq!(downs, 1);
    }

    #[test]
    fn wakeup_tracks_send_and_deadlines() {
        let mut e = engine();
        assert_eq!(e.next_wakeup(), SimTime::ZERO);
        e.poll(SimTime::ZERO, true);
        // Next send at 100ms; outstanding deadline at 300ms.
        assert_eq!(e.next_wakeup(), SimTime::from_millis(100));
    }
}
