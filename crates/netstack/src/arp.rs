//! Minimal gateway-resolution (ARP) state on the lease path.
//!
//! The simulator's data frames are addressed at the BSSID, so a full
//! neighbour table would be theatre — but *whether the client's
//! mapping for its gateway is trustworthy* is real state with real
//! failure modes: an ARP-poison episode hijacks the mapping so
//! upstream unicast lands on a black-hole MAC while association, DHCP
//! and link state all stay green. This module keeps that state
//! first-class on the client: the gateway is resolved when a lease
//! binds, flushed when the interface tears down, and re-resolved on
//! the next join — so "recovery re-resolved the gateway" is an
//! observable fact ([`GatewayArp::resolutions`]) rather than an
//! inference.

use spider_simcore::SimTime;
use spider_wire::Ipv4Addr;

/// Client-side gateway-resolution state for one interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GatewayArp {
    /// The gateway (DHCP server) the current mapping points at, while
    /// resolved.
    gateway: Option<Ipv4Addr>,
    /// When the current mapping was established.
    resolved_at: Option<SimTime>,
    /// Total resolutions performed over the interface's lifetime (one
    /// per lease bind) — re-resolution after a poisoning episode shows
    /// up as this counter advancing past the first join.
    resolutions: u64,
    /// Total flushes (teardowns) over the interface's lifetime.
    flushes: u64,
}

impl GatewayArp {
    /// Fresh, unresolved state.
    pub fn new() -> GatewayArp {
        GatewayArp::default()
    }

    /// A lease bound: resolve the gateway it names. Called on every
    /// bind, so a rejoin after a poisoning episode re-resolves even if
    /// the same gateway comes back.
    pub fn resolve(&mut self, now: SimTime, gateway: Ipv4Addr) {
        self.gateway = Some(gateway);
        self.resolved_at = Some(now);
        self.resolutions += 1;
    }

    /// Interface teardown: the mapping dies with the link.
    pub fn flush(&mut self) {
        if self.gateway.take().is_some() {
            self.flushes += 1;
        }
        self.resolved_at = None;
    }

    /// Whether a gateway mapping is currently held.
    pub fn is_resolved(&self) -> bool {
        self.gateway.is_some()
    }

    /// The currently resolved gateway, if any.
    pub fn gateway(&self) -> Option<Ipv4Addr> {
        self.gateway
    }

    /// When the current mapping was established, if resolved.
    pub fn resolved_at(&self) -> Option<SimTime> {
        self.resolved_at
    }

    /// Lifetime resolution count (see field docs).
    pub fn resolutions(&self) -> u64 {
        self.resolutions
    }

    /// Lifetime flush count.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GW: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);

    #[test]
    fn resolve_and_flush_track_the_lease_lifecycle() {
        let mut arp = GatewayArp::new();
        assert!(!arp.is_resolved());
        assert_eq!(arp.resolutions(), 0);
        arp.resolve(SimTime::from_secs(1), GW);
        assert!(arp.is_resolved());
        assert_eq!(arp.gateway(), Some(GW));
        assert_eq!(arp.resolved_at(), Some(SimTime::from_secs(1)));
        assert_eq!(arp.resolutions(), 1);
        arp.flush();
        assert!(!arp.is_resolved());
        assert_eq!(arp.gateway(), None);
        assert_eq!(arp.flushes(), 1);
    }

    #[test]
    fn rejoin_re_resolves_even_the_same_gateway() {
        let mut arp = GatewayArp::new();
        arp.resolve(SimTime::from_secs(1), GW);
        arp.flush();
        arp.resolve(SimTime::from_secs(7), GW);
        assert_eq!(arp.resolutions(), 2, "same gateway still re-resolves");
        assert_eq!(arp.resolved_at(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn flush_without_a_mapping_is_a_no_op() {
        let mut arp = GatewayArp::new();
        arp.flush();
        assert_eq!(arp.flushes(), 0);
    }
}
