//! DHCP leases and the per-BSSID lease cache.

use spider_simcore::{FxHashMap, SimTime};
use spider_wire::{Ipv4Addr, MacAddr};

/// A granted DHCP lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Address assigned to the client.
    pub ip: Ipv4Addr,
    /// The DHCP server (the AP's gateway address).
    pub server: Ipv4Addr,
    /// When the lease expires.
    pub expires: SimTime,
}

impl Lease {
    /// Whether the lease is still valid at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        now < self.expires
    }
}

/// A cache of leases previously obtained from specific APs, keyed by
/// BSSID. Re-encountering a cached AP lets the client skip the
/// DISCOVER/OFFER half of the exchange (DHCP INIT-REBOOT), which the
/// paper identifies as essential for multi-AP systems (§2.1.2).
#[derive(Debug, Clone, Default)]
pub struct LeaseCache {
    entries: FxHashMap<MacAddr, Lease>,
    /// Cache hits observed (for experiment reporting).
    pub hits: u64,
    /// Cache misses observed.
    pub misses: u64,
}

impl LeaseCache {
    /// Create an empty cache.
    pub fn new() -> LeaseCache {
        LeaseCache::default()
    }

    /// Store a lease obtained from `bssid`.
    pub fn insert(&mut self, bssid: MacAddr, lease: Lease) {
        self.entries.insert(bssid, lease);
    }

    /// Look up a still-valid lease for `bssid`, recording hit/miss
    /// statistics and evicting the entry if it has expired.
    pub fn lookup(&mut self, now: SimTime, bssid: MacAddr) -> Option<Lease> {
        match self.entries.get(&bssid) {
            Some(l) if l.valid_at(now) => {
                self.hits += 1;
                Some(*l)
            }
            Some(_) => {
                self.entries.remove(&bssid);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remove a lease (e.g. after the server NAKs a re-confirmation).
    pub fn invalidate(&mut self, bssid: MacAddr) {
        self.entries.remove(&bssid);
    }

    /// Drop every expired lease. `lookup` evicts lazily on access;
    /// this is the periodic sweep (driver housekeeping) that keeps
    /// never-revisited BSSIDs from pinning dead entries forever.
    /// Returns how many entries were evicted.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, l| l.valid_at(now));
        before - self.entries.len()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(expires_s: u64) -> Lease {
        Lease {
            ip: Ipv4Addr::new(10, 0, 0, 5),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: SimTime::from_secs(expires_s),
        }
    }

    #[test]
    fn validity() {
        let l = lease(100);
        assert!(l.valid_at(SimTime::from_secs(99)));
        assert!(!l.valid_at(SimTime::from_secs(100)));
    }

    #[test]
    fn cache_hit_and_miss() {
        let mut c = LeaseCache::new();
        let ap = MacAddr::from_id(1);
        assert_eq!(c.lookup(SimTime::ZERO, ap), None);
        assert_eq!(c.misses, 1);
        c.insert(ap, lease(100));
        assert_eq!(c.lookup(SimTime::from_secs(10), ap), Some(lease(100)));
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn expired_entries_are_evicted() {
        let mut c = LeaseCache::new();
        let ap = MacAddr::from_id(1);
        c.insert(ap, lease(100));
        assert_eq!(c.lookup(SimTime::from_secs(200), ap), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = LeaseCache::new();
        let ap = MacAddr::from_id(1);
        c.insert(ap, lease(100));
        c.invalidate(ap);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_expired_sweeps_only_dead_entries() {
        let mut c = LeaseCache::new();
        c.insert(MacAddr::from_id(1), lease(100));
        c.insert(MacAddr::from_id(2), lease(500));
        c.insert(MacAddr::from_id(3), lease(50));
        assert_eq!(c.evict_expired(SimTime::from_secs(200)), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.lookup(SimTime::from_secs(200), MacAddr::from_id(2)),
            Some(lease(500))
        );
    }
}
