//! DHCP client state machine (one per virtual interface).
//!
//! Implements the paper's measured behaviours:
//!
//! * **Default timers** — "the client attempts to acquire a lease for 3
//!   seconds, and it is idle for 60 seconds if it fails" (§2.2.1):
//!   [`DhcpClientConfig::stock`].
//! * **Reduced timers** — per-message timeouts of 100–600 ms, the knob
//!   swept in Table 3 and Figs. 6/14: [`DhcpClientConfig::reduced`].
//! * **Lease caching** — when the caller supplies a cached lease for the
//!   AP, the client skips DISCOVER/OFFER and re-confirms with a REQUEST
//!   (INIT-REBOOT), halving the message count (§3.1).
//!
//! Like the link-layer machine, transmissions only happen while the
//! radio sits on the AP's channel; timers run regardless.

use crate::lease::Lease;
use spider_simcore::{SimDuration, SimTime};
use spider_wire::{DhcpMessage, DhcpOp, Ipv4Addr, MacAddr};

/// DHCP client timing configuration.
#[derive(Debug, Clone)]
pub struct DhcpClientConfig {
    /// Per-message retransmission timeout.
    pub msg_timeout: SimDuration,
    /// Transmissions per message before the attempt is abandoned.
    pub max_attempts: u32,
    /// How long to stay idle after a failed attempt before the caller
    /// should retry (the stock client's 60 s penalty box).
    pub failure_backoff: SimDuration,
}

impl DhcpClientConfig {
    /// Stock dhclient behaviour: ~3 s of attempts (1 s per message × 3),
    /// then 60 s idle.
    pub fn stock() -> DhcpClientConfig {
        DhcpClientConfig {
            msg_timeout: SimDuration::from_secs(1),
            max_attempts: 3,
            failure_backoff: SimDuration::from_secs(60),
        }
    }

    /// Reduced timers with the given per-message timeout (the x-axis of
    /// Table 3), no long penalty box. The attempt count stays fixed, so
    /// a smaller timeout also shrinks the total window the client keeps
    /// trying — which is why reduced timers trade higher failure rates
    /// for faster successes (Table 3 vs Fig. 14).
    pub fn reduced(msg_timeout: SimDuration) -> DhcpClientConfig {
        DhcpClientConfig {
            msg_timeout,
            max_attempts: 10,
            failure_backoff: SimDuration::from_secs(1),
        }
    }
}

/// DHCP client state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpClientState {
    /// Not acquiring.
    Idle,
    /// DISCOVER sent, waiting for an OFFER.
    Selecting,
    /// REQUEST sent, waiting for the ACK.
    Requesting,
    /// Lease held.
    Bound,
    /// Last attempt failed; idle until the backoff passes.
    Failed,
}

/// Events produced by the client.
#[derive(Debug, Clone)]
pub enum DhcpClientEvent {
    /// Transmit this DHCP message (the caller wraps it in IP + 802.11).
    Send(DhcpMessage),
    /// A lease was obtained. `took` measures from acquisition start.
    Bound {
        /// The lease.
        lease: Lease,
        /// Time from `start` to the ACK.
        took: SimDuration,
        /// Whether the fast path (cached lease re-confirmation) was used.
        via_cache: bool,
    },
    /// The acquisition attempt failed (retries exhausted or NAK).
    Failed,
    /// The server NAKed our REQUEST. Emitted *in addition to* the
    /// recovery behaviour (fallback to DISCOVER on the cached path,
    /// `Failed` otherwise) so the caller can evict the now-known-bad
    /// lease from its [`LeaseCache`](crate::lease::LeaseCache).
    Nak,
}

/// The DHCP client state machine.
#[derive(Debug, Clone)]
pub struct DhcpClient {
    /// Client hardware address used in `chaddr`.
    pub chaddr: MacAddr,
    cfg: DhcpClientConfig,
    state: DhcpClientState,
    xid: u32,
    attempt: u32,
    deadline: SimTime,
    started: SimTime,
    offer: Option<(Ipv4Addr, Ipv4Addr)>,
    via_cache: bool,
    needs_tx: bool,
    backoff_until: SimTime,
    lease: Option<Lease>,
    next_xid: u32,
}

impl DhcpClient {
    /// Create an idle client for interface `chaddr`.
    pub fn new(chaddr: MacAddr, cfg: DhcpClientConfig) -> DhcpClient {
        DhcpClient {
            chaddr,
            cfg,
            state: DhcpClientState::Idle,
            xid: 0,
            attempt: 0,
            deadline: SimTime::ZERO,
            started: SimTime::ZERO,
            offer: None,
            via_cache: false,
            needs_tx: false,
            backoff_until: SimTime::ZERO,
            lease: None,
            next_xid: 1,
        }
    }

    /// Replace the timing configuration.
    pub fn set_config(&mut self, cfg: DhcpClientConfig) {
        self.cfg = cfg;
    }

    /// Current state.
    pub fn state(&self) -> DhcpClientState {
        self.state
    }

    /// The lease currently held, if bound.
    pub fn lease(&self) -> Option<Lease> {
        self.lease
    }

    /// Whether a new acquisition may start (not in the failure penalty
    /// box).
    pub fn can_start(&self, now: SimTime) -> bool {
        now >= self.backoff_until
            && matches!(
                self.state,
                DhcpClientState::Idle | DhcpClientState::Failed | DhcpClientState::Bound
            )
    }

    /// Begin acquiring a lease at `now`. If `cached` is supplied the
    /// client goes straight to REQUEST (INIT-REBOOT).
    pub fn start(&mut self, now: SimTime, cached: Option<Lease>) {
        self.xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        self.attempt = 0;
        self.started = now;
        self.deadline = now;
        self.needs_tx = true;
        self.lease = None;
        match cached {
            Some(l) => {
                self.offer = Some((l.ip, l.server));
                self.via_cache = true;
                self.state = DhcpClientState::Requesting;
            }
            None => {
                self.offer = None;
                self.via_cache = false;
                self.state = DhcpClientState::Selecting;
            }
        }
    }

    /// Abandon any in-progress acquisition and go idle (no backoff).
    pub fn reset(&mut self) {
        self.state = DhcpClientState::Idle;
        self.needs_tx = false;
        self.lease = None;
    }

    /// Timer processing; transmissions happen only when `on_channel`.
    pub fn poll(&mut self, now: SimTime, on_channel: bool) -> Vec<DhcpClientEvent> {
        let mut out = Vec::new();
        match self.state {
            DhcpClientState::Selecting | DhcpClientState::Requesting
                if (self.needs_tx || now >= self.deadline) =>
            {
                if self.attempt >= self.cfg.max_attempts {
                    self.fail(now, &mut out);
                    return out;
                }
                if !on_channel {
                    // Cannot transmit; push the timer forward so the
                    // caller's wakeup loop makes progress. Attempts
                    // are only consumed by real transmissions.
                    self.deadline = now + self.cfg.msg_timeout;
                }
                if on_channel {
                    self.attempt += 1;
                    self.needs_tx = false;
                    self.deadline = now + self.cfg.msg_timeout;
                    let msg = match self.state {
                        DhcpClientState::Selecting => DhcpMessage::discover(self.xid, self.chaddr),
                        DhcpClientState::Requesting => {
                            let (ip, server) = self.offer.expect("requesting without an offer");
                            DhcpMessage::request(self.xid, self.chaddr, ip, server)
                        }
                        _ => unreachable!(),
                    };
                    out.push(DhcpClientEvent::Send(msg));
                }
            }
            _ => {}
        }
        out
    }

    /// The next instant `poll` needs to run.
    pub fn next_wakeup(&self) -> SimTime {
        match self.state {
            DhcpClientState::Selecting | DhcpClientState::Requesting => self.deadline,
            _ => SimTime::MAX,
        }
    }

    /// Process a received DHCP message addressed to this client.
    pub fn on_message(&mut self, now: SimTime, msg: &DhcpMessage) -> Vec<DhcpClientEvent> {
        let mut out = Vec::new();
        if msg.chaddr != self.chaddr || msg.xid != self.xid {
            return out;
        }
        match (self.state, msg.op) {
            (DhcpClientState::Selecting, DhcpOp::Offer) => {
                self.offer = Some((msg.yiaddr, msg.server_id));
                self.state = DhcpClientState::Requesting;
                self.attempt = 0;
                self.needs_tx = true;
                self.deadline = now;
            }
            (DhcpClientState::Requesting, DhcpOp::Ack) => {
                let lease = Lease {
                    ip: msg.yiaddr,
                    server: msg.server_id,
                    expires: now.saturating_add(msg.lease),
                };
                self.lease = Some(lease);
                self.state = DhcpClientState::Bound;
                out.push(DhcpClientEvent::Bound {
                    lease,
                    took: now.saturating_since(self.started),
                    via_cache: self.via_cache,
                });
            }
            (DhcpClientState::Requesting, DhcpOp::Nak) => {
                out.push(DhcpClientEvent::Nak);
                if self.via_cache {
                    // Cached lease rejected: fall back to a full exchange
                    // immediately; the Nak event above tells the caller
                    // to invalidate the cache entry.
                    self.via_cache = false;
                    self.offer = None;
                    self.state = DhcpClientState::Selecting;
                    self.attempt = 0;
                    self.needs_tx = true;
                    self.deadline = now;
                } else {
                    self.fail(now, &mut out);
                }
            }
            _ => {}
        }
        out
    }

    fn fail(&mut self, now: SimTime, out: &mut Vec<DhcpClientEvent>) {
        self.state = DhcpClientState::Failed;
        self.needs_tx = false;
        self.backoff_until = now + self.cfg.failure_backoff;
        out.push(DhcpClientEvent::Failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);

    fn cfg100() -> DhcpClientConfig {
        DhcpClientConfig::reduced(SimDuration::from_millis(100))
    }

    fn offer(xid: u32) -> DhcpMessage {
        DhcpMessage {
            op: DhcpOp::Offer,
            xid,
            chaddr: CH,
            yiaddr: Ipv4Addr::new(10, 0, 0, 9),
            server_id: Ipv4Addr::new(10, 0, 0, 1),
            lease: SimDuration::ZERO,
        }
    }

    fn ack(xid: u32) -> DhcpMessage {
        DhcpMessage {
            op: DhcpOp::Ack,
            xid,
            chaddr: CH,
            yiaddr: Ipv4Addr::new(10, 0, 0, 9),
            server_id: Ipv4Addr::new(10, 0, 0, 1),
            lease: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn full_exchange() {
        let mut c = DhcpClient::new(CH, cfg100());
        c.start(SimTime::ZERO, None);
        let ev = c.poll(SimTime::ZERO, true);
        let xid = match &ev[..] {
            [DhcpClientEvent::Send(m)] => {
                assert_eq!(m.op, DhcpOp::Discover);
                m.xid
            }
            other => panic!("{other:?}"),
        };
        c.on_message(SimTime::from_millis(50), &offer(xid));
        let ev = c.poll(SimTime::from_millis(50), true);
        assert!(matches!(&ev[..], [DhcpClientEvent::Send(m)] if m.op == DhcpOp::Request));
        let ev = c.on_message(SimTime::from_millis(120), &ack(xid));
        match &ev[..] {
            [DhcpClientEvent::Bound {
                lease,
                took,
                via_cache,
            }] => {
                assert_eq!(lease.ip, Ipv4Addr::new(10, 0, 0, 9));
                assert_eq!(*took, SimDuration::from_millis(120));
                assert!(!via_cache);
                assert_eq!(
                    lease.expires,
                    SimTime::from_secs(3600) + SimDuration::from_millis(120)
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.state(), DhcpClientState::Bound);
    }

    #[test]
    fn cached_lease_fast_path() {
        let mut c = DhcpClient::new(CH, cfg100());
        let cached = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 9),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: SimTime::from_secs(1000),
        };
        c.start(SimTime::ZERO, Some(cached));
        let ev = c.poll(SimTime::ZERO, true);
        // Straight to REQUEST — no discover.
        let xid = match &ev[..] {
            [DhcpClientEvent::Send(m)] => {
                assert_eq!(m.op, DhcpOp::Request);
                assert_eq!(m.yiaddr, cached.ip);
                m.xid
            }
            other => panic!("{other:?}"),
        };
        let ev = c.on_message(SimTime::from_millis(30), &ack(xid));
        assert!(matches!(
            &ev[..],
            [DhcpClientEvent::Bound {
                via_cache: true,
                ..
            }]
        ));
    }

    #[test]
    fn nak_on_cached_lease_falls_back_to_discover() {
        let mut c = DhcpClient::new(CH, cfg100());
        let cached = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 9),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: SimTime::from_secs(1000),
        };
        c.start(SimTime::ZERO, Some(cached));
        let ev = c.poll(SimTime::ZERO, true);
        let xid = match &ev[..] {
            [DhcpClientEvent::Send(m)] => m.xid,
            other => panic!("{other:?}"),
        };
        let nak = DhcpMessage {
            op: DhcpOp::Nak,
            ..ack(xid)
        };
        // The NAK is surfaced so the caller can evict the cached lease.
        let ev = c.on_message(SimTime::from_millis(20), &nak);
        assert!(matches!(&ev[..], [DhcpClientEvent::Nak]));
        assert_eq!(c.state(), DhcpClientState::Selecting);
        let ev = c.poll(SimTime::from_millis(20), true);
        assert!(matches!(&ev[..], [DhcpClientEvent::Send(m)] if m.op == DhcpOp::Discover));
    }

    #[test]
    fn retries_then_fails_with_backoff() {
        let mut c = DhcpClient::new(CH, cfg100());
        c.start(SimTime::ZERO, None);
        let mut sends = 0;
        let mut t;
        let mut failed_at = None;
        for i in 0..30 {
            t = SimTime::from_millis(i * 100);
            for ev in c.poll(t, true) {
                match ev {
                    DhcpClientEvent::Send(_) => sends += 1,
                    DhcpClientEvent::Failed => failed_at = Some(t),
                    _ => {}
                }
            }
            if failed_at.is_some() {
                break;
            }
        }
        assert_eq!(sends, 10);
        let failed_at = failed_at.expect("should fail");
        assert_eq!(c.state(), DhcpClientState::Failed);
        assert!(!c.can_start(failed_at));
        assert!(c.can_start(failed_at + SimDuration::from_secs(1)));
    }

    #[test]
    fn stock_config_has_long_penalty() {
        let mut c = DhcpClient::new(CH, DhcpClientConfig::stock());
        c.start(SimTime::ZERO, None);
        // Exhaust 3 attempts at 1s apart.
        let mut failed_at = None;
        for i in 0..10 {
            let t = SimTime::from_secs(i);
            for ev in c.poll(t, true) {
                if matches!(ev, DhcpClientEvent::Failed) {
                    failed_at = Some(t);
                }
            }
            if failed_at.is_some() {
                break;
            }
        }
        let failed_at = failed_at.unwrap();
        assert!(!c.can_start(failed_at + SimDuration::from_secs(59)));
        assert!(c.can_start(failed_at + SimDuration::from_secs(60)));
    }

    #[test]
    fn off_channel_blocks_transmission_and_slides_timer() {
        let mut c = DhcpClient::new(CH, cfg100());
        c.start(SimTime::ZERO, None);
        // Send first discover on channel.
        assert_eq!(c.poll(SimTime::ZERO, true).len(), 1);
        // Timeout passes while off channel — no send, no fail; the timer
        // slides forward so the wakeup loop makes progress.
        assert!(c.poll(SimTime::from_millis(150), false).is_empty());
        assert_eq!(c.next_wakeup(), SimTime::from_millis(250));
        // Still before the slid deadline: nothing yet.
        assert!(c.poll(SimTime::from_millis(200), true).is_empty());
        // Past it: retransmission.
        assert_eq!(c.poll(SimTime::from_millis(250), true).len(), 1);
    }

    #[test]
    fn wrong_xid_or_chaddr_ignored() {
        let mut c = DhcpClient::new(CH, cfg100());
        c.start(SimTime::ZERO, None);
        let ev = c.poll(SimTime::ZERO, true);
        let xid = match &ev[..] {
            [DhcpClientEvent::Send(m)] => m.xid,
            _ => panic!(),
        };
        let mut bad = offer(xid.wrapping_add(1));
        assert!(c.on_message(SimTime::from_millis(1), &bad).is_empty());
        assert_eq!(c.state(), DhcpClientState::Selecting);
        bad = offer(xid);
        bad.chaddr = MacAddr::from_id(99);
        assert!(c.on_message(SimTime::from_millis(1), &bad).is_empty());
        assert_eq!(c.state(), DhcpClientState::Selecting);
    }

    #[test]
    fn duplicate_ack_does_not_double_bind() {
        let mut c = DhcpClient::new(CH, cfg100());
        c.start(SimTime::ZERO, None);
        let ev = c.poll(SimTime::ZERO, true);
        let xid = match &ev[..] {
            [DhcpClientEvent::Send(m)] => m.xid,
            _ => panic!(),
        };
        c.on_message(SimTime::from_millis(10), &offer(xid));
        c.poll(SimTime::from_millis(10), true);
        let ev1 = c.on_message(SimTime::from_millis(20), &ack(xid));
        assert_eq!(ev1.len(), 1);
        let ev2 = c.on_message(SimTime::from_millis(21), &ack(xid));
        assert!(ev2.is_empty());
    }
}
