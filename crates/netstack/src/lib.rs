//! Network-layer substrate: DHCP, lease caching and ping liveness.
//!
//! The paper's core measurement (§2.2.1) is that the DHCP join — not the
//! link-layer handshake — dominates connection setup for mobile clients,
//! and that its default timers (3 s of attempts, then 60 s idle) are
//! hopeless at vehicular encounter durations. This crate implements:
//!
//! * [`dhcp_client`] — the DISCOVER/OFFER/REQUEST/ACK client state
//!   machine with the tunable per-message timeout swept by Table 3 and
//!   Figs. 6/14/15, including cached-lease fast paths (INIT-REBOOT),
//! * [`dhcp_server`] — the AP-side server with a configurable response
//!   delay distribution (the analytical model's β ∈ [βmin, βmax]),
//! * [`lease`] — per-BSSID lease cache (§3.1: "Spider uses dhcp caches
//!   ... to reduce the time to join"),
//! * [`arp`] — gateway-resolution state on the lease path, so
//!   ARP-poison chaos episodes (and the re-resolution that recovers
//!   from them) are first-class simulated events,
//! * [`ping`] — Spider's end-to-end liveness monitor: 10 pings/second,
//!   30 consecutive losses declare the connection dead (§3.2.2).

#![forbid(unsafe_code)]

pub mod arp;
pub mod dhcp_client;
pub mod dhcp_server;
pub mod lease;
pub mod ping;

pub use arp::GatewayArp;
pub use dhcp_client::{DhcpClient, DhcpClientConfig, DhcpClientEvent, DhcpClientState};
pub use dhcp_server::{DhcpServer, DhcpServerConfig};
pub use lease::{Lease, LeaseCache};
pub use ping::{PingConfig, PingEngine, PingEvent};
