//! AP-side DHCP server.
//!
//! The paper's analytical model abstracts an AP's join responsiveness as
//! a uniformly distributed response time β ∈ [βmin, βmax] (§2.1.1); real
//! consumer APs take anywhere from tens of milliseconds to many seconds
//! to produce an OFFER. [`DhcpServerConfig::offer_delay_s`] is that β. ACKs
//! to REQUESTs are cheaper (the server just confirms), modelled by a
//! separate smaller delay.
//!
//! Address assignment is stable per client MAC — re-encountering the
//! same AP yields the same address, which is what makes client-side
//! lease caching (INIT-REBOOT) work.

use spider_simcore::{FxHashMap, SimDuration, SimRng, SimTime};
use spider_wire::{DhcpMessage, DhcpOp, Ipv4Addr, MacAddr};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct DhcpServerConfig {
    /// The server identifier / gateway address.
    pub gateway: Ipv4Addr,
    /// First assignable address (addresses are allocated sequentially
    /// from here).
    pub pool_start: Ipv4Addr,
    /// Number of assignable addresses.
    pub pool_size: u32,
    /// Lease duration granted.
    pub lease_time: SimDuration,
    /// OFFER delay bounds in seconds (the model's βmin, βmax).
    pub offer_delay_s: (f64, f64),
    /// ACK delay bounds in seconds.
    pub ack_delay_s: (f64, f64),
}

impl DhcpServerConfig {
    /// A server for AP number `ap_id` with the given β bounds, carving a
    /// distinct 10.x.y.0/24 per AP.
    pub fn for_ap(ap_id: usize, beta: (f64, f64)) -> DhcpServerConfig {
        let hi = ((ap_id >> 8) & 0xff) as u8;
        let lo = (ap_id & 0xff) as u8;
        DhcpServerConfig {
            gateway: Ipv4Addr::new(10, hi, lo, 1),
            pool_start: Ipv4Addr::new(10, hi, lo, 10),
            pool_size: 200,
            lease_time: SimDuration::from_secs(3600),
            offer_delay_s: beta,
            ack_delay_s: (beta.0 * 0.1, beta.1 * 0.1),
        }
    }
}

/// A response the caller must transmit at time `at`.
#[derive(Debug, Clone)]
pub struct DelayedSend {
    /// When to transmit.
    pub at: SimTime,
    /// What to transmit.
    pub msg: DhcpMessage,
}

/// The DHCP server state machine.
#[derive(Debug, Clone)]
pub struct DhcpServer {
    cfg: DhcpServerConfig,
    rng: SimRng,
    assignments: FxHashMap<MacAddr, Ipv4Addr>,
    next_index: u32,
}

impl DhcpServer {
    /// Create a server with its own RNG stream.
    pub fn new(cfg: DhcpServerConfig, rng: SimRng) -> DhcpServer {
        DhcpServer {
            cfg,
            rng,
            assignments: FxHashMap::default(),
            next_index: 0,
        }
    }

    /// The server's held RNG stream, for seed rebasing (DESIGN.md §13).
    /// The stream is only drawn from inside `on_message`, so an
    /// unstarted world can still re-derive it under a new root seed.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The server's configuration.
    pub fn config(&self) -> &DhcpServerConfig {
        &self.cfg
    }

    fn address_for(&mut self, mac: MacAddr) -> Option<Ipv4Addr> {
        if let Some(ip) = self.assignments.get(&mac) {
            return Some(*ip);
        }
        // Sequential allocation, skipping any address another client
        // already holds — a cached-lease REQUEST (INIT-REBOOT) may have
        // claimed an address ahead of the allocation cursor.
        while self.next_index < self.cfg.pool_size {
            let ip = Ipv4Addr::from_u32(self.cfg.pool_start.to_u32() + self.next_index);
            self.next_index += 1;
            if !self.assignments.values().any(|&a| a == ip) {
                self.assignments.insert(mac, ip);
                return Some(ip);
            }
        }
        None
    }

    /// Whether `ip` lies inside this server's pool.
    fn in_pool(&self, ip: Ipv4Addr) -> bool {
        let base = self.cfg.pool_start.to_u32();
        let v = ip.to_u32();
        v >= base && v < base + self.cfg.pool_size
    }

    /// Process a client message received at `now`; returns responses with
    /// their transmission times.
    pub fn on_message(&mut self, now: SimTime, msg: &DhcpMessage) -> Vec<DelayedSend> {
        match msg.op {
            DhcpOp::Discover => {
                let Some(ip) = self.address_for(msg.chaddr) else {
                    return Vec::new(); // pool exhausted: silence
                };
                let delay = SimDuration::from_secs_f64(
                    self.rng
                        .uniform_in(self.cfg.offer_delay_s.0, self.cfg.offer_delay_s.1),
                );
                vec![DelayedSend {
                    at: now + delay,
                    msg: DhcpMessage {
                        op: DhcpOp::Offer,
                        xid: msg.xid,
                        chaddr: msg.chaddr,
                        yiaddr: ip,
                        server_id: self.cfg.gateway,
                        lease: self.cfg.lease_time,
                    },
                }]
            }
            DhcpOp::Request => {
                let delay = SimDuration::from_secs_f64(
                    self.rng
                        .uniform_in(self.cfg.ack_delay_s.0, self.cfg.ack_delay_s.1),
                );
                // Accept if the address is this client's assignment, or an
                // unassigned in-pool address (cached-lease re-confirmation
                // after a server restart).
                let current = self.assignments.get(&msg.chaddr).copied();
                let acceptable = match current {
                    Some(ip) => ip == msg.yiaddr,
                    None => {
                        self.in_pool(msg.yiaddr)
                            && !self.assignments.values().any(|&a| a == msg.yiaddr)
                    }
                };
                let op = if acceptable && msg.server_id == self.cfg.gateway {
                    if current.is_none() {
                        self.assignments.insert(msg.chaddr, msg.yiaddr);
                    }
                    DhcpOp::Ack
                } else {
                    DhcpOp::Nak
                };
                vec![DelayedSend {
                    at: now + delay,
                    msg: DhcpMessage {
                        op,
                        xid: msg.xid,
                        chaddr: msg.chaddr,
                        yiaddr: msg.yiaddr,
                        server_id: self.cfg.gateway,
                        lease: self.cfg.lease_time,
                    },
                }]
            }
            // Server ignores server-originated ops.
            DhcpOp::Offer | DhcpOp::Ack | DhcpOp::Nak => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(beta: (f64, f64)) -> DhcpServer {
        DhcpServer::new(DhcpServerConfig::for_ap(3, beta), SimRng::new(42))
    }

    #[test]
    fn discover_gets_delayed_offer() {
        let mut s = server((0.5, 2.0));
        let mac = MacAddr::from_id(1);
        let out = s.on_message(SimTime::ZERO, &DhcpMessage::discover(7, mac));
        assert_eq!(out.len(), 1);
        let DelayedSend { at, msg } = &out[0];
        assert_eq!(msg.op, DhcpOp::Offer);
        assert_eq!(msg.xid, 7);
        assert_eq!(msg.server_id, Ipv4Addr::new(10, 0, 3, 1));
        let d = at.as_secs_f64();
        assert!((0.5..=2.0).contains(&d), "offer delay {d}");
    }

    #[test]
    fn assignment_is_stable_per_mac() {
        let mut s = server((0.1, 0.2));
        let mac = MacAddr::from_id(1);
        let ip1 = s.on_message(SimTime::ZERO, &DhcpMessage::discover(1, mac))[0]
            .msg
            .yiaddr;
        let ip2 = s.on_message(SimTime::from_secs(10), &DhcpMessage::discover(2, mac))[0]
            .msg
            .yiaddr;
        assert_eq!(ip1, ip2);
        let other = s.on_message(
            SimTime::ZERO,
            &DhcpMessage::discover(1, MacAddr::from_id(2)),
        )[0]
        .msg
        .yiaddr;
        assert_ne!(ip1, other);
    }

    #[test]
    fn request_after_offer_is_acked() {
        let mut s = server((0.1, 0.2));
        let mac = MacAddr::from_id(1);
        let offer = s.on_message(SimTime::ZERO, &DhcpMessage::discover(1, mac))[0]
            .msg
            .clone();
        let req = DhcpMessage::request(1, mac, offer.yiaddr, offer.server_id);
        let out = s.on_message(SimTime::from_secs(1), &req);
        assert_eq!(out[0].msg.op, DhcpOp::Ack);
        assert_eq!(out[0].msg.lease, SimDuration::from_secs(3600));
        // ACK delay is an order of magnitude smaller than the offer delay.
        assert!(
            out[0]
                .at
                .saturating_since(SimTime::from_secs(1))
                .as_secs_f64()
                <= 0.02 + 1e-9
        );
    }

    #[test]
    fn cached_request_for_free_in_pool_address_is_acked() {
        let mut s = server((0.1, 0.2));
        let mac = MacAddr::from_id(1);
        let ip = Ipv4Addr::new(10, 0, 3, 50);
        let req = DhcpMessage::request(5, mac, ip, Ipv4Addr::new(10, 0, 3, 1));
        let out = s.on_message(SimTime::ZERO, &req);
        assert_eq!(out[0].msg.op, DhcpOp::Ack);
        // The binding persists.
        let again = s.on_message(SimTime::from_secs(1), &DhcpMessage::discover(6, mac));
        assert_eq!(again[0].msg.yiaddr, ip);
    }

    #[test]
    fn request_for_someone_elses_address_is_nakked() {
        let mut s = server((0.1, 0.2));
        let a = MacAddr::from_id(1);
        let b = MacAddr::from_id(2);
        let ip_a = s.on_message(SimTime::ZERO, &DhcpMessage::discover(1, a))[0]
            .msg
            .yiaddr;
        let req = DhcpMessage::request(2, b, ip_a, Ipv4Addr::new(10, 0, 3, 1));
        let out = s.on_message(SimTime::ZERO, &req);
        assert_eq!(out[0].msg.op, DhcpOp::Nak);
    }

    #[test]
    fn request_for_out_of_pool_address_is_nakked() {
        let mut s = server((0.1, 0.2));
        let req = DhcpMessage::request(
            2,
            MacAddr::from_id(1),
            Ipv4Addr::new(192, 168, 1, 5),
            Ipv4Addr::new(10, 0, 3, 1),
        );
        assert_eq!(s.on_message(SimTime::ZERO, &req)[0].msg.op, DhcpOp::Nak);
    }

    #[test]
    fn wrong_server_id_is_nakked() {
        let mut s = server((0.1, 0.2));
        let mac = MacAddr::from_id(1);
        let ip = s.on_message(SimTime::ZERO, &DhcpMessage::discover(1, mac))[0]
            .msg
            .yiaddr;
        let req = DhcpMessage::request(1, mac, ip, Ipv4Addr::new(10, 9, 9, 1));
        assert_eq!(s.on_message(SimTime::ZERO, &req)[0].msg.op, DhcpOp::Nak);
    }

    #[test]
    fn pool_exhaustion_goes_silent() {
        let mut cfg = DhcpServerConfig::for_ap(0, (0.1, 0.2));
        cfg.pool_size = 2;
        let mut s = DhcpServer::new(cfg, SimRng::new(1));
        assert!(!s
            .on_message(
                SimTime::ZERO,
                &DhcpMessage::discover(1, MacAddr::from_id(1))
            )
            .is_empty());
        assert!(!s
            .on_message(
                SimTime::ZERO,
                &DhcpMessage::discover(1, MacAddr::from_id(2))
            )
            .is_empty());
        assert!(s
            .on_message(
                SimTime::ZERO,
                &DhcpMessage::discover(1, MacAddr::from_id(3))
            )
            .is_empty());
    }

    #[test]
    fn server_ignores_server_ops() {
        let mut s = server((0.1, 0.2));
        let msg = DhcpMessage {
            op: DhcpOp::Offer,
            xid: 1,
            chaddr: MacAddr::from_id(1),
            yiaddr: Ipv4Addr::new(10, 0, 3, 10),
            server_id: Ipv4Addr::new(10, 0, 3, 1),
            lease: SimDuration::ZERO,
        };
        assert!(s.on_message(SimTime::ZERO, &msg).is_empty());
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The server never assigns one address to two clients: across an
        /// arbitrary interleaving of DISCOVERs and REQUESTs, every ACKed
        /// (mac, ip) binding is injective.
        #[test]
        fn no_duplicate_address_grants(
            ops in prop::collection::vec((0u64..20, any::<bool>(), 0u32..300), 1..80),
            seed in 0u64..1_000,
        ) {
            let mut cfg = DhcpServerConfig::for_ap(1, (0.01, 0.02));
            cfg.pool_size = 10; // force contention
            let mut server = DhcpServer::new(cfg, SimRng::new(seed));
            let mut grants: std::collections::HashMap<Ipv4Addr, MacAddr> =
                std::collections::HashMap::new();
            let mut offered: std::collections::HashMap<MacAddr, Ipv4Addr> =
                std::collections::HashMap::new();
            let mut now = SimTime::ZERO;
            for (mac_id, is_request, req_ip_off) in ops {
                now = now + SimDuration::from_millis(10);
                let mac = MacAddr::from_id(mac_id);
                let msg = if is_request {
                    let ip = offered.get(&mac).copied().unwrap_or(Ipv4Addr::new(
                        10,
                        0,
                        1,
                        10 + (req_ip_off % 30) as u8,
                    ));
                    DhcpMessage::request(1, mac, ip, Ipv4Addr::new(10, 0, 1, 1))
                } else {
                    DhcpMessage::discover(1, mac)
                };
                for ds in server.on_message(now, &msg) {
                    match ds.msg.op {
                        DhcpOp::Offer => {
                            offered.insert(ds.msg.chaddr, ds.msg.yiaddr);
                        }
                        DhcpOp::Ack => {
                            if let Some(owner) = grants.get(&ds.msg.yiaddr) {
                                prop_assert_eq!(
                                    *owner, ds.msg.chaddr,
                                    "address {} granted to two clients", ds.msg.yiaddr
                                );
                            }
                            grants.insert(ds.msg.yiaddr, ds.msg.chaddr);
                        }
                        _ => {}
                    }
                }
            }
        }

        /// Responses always carry the request's xid and chaddr, and land
        /// within the configured delay bounds.
        #[test]
        fn responses_echo_identity_and_respect_delays(
            xid: u32, mac_id in 0u64..50, seed in 0u64..1_000,
        ) {
            let mut server = DhcpServer::new(
                DhcpServerConfig::for_ap(2, (0.5, 2.0)),
                SimRng::new(seed),
            );
            let mac = MacAddr::from_id(mac_id);
            let now = SimTime::from_secs(5);
            for ds in server.on_message(now, &DhcpMessage::discover(xid, mac)) {
                prop_assert_eq!(ds.msg.xid, xid);
                prop_assert_eq!(ds.msg.chaddr, mac);
                let delay = ds.at.saturating_since(now).as_secs_f64();
                prop_assert!((0.5..=2.0).contains(&delay), "delay {delay}");
            }
        }
    }
}
