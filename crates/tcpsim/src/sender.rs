//! The sending (server) side of a bulk TCP download.
//!
//! Models the wired server behind an AP's backhaul streaming an unbounded
//! HTTP response — the paper's workload is "downloading large files over
//! HTTP" (§4.2). Reno congestion control with NewReno-style partial-ACK
//! handling in fast recovery.

use crate::rtt::RttEstimator;
use spider_simcore::{SimDuration, SimTime};
use spider_wire::tcp::{seq_le, seq_lt};
use spider_wire::{TcpFlags, TcpSegment};
use std::collections::VecDeque;

/// TCP tunables.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: u32,
    /// Initial slow-start threshold in bytes.
    pub init_ssthresh: u32,
    /// Duplicate ACKs that trigger fast retransmit.
    pub dupack_threshold: u32,
    /// Consecutive RTO backoffs before the connection is declared dead.
    pub max_backoffs: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            init_cwnd_segs: 2,
            init_ssthresh: 64 * 1024,
            dupack_threshold: 3,
            max_backoffs: 8,
        }
    }
}

/// Sender connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpSenderState {
    /// Waiting for the client's SYN.
    Listen,
    /// SYN received, SYN-ACK sent, waiting for the final ACK.
    SynReceived,
    /// Streaming data.
    Established,
    /// Too many consecutive RTOs; the flow is abandoned.
    Dead,
}

/// The server-side sender.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    state: TcpSenderState,
    /// Our initial sequence number.
    iss: u32,
    /// Peer's next expected byte from us == lowest unacknowledged.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Congestion window in bytes (f64 for smooth CA growth).
    cwnd: f64,
    ssthresh: f64,
    /// Peer's advertised receive window.
    rwnd: u32,
    dupacks: u32,
    in_recovery: bool,
    /// Recovery point (snd_nxt at fast-retransmit time).
    recover: u32,
    rtt: RttEstimator,
    rto_deadline: SimTime,
    backoffs: u32,
    /// (seq_end, sent_at, retransmitted) for RTT sampling (Karn).
    tx_times: VecDeque<(u32, SimTime, bool)>,
    src_port: u16,
    dst_port: u16,
    /// Cumulative bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Retransmissions performed (observability).
    pub retransmits: u64,
    /// Timeouts experienced.
    pub timeouts: u64,
}

impl TcpSender {
    /// Create a listening sender bound to `src_port`, expecting a SYN
    /// from `dst_port`.
    pub fn new(cfg: TcpConfig, src_port: u16, dst_port: u16, iss: u32) -> TcpSender {
        let cwnd = (cfg.init_cwnd_segs * cfg.mss) as f64;
        let ssthresh = cfg.init_ssthresh as f64;
        TcpSender {
            cfg,
            state: TcpSenderState::Listen,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            cwnd,
            ssthresh,
            rwnd: 0,
            dupacks: 0,
            in_recovery: false,
            recover: iss,
            rtt: RttEstimator::standard(),
            rto_deadline: SimTime::MAX,
            backoffs: 0,
            tx_times: VecDeque::new(),
            src_port,
            dst_port,
            bytes_acked: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Connection state.
    pub fn state(&self) -> TcpSenderState {
        self.state
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd as u32
    }

    /// Current RTO.
    pub fn rto(&self) -> SimDuration {
        self.rtt.rto()
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    fn seg(&self, seq: u32, flags: TcpFlags, payload_len: u32) -> TcpSegment {
        TcpSegment {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq,
            ack: 0,
            window: 65_535,
            flags,
            payload_len,
        }
    }

    /// Process a segment from the receiver. Returns segments to transmit.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        self.on_segment_into(now, seg, &mut out);
        out
    }

    /// [`TcpSender::on_segment`], appending into a caller-owned buffer.
    /// The sender sits on the hot path of every delivered ACK, so the
    /// simulation reuses one scratch buffer instead of allocating a
    /// return vector per segment.
    pub fn on_segment_into(&mut self, now: SimTime, seg: &TcpSegment, out: &mut Vec<TcpSegment>) {
        if seg.dst_port != self.src_port || seg.src_port != self.dst_port {
            return;
        }
        match self.state {
            TcpSenderState::Listen => {
                if seg.flags.syn && !seg.flags.ack {
                    self.state = TcpSenderState::SynReceived;
                    self.rwnd = seg.window;
                    self.rto_deadline = now + self.rtt.rto();
                    let mut synack = self.seg(self.iss, TcpFlags::SYN_ACK, 0);
                    synack.ack = seg.seq.wrapping_add(1);
                    out.push(synack);
                }
            }
            TcpSenderState::SynReceived => {
                if seg.flags.syn && !seg.flags.ack {
                    // Repeated SYN: client missed our SYN-ACK.
                    let mut synack = self.seg(self.iss, TcpFlags::SYN_ACK, 0);
                    synack.ack = seg.seq.wrapping_add(1);
                    out.push(synack);
                    return;
                }
                if seg.flags.ack && seg.ack == self.iss.wrapping_add(1) {
                    self.state = TcpSenderState::Established;
                    self.snd_una = seg.ack;
                    self.snd_nxt = seg.ack;
                    self.rwnd = seg.window;
                    self.rto_deadline = SimTime::MAX;
                    self.try_send(now, out);
                }
            }
            TcpSenderState::Established => {
                if !seg.flags.ack {
                    return;
                }
                self.rwnd = seg.window;
                let ack = seg.ack;
                if seq_lt(self.snd_una, ack) {
                    // An ACK may legitimately point beyond a rewound
                    // snd_nxt: after an RTO's go-back-N the receiver can
                    // still acknowledge data that was in flight before
                    // the timeout. Fast-forward rather than ignore it.
                    if seq_lt(self.snd_nxt, ack) {
                        self.snd_nxt = ack;
                    }
                    self.process_new_ack(now, ack, out);
                } else if ack == self.snd_una && self.flight() > 0 {
                    self.process_dupack(now, out);
                }
            }
            TcpSenderState::Dead => {}
        }
    }

    fn process_new_ack(&mut self, now: SimTime, ack: u32, out: &mut Vec<TcpSegment>) {
        let newly = ack.wrapping_sub(self.snd_una);
        self.bytes_acked += newly as u64;
        // RTT sample from the newest fully acked, never-retransmitted
        // transmission (Karn's rule).
        let mut sample: Option<SimTime> = None;
        while let Some(&(seq_end, sent_at, rexmit)) = self.tx_times.front() {
            if seq_le(seq_end, ack) {
                self.tx_times.pop_front();
                sample = if rexmit { None } else { Some(sent_at) };
            } else {
                break;
            }
        }
        if let Some(sent_at) = sample {
            self.rtt.sample(now.saturating_since(sent_at));
        }
        self.snd_una = ack;
        self.backoffs = 0;
        if self.in_recovery {
            if seq_lt(ack, self.recover) {
                // Partial ACK: retransmit the next hole, stay in recovery
                // (NewReno), deflate by the acked amount.
                let len = self.cfg.mss.min(self.recover.wrapping_sub(self.snd_una));
                out.push(self.retransmit_front(now, len));
                self.cwnd =
                    (self.cwnd - newly as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
            } else {
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
                self.dupacks = 0;
            }
        } else {
            self.dupacks = 0;
            let mss = self.cfg.mss as f64;
            if self.cwnd < self.ssthresh {
                self.cwnd += (newly as f64).min(mss);
            } else {
                self.cwnd += mss * mss / self.cwnd;
            }
        }
        self.rto_deadline = if self.flight() == 0 {
            SimTime::MAX
        } else {
            now + self.rtt.rto()
        };
        self.try_send(now, out);
    }

    fn process_dupack(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        self.dupacks += 1;
        if !self.in_recovery && self.dupacks == self.cfg.dupack_threshold {
            // Fast retransmit.
            let mss = self.cfg.mss as f64;
            self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * mss);
            self.cwnd = self.ssthresh + self.cfg.dupack_threshold as f64 * mss;
            self.in_recovery = true;
            self.recover = self.snd_nxt;
            out.push(self.retransmit_front(now, self.cfg.mss));
            self.rto_deadline = now + self.rtt.rto();
        } else if self.in_recovery {
            // Window inflation lets new segments flow during recovery.
            self.cwnd += self.cfg.mss as f64;
            self.try_send(now, out);
        }
    }

    fn retransmit_front(&mut self, now: SimTime, len: u32) -> TcpSegment {
        self.retransmits += 1;
        // Mark any tracked transmission covering this range retransmitted.
        let end = self.snd_una.wrapping_add(len);
        for entry in &mut self.tx_times {
            if seq_le(entry.0, end) {
                entry.2 = true;
            }
        }
        let _ = now;
        self.seg(self.snd_una, TcpFlags::ACK, len)
    }

    /// Emit new segments permitted by the congestion and receive windows.
    fn try_send(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        if self.state != TcpSenderState::Established {
            return;
        }
        let wnd = (self.cwnd as u32).min(self.rwnd);
        while self.flight() + self.cfg.mss <= wnd {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(self.cfg.mss);
            self.tx_times.push_back((self.snd_nxt, now, false));
            out.push(self.seg(seq, TcpFlags::ACK, self.cfg.mss));
            if self.rto_deadline == SimTime::MAX {
                self.rto_deadline = now + self.rtt.rto();
            }
        }
    }

    /// Timer processing: RTO expiry.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`TcpSender::poll`], appending into a caller-owned buffer (see
    /// [`TcpSender::on_segment_into`]).
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        if now < self.rto_deadline {
            return;
        }
        match self.state {
            TcpSenderState::SynReceived => {
                self.backoffs += 1;
                self.timeouts += 1;
                if self.backoffs > self.cfg.max_backoffs {
                    self.state = TcpSenderState::Dead;
                    self.rto_deadline = SimTime::MAX;
                    return;
                }
                self.rto_deadline = now + self.backed_off_rto();
                // We cannot reconstruct the client ISS here; the client
                // retransmitting its SYN is the recovery path, so just
                // keep the timer armed.
            }
            TcpSenderState::Established => {
                if self.flight() == 0 {
                    self.rto_deadline = SimTime::MAX;
                    return;
                }
                self.timeouts += 1;
                self.backoffs += 1;
                if self.backoffs > self.cfg.max_backoffs {
                    self.state = TcpSenderState::Dead;
                    self.rto_deadline = SimTime::MAX;
                    return;
                }
                let mss = self.cfg.mss as f64;
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * mss);
                self.cwnd = mss;
                self.in_recovery = false;
                self.dupacks = 0;
                // Go-back-N: everything past snd_una is presumed lost.
                self.snd_nxt = self.snd_una.wrapping_add(self.cfg.mss);
                self.tx_times.clear();
                self.tx_times.push_back((self.snd_nxt, now, true));
                self.rto_deadline = now + self.backed_off_rto();
                out.push(self.seg_with_rexmit());
            }
            _ => {
                self.rto_deadline = SimTime::MAX;
            }
        }
    }

    fn seg_with_rexmit(&mut self) -> TcpSegment {
        self.retransmits += 1;
        self.seg(self.snd_una, TcpFlags::ACK, self.cfg.mss)
    }

    fn backed_off_rto(&self) -> SimDuration {
        let mut rto = self.rtt.rto();
        for _ in 0..self.backoffs.min(6) {
            rto = (rto * 2).min(SimDuration::from_secs(60));
        }
        rto
    }

    /// Next instant `poll` must run.
    pub fn next_wakeup(&self) -> SimTime {
        self.rto_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    fn sender() -> TcpSender {
        TcpSender::new(TcpConfig::default(), 80, 5000, 1_000)
    }

    fn syn() -> TcpSegment {
        TcpSegment {
            src_port: 5000,
            dst_port: 80,
            seq: 500,
            ack: 0,
            window: 64 * 1024,
            flags: TcpFlags::SYN,
            payload_len: 0,
        }
    }

    fn ack_seg(ack: u32) -> TcpSegment {
        TcpSegment {
            src_port: 5000,
            dst_port: 80,
            seq: 501,
            ack,
            window: 64 * 1024,
            flags: TcpFlags::ACK,
            payload_len: 0,
        }
    }

    /// Establish and return (sender, initial data segments).
    fn established() -> (TcpSender, Vec<TcpSegment>) {
        let mut s = sender();
        let synack = s.on_segment(SimTime::ZERO, &syn());
        assert_eq!(synack.len(), 1);
        assert!(synack[0].flags.syn && synack[0].flags.ack);
        let data = s.on_segment(SimTime::from_millis(10), &ack_seg(1_001));
        (s, data)
    }

    #[test]
    fn handshake_then_initial_window() {
        let (s, data) = established();
        assert_eq!(s.state(), TcpSenderState::Established);
        // Initial window = 2 segments.
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].seq, 1_001);
        assert_eq!(data[1].seq, 1_001 + MSS);
        assert_eq!(s.flight(), 2 * MSS);
    }

    #[test]
    fn repeated_syn_resends_synack() {
        let mut s = sender();
        s.on_segment(SimTime::ZERO, &syn());
        let again = s.on_segment(SimTime::from_millis(500), &syn());
        assert_eq!(again.len(), 1);
        assert!(again[0].flags.syn && again[0].flags.ack);
        assert_eq!(s.state(), TcpSenderState::SynReceived);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let (mut s, mut data) = established();
        let mut t = SimTime::from_millis(10);
        let mut per_rtt = vec![data.len()];
        for _ in 0..4 {
            t += SimDuration::from_millis(50);
            // ACK everything outstanding, segment by segment.
            let mut new_data = Vec::new();
            let segs: Vec<TcpSegment> = std::mem::take(&mut data);
            for seg in &segs {
                let ack = seg.seq.wrapping_add(seg.payload_len);
                new_data.extend(s.on_segment(t, &ack_seg(ack)));
            }
            per_rtt.push(new_data.len());
            data = new_data;
        }
        // Each full-window ACK round roughly doubles emissions: 2,2,4,8,16
        // (first ACK round releases 1 per ack + growth).
        assert!(
            per_rtt.windows(2).skip(1).all(|w| w[1] >= w[0]),
            "{per_rtt:?}"
        );
        assert!(*per_rtt.last().unwrap() >= 8, "{per_rtt:?}");
    }

    #[test]
    fn dupacks_trigger_fast_retransmit() {
        let (mut s, data) = established();
        // Grow window enough to have several segments in flight.
        let t = SimTime::from_millis(60);
        let ack1 = data[0].seq.wrapping_add(MSS);
        let more = s.on_segment(t, &ack_seg(ack1));
        assert!(!more.is_empty());
        let una = ack1;
        let before_retx = s.retransmits;
        // Three duplicate ACKs at the current snd_una.
        let mut saw_retransmit = false;
        for i in 0..3 {
            let out = s.on_segment(t + SimDuration::from_millis(i + 1), &ack_seg(una));
            if out
                .iter()
                .any(|seg| seg.seq == una && seg.payload_len == MSS)
            {
                saw_retransmit = true;
            }
        }
        assert!(saw_retransmit);
        assert_eq!(s.retransmits, before_retx + 1);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let (mut s, data) = established();
        let t = SimTime::from_millis(60);
        let ack1 = data[0].seq.wrapping_add(MSS);
        s.on_segment(t, &ack_seg(ack1));
        for i in 0..3 {
            s.on_segment(t + SimDuration::from_millis(i + 1), &ack_seg(ack1));
        }
        let recover_point = s.snd_nxt;
        let cwnd_in_recovery = s.cwnd();
        // Full ACK of the recovery point.
        s.on_segment(t + SimDuration::from_millis(10), &ack_seg(recover_point));
        assert!(!s.in_recovery);
        assert!(s.cwnd() <= cwnd_in_recovery);
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let (mut s, _data) = established();
        let rto = s.rto();
        let expire_at = SimTime::from_millis(10) + rto;
        let out = s.poll(expire_at);
        assert_eq!(out.len(), 1, "one go-back-N retransmission");
        assert_eq!(out[0].seq, 1_001);
        assert_eq!(s.cwnd(), MSS);
        assert_eq!(s.timeouts, 1);
        // Deadline backed off beyond a plain RTO.
        let next = s.next_wakeup();
        assert!(next.saturating_since(expire_at) >= rto);
    }

    #[test]
    fn repeated_rtos_kill_the_connection() {
        let (mut s, _data) = established();
        let mut t = SimTime::from_secs(1);
        for _ in 0..20 {
            t = s.next_wakeup().max(t) + SimDuration::from_millis(1);
            if t >= SimTime::MAX {
                break;
            }
            s.poll(t);
            if s.state() == TcpSenderState::Dead {
                break;
            }
        }
        assert_eq!(s.state(), TcpSenderState::Dead);
    }

    #[test]
    fn recovery_after_rto_resumes_slow_start() {
        let (mut s, _data) = established();
        let t = SimTime::from_millis(10) + s.rto();
        s.poll(t); // RTO
        assert_eq!(s.cwnd(), MSS);
        // ACK the retransmission: slow start growth resumes.
        let out = s.on_segment(t + SimDuration::from_millis(30), &ack_seg(1_001 + MSS));
        assert!(s.cwnd() >= 2 * MSS - 1);
        assert!(!out.is_empty());
        assert_eq!(s.state(), TcpSenderState::Established);
    }

    #[test]
    fn respects_receive_window() {
        let (mut s, _data) = established();
        // Receiver advertises a tiny window.
        let mut small = ack_seg(1_001 + MSS);
        small.window = 2 * MSS;
        let out = s.on_segment(SimTime::from_millis(50), &small);
        // Flight may not exceed 2*MSS.
        assert!(s.flight() <= 2 * MSS, "flight {}", s.flight());
        let _ = out;
    }

    #[test]
    fn foreign_ports_ignored() {
        let mut s = sender();
        let mut other = syn();
        other.dst_port = 81;
        assert!(s.on_segment(SimTime::ZERO, &other).is_empty());
        assert_eq!(s.state(), TcpSenderState::Listen);
    }

    #[test]
    fn idle_flight_disarms_timer() {
        let (mut s, data) = established();
        let t = SimTime::from_millis(60);
        // ACK everything (including what try_send emitted in response —
        // ack the final snd_nxt directly).
        let mut acked = s.on_segment(t, &ack_seg(data.last().unwrap().seq.wrapping_add(MSS)));
        // Keep acking until nothing is in flight.
        let mut t2 = t;
        let mut guard = 0;
        while s.flight() > 0 && guard < 100 {
            t2 += SimDuration::from_millis(10);
            let top = acked
                .last()
                .map(|seg: &TcpSegment| seg.seq.wrapping_add(seg.payload_len))
                .unwrap_or(s.snd_nxt);
            acked = s.on_segment(t2, &ack_seg(top));
            guard += 1;
        }
        // With an empty pipe the sender parks until the receiver window
        // re-opens... since the source is infinite, it only idles when the
        // window is exhausted by rwnd=0; otherwise flight stays positive.
        // Either way next_wakeup is consistent:
        if s.flight() == 0 {
            assert_eq!(s.next_wakeup(), SimTime::MAX);
        } else {
            assert!(s.next_wakeup() < SimTime::MAX);
        }
    }
}
