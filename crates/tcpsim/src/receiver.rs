//! The receiving (client) side of a bulk TCP download.
//!
//! Initiates the connection (SYN), acknowledges cumulatively (duplicate
//! ACKs arise naturally from out-of-order arrivals), reassembles
//! out-of-order segments, and counts in-order delivered bytes — the
//! quantity every throughput figure in the paper measures.

use spider_simcore::{SimDuration, SimTime};
use spider_wire::tcp::{seq_le, seq_lt};
use spider_wire::{TcpFlags, TcpSegment};

/// Receiver connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    SynSent,
    Established,
    Failed,
}

/// The client-side receiver.
#[derive(Debug, Clone)]
pub struct TcpReceiver {
    state: State,
    src_port: u16,
    dst_port: u16,
    iss: u32,
    rcv_nxt: u32,
    window: u32,
    /// Out-of-order ranges `(start, end)`, disjoint, sorted by wrapped
    /// offset from `rcv_nxt`.
    ooo: Vec<(u32, u32)>,
    syn_deadline: SimTime,
    syn_attempts: u32,
    max_syn_attempts: u32,
    syn_timeout: SimDuration,
    /// Cumulative in-order payload bytes delivered to the application.
    pub delivered: u64,
    /// Duplicate ACKs emitted (observability).
    pub dupacks_sent: u64,
}

impl TcpReceiver {
    /// Create a closed receiver for the 4-tuple.
    pub fn new(src_port: u16, dst_port: u16, iss: u32) -> TcpReceiver {
        TcpReceiver {
            state: State::Closed,
            src_port,
            dst_port,
            iss,
            rcv_nxt: 0,
            window: 64 * 1024,
            ooo: Vec::new(),
            syn_deadline: SimTime::MAX,
            syn_attempts: 0,
            max_syn_attempts: 5,
            syn_timeout: SimDuration::from_millis(500),
            delivered: 0,
            dupacks_sent: 0,
        }
    }

    /// Set the advertised receive window.
    pub fn set_window(&mut self, window: u32) {
        self.window = window;
    }

    /// Whether the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Whether connection setup was abandoned.
    pub fn has_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// Initiate the connection; returns the SYN to transmit.
    pub fn connect(&mut self, now: SimTime) -> TcpSegment {
        self.state = State::SynSent;
        self.syn_attempts = 1;
        self.syn_deadline = now + self.syn_timeout;
        self.seg(self.iss, TcpFlags::SYN, 0, 0)
    }

    fn seg(&self, seq: u32, flags: TcpFlags, ack: u32, payload_len: u32) -> TcpSegment {
        TcpSegment {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq,
            ack,
            window: self.window,
            flags,
            payload_len,
        }
    }

    fn ack_now(&self) -> TcpSegment {
        self.seg(self.iss.wrapping_add(1), TcpFlags::ACK, self.rcv_nxt, 0)
    }

    /// Process a segment from the sender; returns the ACK to transmit,
    /// if any. A cumulative-ACK receiver never emits more than one ACK
    /// per arriving segment, so the return type says so: the hot data
    /// path pays no per-segment allocation for the answer.
    pub fn on_segment(&mut self, _now: SimTime, seg: &TcpSegment) -> Option<TcpSegment> {
        if seg.dst_port != self.src_port || seg.src_port != self.dst_port {
            return None;
        }
        match self.state {
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.iss.wrapping_add(1) {
                    self.state = State::Established;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.syn_deadline = SimTime::MAX;
                    Some(self.ack_now())
                } else {
                    None
                }
            }
            State::Established => {
                if seg.flags.syn && seg.flags.ack {
                    // Our handshake ACK was lost; repeat it.
                    return Some(self.ack_now());
                }
                if seg.payload_len == 0 {
                    return None;
                }
                let start = seg.seq;
                let end = seg.seq.wrapping_add(seg.payload_len);
                if seq_le(end, self.rcv_nxt) {
                    // Entirely old data: ack again.
                    self.dupacks_sent += 1;
                    return Some(self.ack_now());
                }
                if start == self.rcv_nxt {
                    self.deliver_to(end);
                    self.drain_ooo();
                } else if seq_lt(self.rcv_nxt, start) {
                    self.insert_ooo(start, end);
                    self.dupacks_sent += 1;
                } else {
                    // Partial overlap from the left.
                    self.deliver_to(end);
                    self.drain_ooo();
                }
                Some(self.ack_now())
            }
            State::Closed | State::Failed => None,
        }
    }

    fn deliver_to(&mut self, end: u32) {
        let n = end.wrapping_sub(self.rcv_nxt);
        self.delivered += n as u64;
        self.rcv_nxt = end;
    }

    fn insert_ooo(&mut self, start: u32, end: u32) {
        // Merge into the disjoint range set (all within a 2^31 window of
        // rcv_nxt, so wrapped offsets order correctly).
        let base = self.rcv_nxt;
        let off = |x: u32| x.wrapping_sub(base);
        let mut ranges = std::mem::take(&mut self.ooo);
        ranges.push((start, end));
        ranges.sort_by_key(|&(s, _)| off(s));
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            if let Some(last) = merged.last_mut() {
                if off(s) <= off(last.1) {
                    if off(e) > off(last.1) {
                        last.1 = e;
                    }
                    continue;
                }
            }
            merged.push((s, e));
        }
        // Bound memory: keep at most 64 ranges (drop the furthest).
        merged.truncate(64);
        self.ooo = merged;
    }

    fn drain_ooo(&mut self) {
        while let Some(pos) = self.ooo.iter().position(|&(s, _)| seq_le(s, self.rcv_nxt)) {
            let (_, e) = self.ooo.remove(pos);
            if seq_lt(self.rcv_nxt, e) {
                self.deliver_to(e);
            }
        }
    }

    /// Timer processing: SYN retransmission. Transmissions only happen
    /// while `on_channel`.
    pub fn poll(&mut self, now: SimTime, on_channel: bool) -> Option<TcpSegment> {
        if self.state != State::SynSent || now < self.syn_deadline {
            return None;
        }
        if self.syn_attempts >= self.max_syn_attempts {
            self.state = State::Failed;
            self.syn_deadline = SimTime::MAX;
            return None;
        }
        if !on_channel {
            self.syn_deadline = now + self.syn_timeout;
            return None;
        }
        self.syn_attempts += 1;
        self.syn_deadline = now + self.syn_timeout * 2u64.pow(self.syn_attempts.min(6));
        Some(self.seg(self.iss, TcpFlags::SYN, 0, 0))
    }

    /// Next instant `poll` must run.
    pub fn next_wakeup(&self) -> SimTime {
        self.syn_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synack(seq: u32, ack: u32) -> TcpSegment {
        TcpSegment {
            src_port: 80,
            dst_port: 5000,
            seq,
            ack,
            window: 65_535,
            flags: TcpFlags::SYN_ACK,
            payload_len: 0,
        }
    }

    fn data(seq: u32, len: u32) -> TcpSegment {
        TcpSegment {
            src_port: 80,
            dst_port: 5000,
            seq,
            ack: 0,
            window: 65_535,
            flags: TcpFlags::ACK,
            payload_len: len,
        }
    }

    fn established() -> TcpReceiver {
        let mut r = TcpReceiver::new(5000, 80, 100);
        let syn = r.connect(SimTime::ZERO);
        assert!(syn.flags.syn);
        let out = r.on_segment(SimTime::from_millis(10), &synack(1000, 101));
        assert_eq!(out.unwrap().ack, 1001);
        assert!(r.is_established());
        r
    }

    #[test]
    fn in_order_delivery_advances_ack() {
        let mut r = established();
        let out = r.on_segment(SimTime::from_millis(20), &data(1001, 1000));
        assert_eq!(out.unwrap().ack, 2001);
        assert_eq!(r.delivered, 1000);
        let out = r.on_segment(SimTime::from_millis(30), &data(2001, 500));
        assert_eq!(out.unwrap().ack, 2501);
        assert_eq!(r.delivered, 1500);
    }

    #[test]
    fn gap_generates_dupacks_until_filled() {
        let mut r = established();
        r.on_segment(SimTime::from_millis(20), &data(1001, 1000)); // ack 2001
                                                                   // Segment after a hole.
        let out = r.on_segment(SimTime::from_millis(30), &data(3001, 1000));
        assert_eq!(out.unwrap().ack, 2001, "dup ack at the hole");
        let out = r.on_segment(SimTime::from_millis(31), &data(4001, 1000));
        assert_eq!(out.unwrap().ack, 2001);
        assert_eq!(r.dupacks_sent, 2);
        assert_eq!(r.delivered, 1000);
        // Filling the hole delivers everything buffered.
        let out = r.on_segment(SimTime::from_millis(40), &data(2001, 1000));
        assert_eq!(out.unwrap().ack, 5001);
        assert_eq!(r.delivered, 4000);
    }

    #[test]
    fn duplicate_data_is_reacked_not_recounted() {
        let mut r = established();
        r.on_segment(SimTime::from_millis(20), &data(1001, 1000));
        let out = r.on_segment(SimTime::from_millis(25), &data(1001, 1000));
        assert_eq!(out.unwrap().ack, 2001);
        assert_eq!(r.delivered, 1000);
    }

    #[test]
    fn overlapping_segment_delivers_only_new_bytes() {
        let mut r = established();
        r.on_segment(SimTime::from_millis(20), &data(1001, 1000));
        // Overlaps 500 old + 500 new.
        let out = r.on_segment(SimTime::from_millis(25), &data(1501, 1000));
        assert_eq!(out.unwrap().ack, 2501);
        assert_eq!(r.delivered, 1500);
    }

    #[test]
    fn lost_synack_triggers_retransmit_with_backoff() {
        let mut r = TcpReceiver::new(5000, 80, 100);
        r.connect(SimTime::ZERO);
        let d1 = r.next_wakeup();
        assert_eq!(d1, SimTime::from_millis(500));
        let out = r.poll(d1, true).expect("one SYN retransmission");
        assert!(out.flags.syn);
        assert!(r.next_wakeup().saturating_since(d1) > SimDuration::from_millis(500));
    }

    #[test]
    fn syn_gives_up_eventually() {
        let mut r = TcpReceiver::new(5000, 80, 100);
        r.connect(SimTime::ZERO);
        for _ in 0..10 {
            let t = r.next_wakeup();
            if t == SimTime::MAX {
                break;
            }
            r.poll(t, true);
        }
        assert!(r.has_failed());
    }

    #[test]
    fn syn_retransmit_waits_for_channel() {
        let mut r = TcpReceiver::new(5000, 80, 100);
        r.connect(SimTime::ZERO);
        let d1 = r.next_wakeup();
        // Off-channel: the deadline slides forward instead of firing.
        assert!(r.poll(d1, false).is_none());
        let d2 = r.next_wakeup();
        assert!(d2 > d1);
        // Back on channel past the slid deadline: one retransmission.
        assert!(r.poll(d2, true).is_some());
    }

    #[test]
    fn repeated_synack_is_reacked() {
        let mut r = established();
        let out = r.on_segment(SimTime::from_millis(50), &synack(1000, 101));
        assert_eq!(out.unwrap().ack, 1001);
    }

    #[test]
    fn foreign_ports_ignored() {
        let mut r = established();
        let mut seg = data(1001, 100);
        seg.src_port = 9999;
        assert!(r.on_segment(SimTime::ZERO, &seg).is_none());
    }

    #[test]
    fn many_out_of_order_ranges_merge() {
        let mut r = established();
        // Deliver every other segment first.
        for i in 0..10u32 {
            r.on_segment(
                SimTime::from_millis(20),
                &data(1001 + (2 * i + 1) * 100, 100),
            );
        }
        assert_eq!(r.delivered, 0);
        // Now fill the even slots.
        for i in 0..10u32 {
            r.on_segment(SimTime::from_millis(30), &data(1001 + (2 * i) * 100, 100));
        }
        assert_eq!(r.delivered, 2000);
    }
}
