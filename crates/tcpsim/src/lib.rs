//! Reno TCP over the simulated network.
//!
//! The paper's throughput results hinge on how TCP reacts to a client
//! that vanishes from a channel for scheduled intervals: the AP buffers
//! segments (PSM), ACKs stall, the retransmission timer fires, and slow
//! start begins anew — which is why "the throughput is very sensitive to
//! the amount of time spent by the driver on each channel" (Fig. 8) and
//! why a 400 ms total schedule (under two typical RTOs) keeps throughput
//! proportional to the schedule share (Fig. 7).
//!
//! The implementation is a classic Reno:
//!
//! * slow start / congestion avoidance / fast retransmit + recovery,
//! * RFC 6298 RTT estimation (SRTT/RTTVAR, Karn's rule) with exponential
//!   RTO backoff,
//! * cumulative ACKs with duplicate-ACK counting on the receiver,
//! * a three-way handshake so connection setup costs a real RTT.
//!
//! Segments carry byte *counts*, not bytes (see `spider-wire`).

#![forbid(unsafe_code)]

pub mod receiver;
pub mod rtt;
pub mod sender;

pub use receiver::TcpReceiver;
pub use rtt::RttEstimator;
pub use sender::{TcpConfig, TcpSender, TcpSenderState};
