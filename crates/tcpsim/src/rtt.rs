//! RFC 6298 round-trip-time estimation.

use spider_simcore::SimDuration;

/// SRTT/RTTVAR estimator with RTO clamping.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
}

impl RttEstimator {
    /// Create an estimator. `initial_rto` is used before any sample
    /// (RFC 6298 says 1 s); `min_rto` reflects the Linux floor of 200 ms
    /// in the paper's era.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            initial_rto,
        }
    }

    /// Defaults: initial 1 s, floor 200 ms, ceiling 60 s.
    pub fn standard() -> Self {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    /// Feed a new RTT sample (from a non-retransmitted segment, per
    /// Karn's algorithm — the caller enforces that).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // RTTVAR = 3/4 RTTVAR + 1/4 |err|; SRTT = 7/8 SRTT + 1/8 R.
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current retransmission timeout: `SRTT + max(G, 4·RTTVAR)` clamped
    /// to `[min_rto, max_rto]`; `initial_rto` before the first sample.
    pub fn rto(&self) -> SimDuration {
        let raw = match self.srtt {
            None => return self.initial_rto,
            Some(srtt) => srtt + (self.rttvar * 4).max(SimDuration::from_millis(10)),
        };
        raw.clamp(self.min_rto, self.max_rto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_before_samples() {
        let e = RttEstimator::standard();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = RttEstimator::standard();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::standard();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 80.0).abs() < 1.0, "srtt {srtt}");
        // Variance collapses, so RTO hits the floor.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn jitter_raises_rto() {
        let mut e = RttEstimator::standard();
        for i in 0..50 {
            e.sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 250 }));
        }
        assert!(e.rto() > SimDuration::from_millis(300));
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// RTO is always within the configured clamp after any sample
        /// sequence.
        #[test]
        fn rto_is_clamped(samples in prop::collection::vec(1u64..100_000, 1..100)) {
            let mut e = RttEstimator::standard();
            for s in samples {
                e.sample(SimDuration::from_micros(s));
            }
            let rto = e.rto();
            prop_assert!(rto >= SimDuration::from_millis(200));
            prop_assert!(rto <= SimDuration::from_secs(60));
        }
        }
    }
}
