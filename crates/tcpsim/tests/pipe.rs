//! Sender ↔ receiver over a simulated pipe: fixed one-way delay, a
//! bottleneck queue, and configurable random loss. Validates sustained
//! Reno behaviour — goodput near the bottleneck rate when clean,
//! graceful degradation under loss, recovery after a blackout.

use spider_simcore::{EventQueue, SimDuration, SimRng, SimTime};
use spider_tcpsim::{TcpConfig, TcpReceiver, TcpSender};
use spider_wire::TcpSegment;

enum Ev {
    ToReceiver(TcpSegment),
    ToSender(TcpSegment),
    SenderTimer,
    ReceiverTimer,
}

struct Pipe {
    queue: EventQueue<Ev>,
    sender: TcpSender,
    receiver: TcpReceiver,
    delay: SimDuration,
    /// Bottleneck rate in bytes/second toward the receiver.
    rate: f64,
    bottleneck_free: SimTime,
    queue_cap: SimDuration,
    loss: f64,
    rng: SimRng,
}

impl Pipe {
    fn new(rate: f64, loss: f64, seed: u64) -> Pipe {
        Pipe {
            queue: EventQueue::new(),
            sender: TcpSender::new(TcpConfig::default(), 80, 5000, 1_000),
            receiver: TcpReceiver::new(5000, 80, 7_000),
            delay: SimDuration::from_millis(15),
            rate,
            bottleneck_free: SimTime::ZERO,
            queue_cap: SimDuration::from_millis(200),
            loss,
            rng: SimRng::new(seed),
        }
    }

    fn send_toward_receiver(&mut self, now: SimTime, seg: TcpSegment) {
        if self.rng.chance(self.loss) {
            return;
        }
        let free = self.bottleneck_free.max(now);
        if free.saturating_since(now) > self.queue_cap {
            return; // drop-tail
        }
        let tx = SimDuration::from_secs_f64(seg.wire_size() as f64 / self.rate);
        self.bottleneck_free = free + tx;
        self.queue
            .schedule(self.bottleneck_free + self.delay, Ev::ToReceiver(seg));
    }

    fn send_toward_sender(&mut self, now: SimTime, seg: TcpSegment) {
        if self.rng.chance(self.loss) {
            return;
        }
        self.queue.schedule(now + self.delay, Ev::ToSender(seg));
    }

    /// Run until `end`; returns receiver-delivered bytes. `blackout` cuts
    /// both directions during the given window.
    fn run(&mut self, end: SimTime, blackout: Option<(SimTime, SimTime)>) -> u64 {
        let syn = self.receiver.connect(SimTime::ZERO);
        self.send_toward_sender(SimTime::ZERO, syn);
        self.queue
            .schedule(SimTime::from_millis(1), Ev::SenderTimer);
        self.queue
            .schedule(SimTime::from_millis(1), Ev::ReceiverTimer);
        while let Some(ev) = self.queue.pop() {
            let now = ev.at;
            if now > end {
                break;
            }
            let dark = blackout.map(|(a, b)| now >= a && now < b).unwrap_or(false);
            match ev.event {
                Ev::ToReceiver(seg) => {
                    if dark {
                        continue;
                    }
                    if let Some(ack) = self.receiver.on_segment(now, &seg) {
                        self.send_toward_sender(now, ack);
                    }
                    let next = self.receiver.next_wakeup();
                    if next < SimTime::MAX && next <= end {
                        self.queue.schedule(next.max(now), Ev::ReceiverTimer);
                    }
                }
                Ev::ToSender(seg) => {
                    if dark {
                        continue;
                    }
                    let out = self.sender.on_segment(now, &seg);
                    for s in out {
                        self.send_toward_receiver(now, s);
                    }
                    // Re-arm the RTO timer for the new deadline.
                    let next = self.sender.next_wakeup();
                    if next < SimTime::MAX && next <= end {
                        self.queue.schedule(next.max(now), Ev::SenderTimer);
                    }
                }
                Ev::SenderTimer => {
                    let out = self.sender.poll(now);
                    for s in out {
                        self.send_toward_receiver(now, s);
                    }
                    let next = self
                        .sender
                        .next_wakeup()
                        .max(now + SimDuration::from_millis(1));
                    if next < SimTime::MAX {
                        self.queue
                            .schedule(next.min(end + SimDuration::from_millis(2)), Ev::SenderTimer);
                    }
                }
                Ev::ReceiverTimer => {
                    if let Some(syn) = self.receiver.poll(now, !dark) {
                        self.send_toward_sender(now, syn);
                    }
                    let next = self
                        .receiver
                        .next_wakeup()
                        .max(now + SimDuration::from_millis(50));
                    if next < SimTime::MAX {
                        self.queue.schedule(
                            next.min(end + SimDuration::from_millis(2)),
                            Ev::ReceiverTimer,
                        );
                    }
                }
            }
        }
        self.receiver.delivered
    }
}

#[test]
fn clean_pipe_saturates_the_bottleneck() {
    let rate = 500_000.0;
    let mut pipe = Pipe::new(rate, 0.0, 1);
    let end = SimTime::from_secs(20);
    let delivered = pipe.run(end, None);
    let goodput = delivered as f64 / 20.0;
    assert!(
        goodput > 0.85 * rate,
        "goodput {goodput:.0} B/s on a {rate:.0} B/s pipe"
    );
}

#[test]
fn loss_degrades_goodput_gracefully() {
    let rate = 500_000.0;
    let clean = Pipe::new(rate, 0.0, 2).run(SimTime::from_secs(20), None);
    let lossy = Pipe::new(rate, 0.02, 2).run(SimTime::from_secs(20), None);
    let heavy = Pipe::new(rate, 0.05, 2).run(SimTime::from_secs(20), None);
    assert!(lossy < clean, "2% loss must cost throughput");
    assert!(heavy < lossy, "5% loss must cost more");
    // Reno at ~10% effective segment loss (both directions) limps but
    // must keep making progress via RTO recovery.
    assert!(
        heavy as f64 > 0.005 * clean as f64,
        "5% loss should not stall entirely: {heavy} vs {clean}"
    );
}

#[test]
fn connection_survives_a_blackout() {
    // A 3-second blackout mid-transfer (shorter than the sender's RTO
    // give-up horizon): the flow must resume.
    let rate = 250_000.0;
    let mut pipe = Pipe::new(rate, 0.0, 3);
    let end = SimTime::from_secs(30);
    let blackout = (SimTime::from_secs(10), SimTime::from_secs(13));
    let delivered = pipe.run(end, Some(blackout));
    // 27 usable seconds; demand at least half the clean rate overall
    // (slow-start recovery and backoff eat some).
    assert!(
        delivered as f64 > 0.5 * rate * 27.0,
        "delivered {delivered} after blackout"
    );
    assert!(
        pipe.sender.timeouts > 0,
        "the blackout must have cost at least one RTO"
    );
}

#[test]
fn deterministic_per_seed() {
    let a = Pipe::new(400_000.0, 0.03, 9).run(SimTime::from_secs(10), None);
    let b = Pipe::new(400_000.0, 0.03, 9).run(SimTime::from_secs(10), None);
    assert_eq!(a, b);
}
