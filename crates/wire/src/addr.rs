//! Addressing primitives: MAC addresses, IPv4 addresses and SSIDs.

use std::fmt;
use std::sync::Arc;

/// A 48-bit IEEE 802 MAC address.
///
/// AP BSSIDs and client (virtual) interface addresses are both `MacAddr`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally administered address derived from an integer id — handy
    /// for generating distinct, stable addresses in tests and scenarios.
    pub const fn from_id(id: u64) -> MacAddr {
        MacAddr([
            0x02, // locally administered, unicast
            (id >> 32) as u8,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A 32-bit IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0` (used as DHCP source).
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0, 0, 0, 0]);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255, 255, 255, 255]);

    /// Construct from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// Whether this is the unspecified address.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }

    /// The address as a `u32` in network order semantics.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Construct from a `u32`.
    pub fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// An 802.11 service set identifier (network name), at most 32 bytes.
///
/// Backed by a shared `Arc<str>`: an SSID travels in every beacon and
/// probe response the simulated air carries, so cloning one must be a
/// reference-count bump, not a heap copy. The name is immutable after
/// construction, which is exactly what `Arc<str>` models.
// The manual `PartialEq` below short-circuits on pointer identity but
// falls back to byte equality, so it agrees with the derived `Hash`
// (which hashes the bytes): equal values always hash alike.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Debug, Clone, Eq, Hash)]
pub struct Ssid(Arc<str>);

impl PartialEq for Ssid {
    fn eq(&self, other: &Ssid) -> bool {
        // Clones of one SSID share an allocation (beacons carry the same
        // `Arc` run after run), so the scanner's per-beacon name check
        // usually resolves on the pointer without touching the bytes.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Default for Ssid {
    fn default() -> Ssid {
        Ssid(Arc::from(""))
    }
}

impl Ssid {
    /// Construct an SSID, truncating to the 802.11 maximum of 32 bytes.
    pub fn new(name: impl Into<String>) -> Ssid {
        let mut s: String = name.into();
        if s.len() > 32 {
            // Truncate on a char boundary.
            let mut end = 32;
            while !s.is_char_boundary(end) {
                end -= 1;
            }
            s.truncate(end);
        }
        Ssid(Arc::from(s))
    }

    /// The SSID string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Byte length on the wire.
    pub fn wire_len(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ssid {
    fn from(s: &str) -> Ssid {
        Ssid::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_id_is_stable_and_distinct() {
        let a = MacAddr::from_id(1);
        let b = MacAddr::from_id(2);
        assert_ne!(a, b);
        assert_eq!(a, MacAddr::from_id(1));
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::from_id(0x0102).to_string(), "02:00:00:00:01:02");
    }

    #[test]
    fn ipv4_roundtrip_u32() {
        let a = Ipv4Addr::new(192, 168, 1, 42);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert!(Ipv4Addr::UNSPECIFIED.is_unspecified());
        assert!(!a.is_unspecified());
    }

    #[test]
    fn ssid_truncates_to_32_bytes() {
        let long = "x".repeat(40);
        let ssid = Ssid::new(long);
        assert_eq!(ssid.wire_len(), 32);
        let short = Ssid::new("town-wifi");
        assert_eq!(short.as_str(), "town-wifi");
    }

    #[test]
    fn ssid_clone_shares_the_allocation() {
        let a = Ssid::new("shared-town-wifi");
        let b = a.clone();
        assert!(
            std::ptr::eq(a.as_str(), b.as_str()),
            "cloning an Ssid must bump a refcount, not copy the bytes"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ssid_truncates_on_char_boundary() {
        // 'é' is 2 bytes; 17 of them = 34 bytes, truncation must not split
        // a code point.
        let s = "é".repeat(17);
        let ssid = Ssid::new(s);
        assert!(ssid.wire_len() <= 32);
        assert!(ssid.as_str().chars().all(|c| c == 'é'));
    }
}
