//! Protocol data units for the Spider reproduction.
//!
//! This crate defines every message that crosses the simulated air or the
//! simulated backhaul:
//!
//! * [`frame`] — 802.11 management/data frames (beacon, probe, auth,
//!   association, power-save signalling, data),
//! * [`dhcp`] — the four-message DHCP join handshake,
//! * [`icmp`] — echo request/reply used by Spider's link-liveness probing,
//! * [`tcp`] — TCP segments for the Reno model in `spider-tcpsim`,
//! * [`ip`] — a minimal IPv4 packet wrapper tying L4 payloads to
//!   addresses,
//! * [`addr`] / [`channel`] — MAC addresses, SSIDs and 2.4 GHz channels,
//! * [`codec`] — byte-level encode/decode for every frame type, used by
//!   the pcap-style dump tooling and exercised by round-trip property
//!   tests.
//!
//! Inside the simulator frames travel as typed values (no serialisation on
//! the hot path), but every type has a faithful wire size so airtime and
//! backhaul occupancy are computed from realistic byte counts.

#![forbid(unsafe_code)]

pub mod addr;
pub mod channel;
pub mod codec;
pub mod dhcp;
pub mod frame;
pub mod icmp;
pub mod ip;
pub mod tcp;

pub use addr::{Ipv4Addr, MacAddr, Ssid};
pub use channel::Channel;
pub use dhcp::{DhcpMessage, DhcpOp};
pub use frame::{AirFrame, Frame, FrameBody, FrameKind, SharedFrame};
pub use icmp::IcmpMessage;
pub use ip::{Ipv4Packet, L4};
pub use tcp::{TcpFlags, TcpSegment};
