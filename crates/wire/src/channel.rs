//! 2.4 GHz 802.11 channels.
//!
//! The paper schedules among the three non-overlapping ("orthogonal")
//! channels 1, 6 and 11, on which 83–95 % of deployed APs sit (§4.1).

use std::fmt;

/// A 2.4 GHz Wi-Fi channel (1–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(u8);

impl Channel {
    /// Channel 1 (2412 MHz).
    pub const CH1: Channel = Channel(1);
    /// Channel 6 (2437 MHz).
    pub const CH6: Channel = Channel(6);
    /// Channel 11 (2462 MHz).
    pub const CH11: Channel = Channel(11);

    /// The three mutually non-overlapping channels the paper schedules
    /// over.
    pub const ORTHOGONAL: [Channel; 3] = [Self::CH1, Self::CH6, Self::CH11];

    /// Construct a channel; panics outside 1–14.
    pub fn new(n: u8) -> Channel {
        assert!((1..=14).contains(&n), "invalid 2.4GHz channel {n}");
        Channel(n)
    }

    /// Fallible construction.
    pub fn try_new(n: u8) -> Option<Channel> {
        (1..=14).contains(&n).then_some(Channel(n))
    }

    /// The channel number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Dense 0-based index (channel number − 1), for flat per-channel
    /// arrays — hot-path state like the medium's busy horizons indexes
    /// by channel millions of times per simulated run.
    pub fn index(self) -> usize {
        self.0 as usize - 1
    }

    /// Number of distinct channels ([`Channel::index`] upper bound).
    pub const COUNT: usize = 14;

    /// Centre frequency in MHz.
    pub fn center_mhz(self) -> u32 {
        if self.0 == 14 {
            2484
        } else {
            2407 + 5 * self.0 as u32
        }
    }

    /// Whether two channels' 22 MHz-wide masks overlap (channels fewer
    /// than 5 apart interfere).
    pub fn overlaps(self, other: Channel) -> bool {
        self.0.abs_diff(other.0) < 5
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_channels_do_not_overlap() {
        for (i, &a) in Channel::ORTHOGONAL.iter().enumerate() {
            for &b in &Channel::ORTHOGONAL[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
            assert!(a.overlaps(a));
        }
    }

    #[test]
    fn adjacent_channels_overlap() {
        assert!(Channel::new(1).overlaps(Channel::new(3)));
        assert!(!Channel::new(1).overlaps(Channel::new(6)));
    }

    #[test]
    fn frequencies() {
        assert_eq!(Channel::CH1.center_mhz(), 2412);
        assert_eq!(Channel::CH6.center_mhz(), 2437);
        assert_eq!(Channel::CH11.center_mhz(), 2462);
        assert_eq!(Channel::new(14).center_mhz(), 2484);
    }

    #[test]
    fn try_new_bounds() {
        assert!(Channel::try_new(0).is_none());
        assert!(Channel::try_new(15).is_none());
        assert_eq!(Channel::try_new(6), Some(Channel::CH6));
    }

    #[test]
    #[should_panic]
    fn new_rejects_invalid() {
        Channel::new(0);
    }
}
