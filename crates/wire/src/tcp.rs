//! TCP segments.
//!
//! Segments carry a *length* rather than literal bytes — the simulator
//! cares about sequence-space arithmetic, timing and airtime, not the
//! data itself. Sequence numbers are full 32-bit values with wrapping
//! comparison, as on the wire.

/// TCP header flags (only the ones the Reno model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Plain data/ACK segment flags.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
}

/// A TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgement number (valid if `flags.ack`).
    pub ack: u32,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Payload length in bytes (the bytes themselves are not simulated).
    pub payload_len: u32,
}

impl TcpSegment {
    /// TCP header wire size (no options).
    pub const HEADER_SIZE: usize = 20;

    /// Total wire size: header + payload.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_SIZE + self.payload_len as usize
    }

    /// The sequence number following this segment's payload (SYN/FIN each
    /// consume one sequence number).
    pub fn seq_end(&self) -> u32 {
        let mut len = self.payload_len;
        if self.flags.syn {
            len = len.wrapping_add(1);
        }
        if self.flags.fin {
            len = len.wrapping_add(1);
        }
        self.seq.wrapping_add(len)
    }
}

/// Wrapping "less than" over the 32-bit TCP sequence space (RFC 1982
/// serial number arithmetic).
pub fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < (1 << 31)
}

/// Wrapping "less than or equal" over the sequence space.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(seq: u32, len: u32, flags: TcpFlags) -> TcpSegment {
        TcpSegment {
            src_port: 80,
            dst_port: 5000,
            seq,
            ack: 0,
            window: 65535,
            flags,
            payload_len: len,
        }
    }

    #[test]
    fn seq_end_counts_syn_and_fin() {
        assert_eq!(seg(100, 50, TcpFlags::ACK).seq_end(), 150);
        assert_eq!(seg(100, 0, TcpFlags::SYN).seq_end(), 101);
        let fin = TcpFlags {
            fin: true,
            ack: true,
            ..Default::default()
        };
        assert_eq!(seg(100, 10, fin).seq_end(), 111);
    }

    #[test]
    fn seq_end_wraps() {
        assert_eq!(seg(u32::MAX, 2, TcpFlags::ACK).seq_end(), 1);
    }

    #[test]
    fn wire_size_includes_header() {
        assert_eq!(seg(0, 1460, TcpFlags::ACK).wire_size(), 1480);
    }

    #[test]
    fn wrapping_comparisons() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_le(5, 5));
        // Wrap-around: a number just past MAX is "greater".
        assert!(seq_lt(u32::MAX, 3));
        assert!(!seq_lt(3, u32::MAX));
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// seq_lt is a strict ordering on any window smaller than 2^31.
        #[test]
        fn seq_lt_consistent_with_offsets(base: u32, d in 1u32..(1 << 30)) {
            let b = base.wrapping_add(d);
            prop_assert!(seq_lt(base, b));
            prop_assert!(!seq_lt(b, base));
            prop_assert!(seq_le(base, b));
        }
        }
    }
}
