//! ICMP echo messages.
//!
//! Spider's link management module tests end-to-end liveness with pings —
//! 10/second, with 30 consecutive losses declaring the link dead (§3.2.2).

/// An ICMP message (only echo is modelled; that is all Spider uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request carrying an identifier and sequence number.
    EchoRequest {
        /// Identifier distinguishing ping streams (one per interface).
        id: u16,
        /// Monotonic sequence number within a stream.
        seq: u16,
    },
    /// Echo reply mirroring the request's identifier and sequence.
    EchoReply {
        /// Mirrored identifier.
        id: u16,
        /// Mirrored sequence number.
        seq: u16,
    },
}

impl IcmpMessage {
    /// Wire size of an echo message: 8-byte ICMP header + 56 bytes of
    /// payload, the classic `ping` default.
    pub const WIRE_SIZE: usize = 64;

    /// Build the reply matching a request; `None` for non-requests.
    pub fn reply_to(&self) -> Option<IcmpMessage> {
        match *self {
            IcmpMessage::EchoRequest { id, seq } => Some(IcmpMessage::EchoReply { id, seq }),
            IcmpMessage::EchoReply { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpMessage::EchoRequest { id: 3, seq: 17 };
        assert_eq!(
            req.reply_to(),
            Some(IcmpMessage::EchoReply { id: 3, seq: 17 })
        );
        assert_eq!(req.reply_to().unwrap().reply_to(), None);
    }
}
