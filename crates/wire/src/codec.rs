//! Byte-level frame codec.
//!
//! Encodes frames into a compact, versioned binary capture format — the
//! simulator's equivalent of a pcap record body. The hot simulation path
//! passes frames by value; this codec exists for trace dumps, golden-file
//! tests and as a stable interchange format. Round-trip fidelity is
//! enforced by property tests.

use crate::addr::{Ipv4Addr, MacAddr, Ssid};
use crate::channel::Channel;
use crate::dhcp::{DhcpMessage, DhcpOp};
use crate::frame::{Frame, FrameBody};
use crate::icmp::IcmpMessage;
use crate::ip::{Ipv4Packet, L4};
use crate::tcp::{TcpFlags, TcpSegment};
use spider_simcore::SimDuration;
use std::fmt;

/// Capture format version byte.
const VERSION: u8 = 1;

/// Errors produced while decoding a captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown discriminant tag for the named structure.
    BadTag {
        /// Which structure had the bad tag.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// SSID bytes were not valid UTF-8.
    BadSsid,
    /// Trailing bytes after a complete frame.
    TrailingBytes(usize),
    /// A channel number outside 1–14.
    BadChannel(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadVersion(v) => write!(f, "unsupported capture version {v}"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            CodecError::BadSsid => write!(f, "SSID is not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            CodecError::BadChannel(c) => write!(f, "invalid channel {c}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    fn over(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn mac(&mut self, m: MacAddr) {
        self.buf.extend_from_slice(&m.0);
    }
    fn ip(&mut self, a: Ipv4Addr) {
        self.buf.extend_from_slice(&a.0);
    }
    fn ssid(&mut self, s: &Ssid) {
        let bytes = s.as_str().as_bytes();
        self.u8(bytes.len() as u8);
        self.buf.extend_from_slice(bytes);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }
    fn mac(&mut self) -> Result<MacAddr, CodecError> {
        Ok(MacAddr(self.take(6)?.try_into().unwrap()))
    }
    fn ip(&mut self) -> Result<Ipv4Addr, CodecError> {
        Ok(Ipv4Addr(self.take(4)?.try_into().unwrap()))
    }
    fn ssid(&mut self) -> Result<Ssid, CodecError> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::BadSsid)?;
        Ok(Ssid::new(s))
    }
    fn channel(&mut self) -> Result<Channel, CodecError> {
        let n = self.u8()?;
        Channel::try_new(n).ok_or(CodecError::BadChannel(n))
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// Body tags.
const T_BEACON: u8 = 1;
const T_PROBE_REQ: u8 = 2;
const T_PROBE_RESP: u8 = 3;
const T_AUTH_REQ: u8 = 4;
const T_AUTH_RESP: u8 = 5;
const T_ASSOC_REQ: u8 = 6;
const T_ASSOC_RESP: u8 = 7;
const T_DEAUTH: u8 = 8;
const T_NULL: u8 = 9;
const T_PSPOLL: u8 = 10;
const T_DATA: u8 = 11;

// L4 tags.
const L_TCP: u8 = 1;
const L_ICMP: u8 = 2;
const L_DHCP: u8 = 3;

// DHCP op tags.
const D_DISCOVER: u8 = 1;
const D_OFFER: u8 = 2;
const D_REQUEST: u8 = 3;
const D_ACK: u8 = 4;
const D_NAK: u8 = 5;

/// Encode a frame into the capture format.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_into(frame, &mut buf);
    buf
}

/// Encode a frame into the capture format, appending to `out` (cleared
/// first). Callers that encode many frames — the capture writer records
/// every frame on the air — reuse one scratch buffer instead of
/// allocating a fresh `Vec` per frame.
pub fn encode_into(frame: &Frame, out: &mut Vec<u8>) {
    out.clear();
    let mut w = Writer::over(out);
    w.u8(VERSION);
    w.mac(frame.src);
    w.mac(frame.dst);
    w.mac(frame.bssid);
    encode_body(&mut w, &frame.body);
}

fn encode_body(w: &mut Writer, body: &FrameBody) {
    match body {
        FrameBody::Beacon {
            ssid,
            channel,
            interval,
        } => {
            w.u8(T_BEACON);
            w.ssid(ssid);
            w.u8(channel.number());
            w.u64(interval.as_micros());
        }
        FrameBody::ProbeRequest { ssid } => {
            w.u8(T_PROBE_REQ);
            match ssid {
                Some(s) => {
                    w.bool(true);
                    w.ssid(s);
                }
                None => w.bool(false),
            }
        }
        FrameBody::ProbeResponse { ssid, channel } => {
            w.u8(T_PROBE_RESP);
            w.ssid(ssid);
            w.u8(channel.number());
        }
        FrameBody::AuthRequest => w.u8(T_AUTH_REQ),
        FrameBody::AuthResponse { ok } => {
            w.u8(T_AUTH_RESP);
            w.bool(*ok);
        }
        FrameBody::AssocRequest { ssid } => {
            w.u8(T_ASSOC_REQ);
            w.ssid(ssid);
        }
        FrameBody::AssocResponse { ok, aid } => {
            w.u8(T_ASSOC_RESP);
            w.bool(*ok);
            w.u16(*aid);
        }
        FrameBody::Deauth { reason } => {
            w.u8(T_DEAUTH);
            w.u16(*reason);
        }
        FrameBody::Null { power_save } => {
            w.u8(T_NULL);
            w.bool(*power_save);
        }
        FrameBody::PsPoll => w.u8(T_PSPOLL),
        FrameBody::Data { packet, more_data } => {
            w.u8(T_DATA);
            w.bool(*more_data);
            encode_packet(w, packet);
        }
    }
}

fn encode_packet(w: &mut Writer, p: &Ipv4Packet) {
    w.ip(p.src);
    w.ip(p.dst);
    match &p.payload {
        L4::Tcp(t) => {
            w.u8(L_TCP);
            w.u16(t.src_port);
            w.u16(t.dst_port);
            w.u32(t.seq);
            w.u32(t.ack);
            w.u32(t.window);
            let flags = (t.flags.syn as u8)
                | (t.flags.ack as u8) << 1
                | (t.flags.fin as u8) << 2
                | (t.flags.rst as u8) << 3;
            w.u8(flags);
            w.u32(t.payload_len);
        }
        L4::Icmp(i) => {
            w.u8(L_ICMP);
            match i {
                IcmpMessage::EchoRequest { id, seq } => {
                    w.u8(0);
                    w.u16(*id);
                    w.u16(*seq);
                }
                IcmpMessage::EchoReply { id, seq } => {
                    w.u8(1);
                    w.u16(*id);
                    w.u16(*seq);
                }
            }
        }
        L4::Dhcp(d) => {
            w.u8(L_DHCP);
            w.u8(match d.op {
                DhcpOp::Discover => D_DISCOVER,
                DhcpOp::Offer => D_OFFER,
                DhcpOp::Request => D_REQUEST,
                DhcpOp::Ack => D_ACK,
                DhcpOp::Nak => D_NAK,
            });
            w.u32(d.xid);
            w.mac(d.chaddr);
            w.ip(d.yiaddr);
            w.ip(d.server_id);
            w.u64(d.lease.as_micros());
        }
    }
}

/// Decode a frame from the capture format. The input must contain exactly
/// one frame.
pub fn decode(bytes: &[u8]) -> Result<Frame, CodecError> {
    let mut r = Reader::new(bytes);
    let v = r.u8()?;
    if v != VERSION {
        return Err(CodecError::BadVersion(v));
    }
    let src = r.mac()?;
    let dst = r.mac()?;
    let bssid = r.mac()?;
    let body = decode_body(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(Frame {
        src,
        dst,
        bssid,
        body,
    })
}

fn decode_body(r: &mut Reader<'_>) -> Result<FrameBody, CodecError> {
    let tag = r.u8()?;
    Ok(match tag {
        T_BEACON => FrameBody::Beacon {
            ssid: r.ssid()?,
            channel: r.channel()?,
            interval: SimDuration::from_micros(r.u64()?),
        },
        T_PROBE_REQ => FrameBody::ProbeRequest {
            ssid: if r.bool()? { Some(r.ssid()?) } else { None },
        },
        T_PROBE_RESP => FrameBody::ProbeResponse {
            ssid: r.ssid()?,
            channel: r.channel()?,
        },
        T_AUTH_REQ => FrameBody::AuthRequest,
        T_AUTH_RESP => FrameBody::AuthResponse { ok: r.bool()? },
        T_ASSOC_REQ => FrameBody::AssocRequest { ssid: r.ssid()? },
        T_ASSOC_RESP => FrameBody::AssocResponse {
            ok: r.bool()?,
            aid: r.u16()?,
        },
        T_DEAUTH => FrameBody::Deauth { reason: r.u16()? },
        T_NULL => FrameBody::Null {
            power_save: r.bool()?,
        },
        T_PSPOLL => FrameBody::PsPoll,
        T_DATA => {
            let more_data = r.bool()?;
            FrameBody::Data {
                packet: decode_packet(r)?,
                more_data,
            }
        }
        t => {
            return Err(CodecError::BadTag {
                what: "frame body",
                tag: t,
            })
        }
    })
}

fn decode_packet(r: &mut Reader<'_>) -> Result<Ipv4Packet, CodecError> {
    let src = r.ip()?;
    let dst = r.ip()?;
    let tag = r.u8()?;
    let payload = match tag {
        L_TCP => {
            let src_port = r.u16()?;
            let dst_port = r.u16()?;
            let seq = r.u32()?;
            let ack = r.u32()?;
            let window = r.u32()?;
            let fl = r.u8()?;
            let payload_len = r.u32()?;
            L4::Tcp(TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                window,
                flags: TcpFlags {
                    syn: fl & 1 != 0,
                    ack: fl & 2 != 0,
                    fin: fl & 4 != 0,
                    rst: fl & 8 != 0,
                },
                payload_len,
            })
        }
        L_ICMP => {
            let sub = r.u8()?;
            let id = r.u16()?;
            let seq = r.u16()?;
            L4::Icmp(match sub {
                0 => IcmpMessage::EchoRequest { id, seq },
                1 => IcmpMessage::EchoReply { id, seq },
                t => {
                    return Err(CodecError::BadTag {
                        what: "icmp",
                        tag: t,
                    })
                }
            })
        }
        L_DHCP => {
            let op = match r.u8()? {
                D_DISCOVER => DhcpOp::Discover,
                D_OFFER => DhcpOp::Offer,
                D_REQUEST => DhcpOp::Request,
                D_ACK => DhcpOp::Ack,
                D_NAK => DhcpOp::Nak,
                t => {
                    return Err(CodecError::BadTag {
                        what: "dhcp op",
                        tag: t,
                    })
                }
            };
            L4::Dhcp(DhcpMessage {
                op,
                xid: r.u32()?,
                chaddr: r.mac()?,
                yiaddr: r.ip()?,
                server_id: r.ip()?,
                lease: SimDuration::from_micros(r.u64()?),
            })
        }
        t => return Err(CodecError::BadTag { what: "l4", tag: t }),
    };
    Ok(Ipv4Packet { src, dst, payload })
}

#[cfg(all(test, feature = "proptest-tests"))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_mac() -> impl Strategy<Value = MacAddr> {
        any::<[u8; 6]>().prop_map(MacAddr)
    }
    fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
        any::<[u8; 4]>().prop_map(Ipv4Addr)
    }
    fn arb_ssid() -> impl Strategy<Value = Ssid> {
        "[a-zA-Z0-9_-]{0,32}".prop_map(Ssid::new)
    }
    fn arb_channel() -> impl Strategy<Value = Channel> {
        (1u8..=14).prop_map(Channel::new)
    }

    fn arb_l4() -> impl Strategy<Value = L4> {
        prop_oneof![
            (
                any::<u16>(),
                any::<u16>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<(bool, bool, bool, bool)>(),
                0u32..100_000
            )
                .prop_map(|(sp, dp, seq, ack, win, (syn, ackf, fin, rst), len)| {
                    L4::Tcp(TcpSegment {
                        src_port: sp,
                        dst_port: dp,
                        seq,
                        ack,
                        window: win,
                        flags: TcpFlags {
                            syn,
                            ack: ackf,
                            fin,
                            rst,
                        },
                        payload_len: len,
                    })
                }),
            (any::<bool>(), any::<u16>(), any::<u16>()).prop_map(|(req, id, seq)| {
                L4::Icmp(if req {
                    IcmpMessage::EchoRequest { id, seq }
                } else {
                    IcmpMessage::EchoReply { id, seq }
                })
            }),
            (
                prop_oneof![
                    Just(DhcpOp::Discover),
                    Just(DhcpOp::Offer),
                    Just(DhcpOp::Request),
                    Just(DhcpOp::Ack),
                    Just(DhcpOp::Nak)
                ],
                any::<u32>(),
                arb_mac(),
                arb_ip(),
                arb_ip(),
                0u64..1u64 << 40
            )
                .prop_map(|(op, xid, chaddr, yiaddr, server_id, lease)| {
                    L4::Dhcp(DhcpMessage {
                        op,
                        xid,
                        chaddr,
                        yiaddr,
                        server_id,
                        lease: SimDuration::from_micros(lease),
                    })
                }),
        ]
    }

    fn arb_body() -> impl Strategy<Value = FrameBody> {
        prop_oneof![
            (arb_ssid(), arb_channel(), 0u64..1u64 << 30).prop_map(|(ssid, channel, i)| {
                FrameBody::Beacon {
                    ssid,
                    channel,
                    interval: SimDuration::from_micros(i),
                }
            }),
            proptest::option::of(arb_ssid()).prop_map(|ssid| FrameBody::ProbeRequest { ssid }),
            (arb_ssid(), arb_channel())
                .prop_map(|(ssid, channel)| FrameBody::ProbeResponse { ssid, channel }),
            Just(FrameBody::AuthRequest),
            any::<bool>().prop_map(|ok| FrameBody::AuthResponse { ok }),
            arb_ssid().prop_map(|ssid| FrameBody::AssocRequest { ssid }),
            (any::<bool>(), any::<u16>())
                .prop_map(|(ok, aid)| FrameBody::AssocResponse { ok, aid }),
            any::<u16>().prop_map(|reason| FrameBody::Deauth { reason }),
            any::<bool>().prop_map(|power_save| FrameBody::Null { power_save }),
            Just(FrameBody::PsPoll),
            (any::<bool>(), arb_ip(), arb_ip(), arb_l4()).prop_map(
                |(more_data, src, dst, payload)| {
                    FrameBody::Data {
                        packet: Ipv4Packet { src, dst, payload },
                        more_data,
                    }
                }
            ),
        ]
    }

    fn arb_frame() -> impl Strategy<Value = Frame> {
        (arb_mac(), arb_mac(), arb_mac(), arb_body()).prop_map(|(src, dst, bssid, body)| Frame {
            src,
            dst,
            bssid,
            body,
        })
    }

    proptest! {
        /// Every frame round-trips through the codec unchanged.
        #[test]
        fn roundtrip(frame in arb_frame()) {
            let bytes = encode(&frame);
            let decoded = decode(&bytes).expect("decode");
            prop_assert_eq!(frame, decoded);
        }

        /// Decoding never panics on arbitrary junk.
        #[test]
        fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        /// A truncated encoding fails cleanly (no panic, no bogus success
        /// unless the cut is exactly at the end).
        #[test]
        fn truncation_is_detected(frame in arb_frame(), cut in 0usize..64) {
            let bytes = encode(&frame);
            if cut < bytes.len() {
                let r = decode(&bytes[..cut]);
                prop_assert!(r.is_err());
            }
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let frame = Frame {
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            bssid: MacAddr::from_id(2),
            body: FrameBody::PsPoll,
        };
        let mut bytes = encode(&frame);
        bytes[0] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let frame = Frame {
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            bssid: MacAddr::from_id(2),
            body: FrameBody::AuthRequest,
        };
        let mut bytes = encode(&frame);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_channel_is_rejected() {
        let frame = Frame {
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            bssid: MacAddr::from_id(2),
            body: FrameBody::ProbeResponse {
                ssid: "x".into(),
                channel: Channel::CH6,
            },
        };
        let mut bytes = encode(&frame);
        // channel byte is the last one before nothing; find and corrupt it
        let n = bytes.len();
        bytes[n - 1] = 0;
        assert_eq!(decode(&bytes), Err(CodecError::BadChannel(0)));
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::frame::{Frame, FrameBody};

    /// The capture format is an interchange format: its bytes must never
    /// change silently. This pins the exact encoding of a minimal frame.
    #[test]
    fn golden_auth_request_bytes() {
        let frame = Frame {
            src: MacAddr([1, 2, 3, 4, 5, 6]),
            dst: MacAddr([7, 8, 9, 10, 11, 12]),
            bssid: MacAddr([7, 8, 9, 10, 11, 12]),
            body: FrameBody::AuthRequest,
        };
        let bytes = encode(&frame);
        assert_eq!(
            bytes,
            vec![
                1, // version
                1, 2, 3, 4, 5, 6, // src
                7, 8, 9, 10, 11, 12, // dst
                7, 8, 9, 10, 11, 12, // bssid
                4,  // T_AUTH_REQ
            ]
        );
        assert_eq!(decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let frames = [
            Frame {
                src: MacAddr::from_id(1),
                dst: MacAddr::BROADCAST,
                bssid: MacAddr::from_id(1),
                body: FrameBody::Beacon {
                    ssid: "townwifi".into(),
                    channel: crate::channel::Channel::CH6,
                    interval: spider_simcore::SimDuration::from_millis(102),
                },
            },
            Frame {
                src: MacAddr::from_id(2),
                dst: MacAddr::from_id(3),
                bssid: MacAddr::from_id(3),
                body: FrameBody::Deauth { reason: 7 },
            },
        ];
        let mut scratch = Vec::new();
        for f in &frames {
            encode_into(f, &mut scratch);
            assert_eq!(scratch, encode(f), "encode_into must match encode");
            assert_eq!(decode(&scratch).unwrap(), *f);
        }
    }

    #[test]
    fn golden_pspoll_is_tag_10() {
        let frame = Frame {
            src: MacAddr([0; 6]),
            dst: MacAddr([0; 6]),
            bssid: MacAddr([0; 6]),
            body: FrameBody::PsPoll,
        };
        let bytes = encode(&frame);
        assert_eq!(bytes.len(), 1 + 18 + 1);
        assert_eq!(*bytes.last().unwrap(), 10);
    }
}
