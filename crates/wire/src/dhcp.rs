//! DHCP messages.
//!
//! The paper's central observation is that the four-message DHCP join
//! (DISCOVER → OFFER → REQUEST → ACK) dominates connection setup for
//! mobile clients and, unlike data frames, cannot be buffered by the AP's
//! power-save mechanism while the client is off-channel (§2). These types
//! model that handshake; timing behaviour (timeouts, retries, caching)
//! lives in `spider-netstack`.

use crate::addr::{Ipv4Addr, MacAddr};
use spider_simcore::SimDuration;

/// DHCP message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhcpOp {
    /// Client broadcast looking for servers.
    Discover,
    /// Server offers an address.
    Offer,
    /// Client requests the offered address (also used for cached-lease
    /// re-confirmation, i.e. DHCP INIT-REBOOT).
    Request,
    /// Server confirms the lease.
    Ack,
    /// Server refuses the request.
    Nak,
}

impl DhcpOp {
    /// Whether the message travels client → server.
    pub fn from_client(self) -> bool {
        matches!(self, DhcpOp::Discover | DhcpOp::Request)
    }
}

/// A DHCP message.
///
/// Field usage mirrors RFC 2131 at the granularity the simulation needs:
/// `yiaddr` ("your address") is meaningful in OFFER/ACK, `server_id`
/// identifies the responding server, `xid` correlates an exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// Message type.
    pub op: DhcpOp,
    /// Transaction id chosen by the client.
    pub xid: u32,
    /// Client hardware (interface) address.
    pub chaddr: MacAddr,
    /// Address being offered / requested / acknowledged.
    pub yiaddr: Ipv4Addr,
    /// DHCP server identifier (the AP's gateway address here).
    pub server_id: Ipv4Addr,
    /// Lease duration granted (meaningful in ACK).
    pub lease: SimDuration,
}

impl DhcpMessage {
    /// A client DISCOVER.
    pub fn discover(xid: u32, chaddr: MacAddr) -> DhcpMessage {
        DhcpMessage {
            op: DhcpOp::Discover,
            xid,
            chaddr,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            server_id: Ipv4Addr::UNSPECIFIED,
            lease: SimDuration::ZERO,
        }
    }

    /// A client REQUEST for `addr` from `server_id`.
    pub fn request(xid: u32, chaddr: MacAddr, addr: Ipv4Addr, server_id: Ipv4Addr) -> DhcpMessage {
        DhcpMessage {
            op: DhcpOp::Request,
            xid,
            chaddr,
            yiaddr: addr,
            server_id,
            lease: SimDuration::ZERO,
        }
    }

    /// Fixed RFC 2131 BOOTP frame size plus typical options, used for
    /// airtime computation. Real DHCP packets are 300–590 bytes; we use a
    /// representative 330.
    pub const WIRE_SIZE: usize = 330;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert!(DhcpOp::Discover.from_client());
        assert!(DhcpOp::Request.from_client());
        assert!(!DhcpOp::Offer.from_client());
        assert!(!DhcpOp::Ack.from_client());
        assert!(!DhcpOp::Nak.from_client());
    }

    #[test]
    fn constructors_fill_fields() {
        let mac = MacAddr::from_id(7);
        let d = DhcpMessage::discover(0xdead, mac);
        assert_eq!(d.op, DhcpOp::Discover);
        assert_eq!(d.xid, 0xdead);
        assert_eq!(d.chaddr, mac);
        assert!(d.yiaddr.is_unspecified());

        let ip = Ipv4Addr::new(10, 0, 0, 9);
        let sid = Ipv4Addr::new(10, 0, 0, 1);
        let r = DhcpMessage::request(1, mac, ip, sid);
        assert_eq!(r.op, DhcpOp::Request);
        assert_eq!(r.yiaddr, ip);
        assert_eq!(r.server_id, sid);
    }
}
