//! Minimal IPv4 packets.
//!
//! Ties an L4 payload (TCP, ICMP, or DHCP-over-UDP) to source and
//! destination addresses. There is no fragmentation — every simulated
//! MSS fits the Wi-Fi MTU — and "UDP" exists only as the fixed header
//! cost DHCP pays.

use crate::addr::Ipv4Addr;
use crate::dhcp::DhcpMessage;
use crate::icmp::IcmpMessage;
use crate::tcp::TcpSegment;

/// Layer-4 payload of an IPv4 packet.
#[derive(Debug, Clone, PartialEq)]
pub enum L4 {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// An ICMP echo message.
    Icmp(IcmpMessage),
    /// A DHCP message (riding UDP 67/68; the UDP header is folded into
    /// [`DhcpMessage::WIRE_SIZE`]).
    Dhcp(DhcpMessage),
}

impl L4 {
    /// Payload wire size, excluding the IPv4 header.
    pub fn wire_size(&self) -> usize {
        match self {
            L4::Tcp(t) => t.wire_size(),
            L4::Icmp(_) => IcmpMessage::WIRE_SIZE,
            L4::Dhcp(_) => DhcpMessage::WIRE_SIZE,
        }
    }
}

/// An IPv4 packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Layer-4 payload.
    pub payload: L4,
}

impl Ipv4Packet {
    /// IPv4 header size (no options).
    pub const HEADER_SIZE: usize = 20;

    /// Total wire size including the IPv4 header.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_SIZE + self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::tcp::TcpFlags;

    #[test]
    fn wire_sizes_compose() {
        let seg = TcpSegment {
            src_port: 80,
            dst_port: 1,
            seq: 0,
            ack: 0,
            window: 0,
            flags: TcpFlags::ACK,
            payload_len: 1000,
        };
        let pkt = Ipv4Packet {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            payload: L4::Tcp(seg),
        };
        assert_eq!(pkt.wire_size(), 20 + 20 + 1000);

        let ping = Ipv4Packet {
            src: Ipv4Addr::new(10, 0, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            payload: L4::Icmp(IcmpMessage::EchoRequest { id: 1, seq: 1 }),
        };
        assert_eq!(ping.wire_size(), 20 + 64);

        let dhcp = Ipv4Packet {
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::BROADCAST,
            payload: L4::Dhcp(DhcpMessage::discover(1, MacAddr::from_id(1))),
        };
        assert_eq!(dhcp.wire_size(), 20 + 330);
    }
}
