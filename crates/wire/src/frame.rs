//! 802.11 frames.
//!
//! The subset of 802.11 the Spider system exercises: beacons and probes
//! (scanning), the authentication + association handshake (the paper's
//! "link-layer join"), power-save signalling (how a virtualised client
//! parks an AP while it serves another), deauthentication, and data
//! frames carrying IPv4.

use crate::addr::{MacAddr, Ssid};
use crate::channel::Channel;
use crate::ip::Ipv4Packet;
use spider_simcore::SimDuration;

/// Coarse 802.11 frame classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Beacons, probes, auth, assoc, deauth.
    Management,
    /// PS-Poll (and in real 802.11, ACK/RTS/CTS, which the PHY models
    /// implicitly as per-frame overhead).
    Control,
    /// Data frames (including null data frames used for PSM signalling).
    Data,
}

/// Body of an 802.11 frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameBody {
    /// Periodic AP advertisement.
    Beacon {
        /// Network name.
        ssid: Ssid,
        /// The channel the AP operates on (as advertised in the DS
        /// parameter set).
        channel: Channel,
        /// Beacon interval (typically ~102.4 ms).
        interval: SimDuration,
    },
    /// Active-scan solicitation; `ssid: None` is a wildcard probe.
    ProbeRequest {
        /// Specific network probed for, or `None` for broadcast.
        ssid: Option<Ssid>,
    },
    /// Unicast answer to a probe request.
    ProbeResponse {
        /// Network name.
        ssid: Ssid,
        /// Operating channel.
        channel: Channel,
    },
    /// Open-system authentication request (first half of the link-layer
    /// join's first handshake).
    AuthRequest,
    /// Authentication response.
    AuthResponse {
        /// Whether authentication succeeded.
        ok: bool,
    },
    /// Association request (second handshake of the join).
    AssocRequest {
        /// Network being joined.
        ssid: Ssid,
    },
    /// Association response.
    AssocResponse {
        /// Whether association succeeded.
        ok: bool,
        /// Association id assigned by the AP.
        aid: u16,
    },
    /// Deauthentication / disassociation notice.
    Deauth {
        /// 802.11 reason code.
        reason: u16,
    },
    /// Null data frame; `power_save: true` tells the AP to buffer
    /// frames for this client (how Spider parks APs while off serving
    /// another channel, §3.2.1).
    Null {
        /// The PS bit in the frame control field.
        power_save: bool,
    },
    /// PS-Poll control frame: "I'm back, release my buffered frames."
    PsPoll,
    /// A data frame carrying an IPv4 packet.
    Data {
        /// The encapsulated packet.
        packet: Ipv4Packet,
        /// The AP sets this when more frames remain buffered for the
        /// client (802.11 "More Data" bit).
        more_data: bool,
    },
}

/// A frame shared between simulation events without deep copies.
///
/// Broadcast fan-out delivers the *same* frame to every in-range
/// station; wrapping it in an `Arc` once and handing each recipient a
/// reference-count bump keeps delivery O(recipients) in pointer copies
/// instead of O(recipients) in payload clones. Receivers only ever read
/// frames, so shared immutable access is exactly the right model.
pub type SharedFrame = std::sync::Arc<Frame>;

/// A frame travelling through the air as a simulation event payload.
///
/// Broadcast fan-out (beacons, broadcast probes) mints one [`SharedFrame`]
/// and hands each recipient a reference-count bump. Unicast traffic has
/// exactly one recipient, so the `Arc` round trip (allocate refcount
/// block, bump, drop) is pure overhead on the data-frame hot path —
/// those frames ride inline as a `Box` instead. The box keeps the event
/// payload pointer-sized either way (the event queue copies its elements
/// around, so bulky payloads stay boxed — see `workloads::world::Ev`).
#[derive(Debug, Clone)]
pub enum AirFrame {
    /// One frame delivered to many stations (broadcast fan-out).
    Shared(SharedFrame),
    /// One frame delivered to exactly one station (unicast).
    Owned(Box<Frame>),
}

impl AirFrame {
    /// Wrap a frame for single-recipient delivery.
    pub fn owned(frame: Frame) -> Self {
        AirFrame::Owned(Box::new(frame))
    }
}

impl std::ops::Deref for AirFrame {
    type Target = Frame;
    fn deref(&self) -> &Frame {
        match self {
            AirFrame::Shared(f) => f,
            AirFrame::Owned(f) => f,
        }
    }
}

impl From<SharedFrame> for AirFrame {
    fn from(f: SharedFrame) -> Self {
        AirFrame::Shared(f)
    }
}

impl From<Frame> for AirFrame {
    fn from(f: Frame) -> Self {
        AirFrame::owned(f)
    }
}

/// A full 802.11 frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Transmitter address.
    pub src: MacAddr,
    /// Receiver address (may be broadcast).
    pub dst: MacAddr,
    /// BSSID the frame belongs to. For beacons/probe responses this is
    /// the AP's address; for broadcast probes it is the broadcast
    /// address.
    pub bssid: MacAddr,
    /// Frame body.
    pub body: FrameBody,
}

/// 802.11 MAC header size (3-address format).
const MAC_HEADER: usize = 24;
/// Fixed beacon body: timestamp (8) + interval (2) + capabilities (2) +
/// DS parameter (3) + supported rates (~10).
const BEACON_FIXED: usize = 25;

impl Frame {
    /// Coarse class of this frame.
    pub fn kind(&self) -> FrameKind {
        match self.body {
            FrameBody::Beacon { .. }
            | FrameBody::ProbeRequest { .. }
            | FrameBody::ProbeResponse { .. }
            | FrameBody::AuthRequest
            | FrameBody::AuthResponse { .. }
            | FrameBody::AssocRequest { .. }
            | FrameBody::AssocResponse { .. }
            | FrameBody::Deauth { .. } => FrameKind::Management,
            FrameBody::PsPoll => FrameKind::Control,
            FrameBody::Null { .. } | FrameBody::Data { .. } => FrameKind::Data,
        }
    }

    /// Whether the frame belongs to the link-layer join handshake.
    pub fn is_join_management(&self) -> bool {
        matches!(
            self.body,
            FrameBody::AuthRequest
                | FrameBody::AuthResponse { .. }
                | FrameBody::AssocRequest { .. }
                | FrameBody::AssocResponse { .. }
        )
    }

    /// Total size on the wire in bytes, used for airtime computation.
    pub fn wire_size(&self) -> usize {
        let body = match &self.body {
            FrameBody::Beacon { ssid, .. } => BEACON_FIXED + 2 + ssid.wire_len(),
            FrameBody::ProbeRequest { ssid } => {
                2 + ssid.as_ref().map(Ssid::wire_len).unwrap_or(0) + 10
            }
            FrameBody::ProbeResponse { ssid, .. } => BEACON_FIXED + 2 + ssid.wire_len(),
            FrameBody::AuthRequest | FrameBody::AuthResponse { .. } => 6,
            FrameBody::AssocRequest { ssid } => 4 + 2 + ssid.wire_len() + 10,
            FrameBody::AssocResponse { .. } => 6,
            FrameBody::Deauth { .. } => 2,
            FrameBody::Null { .. } => 0,
            FrameBody::PsPoll => return 16, // short control frame, no body
            FrameBody::Data { packet, .. } => 8 /* LLC/SNAP */ + packet.wire_size(),
        };
        MAC_HEADER + body + 4 /* FCS */
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::icmp::IcmpMessage;
    use crate::ip::L4;

    fn mk(body: FrameBody) -> Frame {
        Frame {
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            bssid: MacAddr::from_id(2),
            body,
        }
    }

    #[test]
    fn kinds() {
        assert_eq!(
            mk(FrameBody::Beacon {
                ssid: "x".into(),
                channel: Channel::CH6,
                interval: SimDuration::from_millis(102)
            })
            .kind(),
            FrameKind::Management
        );
        assert_eq!(mk(FrameBody::PsPoll).kind(), FrameKind::Control);
        assert_eq!(
            mk(FrameBody::Null { power_save: true }).kind(),
            FrameKind::Data
        );
    }

    #[test]
    fn join_management_classification() {
        assert!(mk(FrameBody::AuthRequest).is_join_management());
        assert!(mk(FrameBody::AssocResponse { ok: true, aid: 1 }).is_join_management());
        assert!(!mk(FrameBody::ProbeRequest { ssid: None }).is_join_management());
        assert!(!mk(FrameBody::PsPoll).is_join_management());
    }

    #[test]
    fn wire_sizes_are_plausible() {
        // A beacon with an 8-byte SSID: 24 + 25 + 2 + 8 + 4 = 63.
        let b = mk(FrameBody::Beacon {
            ssid: "townwifi".into(),
            channel: Channel::CH1,
            interval: SimDuration::from_millis(102),
        });
        assert_eq!(b.wire_size(), 63);

        // Null frame is header + FCS only.
        assert_eq!(mk(FrameBody::Null { power_save: true }).wire_size(), 28);

        // PS-Poll is a short control frame.
        assert_eq!(mk(FrameBody::PsPoll).wire_size(), 16);

        // Data: 24 + 4 + 8 + 20 + 64 = 120 for a ping.
        let d = mk(FrameBody::Data {
            packet: Ipv4Packet {
                src: Ipv4Addr::new(10, 0, 0, 2),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                payload: L4::Icmp(IcmpMessage::EchoRequest { id: 1, seq: 1 }),
            },
            more_data: false,
        });
        assert_eq!(d.wire_size(), 24 + 8 + 20 + 64 + 4);
    }
}
