//! A token-bucket rate limiter in simulated time.
//!
//! Used to model AP backhaul links: the paper shapes each AP's backhaul
//! with a traffic shaper (§4.2, Fig. 10), and mobile measurements showed
//! backhaul — not the air — is usually the bottleneck.

use crate::time::{SimDuration, SimTime};

/// A token bucket: `rate` tokens/second refill up to a burst of
/// `capacity` tokens. One token corresponds to one byte in backhaul
/// modelling.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Create a bucket that refills at `rate_per_sec` tokens/second with a
    /// maximum burst of `capacity` tokens, starting full at `now`.
    pub fn new(now: SimTime, rate_per_sec: f64, capacity: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(capacity > 0.0, "capacity must be positive");
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
        self.last_refill = self.last_refill.max(now);
    }

    /// Try to consume `amount` tokens at `now`; returns whether they were
    /// available.
    pub fn try_consume(&mut self, now: SimTime, amount: f64) -> bool {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// Time from `now` until `amount` tokens will be available (zero if
    /// they already are). Does not consume.
    pub fn time_until_available(&mut self, now: SimTime, amount: f64) -> SimDuration {
        self.refill(now);
        if self.tokens >= amount {
            return SimDuration::ZERO;
        }
        let deficit = amount - self.tokens;
        SimDuration::from_secs_f64(deficit / self.rate_per_sec)
    }

    /// Tokens currently available at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The configured refill rate (tokens/second).
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(SimTime::ZERO, 1000.0, 500.0);
        assert!(b.try_consume(SimTime::ZERO, 500.0));
        assert!(!b.try_consume(SimTime::ZERO, 1.0));
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(SimTime::ZERO, 1000.0, 500.0);
        assert!(b.try_consume(SimTime::ZERO, 500.0));
        // After 100ms, 100 tokens refilled.
        let t = SimTime::from_millis(100);
        assert!(b.try_consume(t, 100.0));
        assert!(!b.try_consume(t, 1.0));
    }

    #[test]
    fn capacity_caps_refill() {
        let mut b = TokenBucket::new(SimTime::ZERO, 1000.0, 500.0);
        let t = SimTime::from_secs(100);
        assert!((b.available(t) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn time_until_available_is_exact() {
        let mut b = TokenBucket::new(SimTime::ZERO, 1000.0, 500.0);
        assert!(b.try_consume(SimTime::ZERO, 500.0));
        let wait = b.time_until_available(SimTime::ZERO, 250.0);
        assert_eq!(wait, SimDuration::from_millis(250));
        let ready = SimTime::ZERO + wait;
        assert!(b.try_consume(ready, 250.0));
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// A bucket never yields more tokens over an interval than
        /// capacity + rate * elapsed (conservation).
        #[test]
        fn conservation(rate in 1.0f64..1e6, cap in 1.0f64..1e6,
                        draws in prop::collection::vec((0u64..10_000, 0.0f64..1e4), 1..100)) {
            let mut b = TokenBucket::new(SimTime::ZERO, rate, cap);
            let mut now_us = 0u64;
            let mut consumed = 0.0;
            for (dt, amount) in draws {
                now_us += dt;
                if b.try_consume(SimTime::from_micros(now_us), amount) {
                    consumed += amount;
                }
            }
            let budget = cap + rate * (now_us as f64 / 1e6) + 1e-6;
            prop_assert!(consumed <= budget, "consumed {} > budget {}", consumed, budget);
        }
        }
    }
}
