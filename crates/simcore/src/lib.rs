//! Discrete-event simulation kernel for the Spider reproduction.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with FIFO tie-breaking,
//! * [`SimRng`] — seeded, stream-splittable random number generation so a
//!   whole experiment is a pure function of one `u64` seed,
//! * statistics helpers ([`OnlineStats`], [`Cdf`], [`IntervalTracker`],
//!   [`RateMeter`]) used by the evaluation harness,
//! * [`TokenBucket`] — a rate limiter in simulated time, used to model AP
//!   backhaul links.
//!
//! The design follows the "sans-IO" idiom: nothing here performs real I/O
//! or reads wall-clock time, which keeps every simulation fully
//! deterministic and unit-testable.

#![forbid(unsafe_code)]

pub mod bucket;
pub mod event;
pub mod hashing;
pub mod json;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod time;

pub use bucket::TokenBucket;
pub use event::{EventQueue, ScheduledEvent};
pub use hashing::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::{Json, JsonError};
pub use rng::{Derivation, SimRng};
pub use stats::{Cdf, IntervalReport, IntervalTracker, OnlineStats, RateMeter};
pub use sweep::{
    forked_sweep, forked_sweep_tree, forked_sweep_tree_with, forked_sweep_with, grow_tree_with,
    sweep, sweep_with, try_sweep, try_sweep_with, worker_count, JobFailure, SweepOptions,
    SweepReport,
};
pub use time::{SimDuration, SimTime};
