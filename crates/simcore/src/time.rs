//! Simulated time.
//!
//! Time is measured in integer microseconds since the start of the
//! simulation. Microsecond resolution is fine enough to represent 802.11
//! inter-frame spacings (SIFS = 10 µs) while keeping arithmetic exact —
//! floating point time is a classic source of non-determinism in network
//! simulators.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for wakeups that are not currently scheduled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds, saturating at [`SimTime::MAX`].
    /// Saturation (rather than wrap) keeps an absurd config value pinned
    /// at the far-future sentinel instead of silently landing in the
    /// middle of a run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Construct from whole seconds, saturating at [`SimTime::MAX`].
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Construct from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration (does not wrap past [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds, saturating at [`SimDuration::MAX`]
    /// (see [`SimTime::from_millis`] for why saturation).
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Construct from whole seconds, saturating at [`SimDuration::MAX`].
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Construct from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimDuration cannot be negative: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(400).as_micros(), 400_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d).as_micros(), 150_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(150));
        assert_eq!(d / 2, SimDuration::from_millis(25));
        assert!(
            (SimDuration::from_millis(100) / SimDuration::from_millis(400) - 0.25).abs() < 1e-12
        );
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(10));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn fractional_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_millis_f64(), 500.0);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(250));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        // A u64::MAX-seconds config is nonsense, but it must pin to the
        // far-future sentinel, not wrap into the middle of a run.
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration::MAX);
        // The largest exactly-representable inputs still convert exactly.
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000).as_micros(),
            (u64::MAX / 1_000_000) * 1_000_000
        );
    }

    #[test]
    fn float_constructors_saturate() {
        // Rust float→int casts saturate; huge configs pin to MAX.
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(1).mul_f64(1e30), SimDuration::MAX);
    }

    #[test]
    #[should_panic]
    fn nan_scale_panics() {
        let _ = SimDuration::from_secs(1).mul_f64(f64::NAN);
    }

    // Overflow in the raw Add/Sub/Mul operators is a simulator bug, not
    // saturation territory: `overflow-checks = true` in the dev and test
    // profiles (workspace Cargo.toml) turns it into a panic. These
    // regressions pin that behaviour wherever checks are armed.
    #[cfg(debug_assertions)]
    mod overflow_panics {
        use super::*;

        #[test]
        #[should_panic]
        fn time_plus_duration_overflow() {
            let _ = SimTime::MAX + SimDuration::from_micros(1);
        }

        #[test]
        #[should_panic]
        fn time_minus_duration_underflow() {
            let _ = SimTime::ZERO - SimDuration::from_micros(1);
        }

        #[test]
        #[should_panic]
        fn instant_difference_underflow() {
            let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
        }

        #[test]
        #[should_panic]
        fn duration_sum_overflow() {
            let _ = SimDuration::MAX + SimDuration::from_micros(1);
        }

        #[test]
        #[should_panic]
        fn duration_scale_overflow() {
            let _ = SimDuration::MAX * 2;
        }
    }
}
