//! Hand-rolled JSON: a value tree, a writer, and a parser.
//!
//! Campaign artifacts — minimized failing fault schedules, SLO
//! reports, per-run summaries — need to live on disk as *diffable*
//! files that replay bit-identically. The workspace builds offline (no
//! serde), so this module is the serialization layer: a few hundred
//! lines covering exactly the JSON subset the artifacts use.
//!
//! Round-trip guarantees, because replays depend on them:
//!
//! * integers up to `u64::MAX` are emitted verbatim and parsed back
//!   exactly (no `f64` round trip — [`Json::UInt`] is its own arm);
//! * `f64`s are emitted with Rust's shortest-round-trip `Display`, so
//!   `parse(emit(x)) == x` bit-for-bit for every finite float — this is
//!   what makes a serialized `LossBurst { extra }` replay exactly;
//! * object keys keep insertion order (no hashing anywhere), so
//!   emitting the same value twice yields identical bytes.
//!
//! Non-goals: unicode escapes beyond the mandatory set, arbitrary
//! precision, streaming. Artifacts are small and ASCII.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without decimal point).
    UInt(u64),
    /// A float (emitted via shortest-round-trip `Display`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object (`None` for non-objects / missing).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; may lose precision above
    /// 2^53, which is why times serialize as [`Json::UInt`] microseconds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline —
    /// the diff-friendly artifact format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                use fmt::Write;
                if x.is_finite() {
                    // Rust's f64 Display is shortest-round-trip; force a
                    // decimal point so the parser reads it back as Num.
                    let s = format!("{x}");
                    let _ = write!(out, "{s}");
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/inf; artifacts never contain them
                    // (the validate layer guards simulation outputs).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a descriptive error with a byte
    /// offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing garbage after document".into(),
            });
        }
        Ok(value)
    }
}

/// A parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset: pos,
        message: message.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "\\u escape not a scalar value"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this
                // is always well-formed).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if !fractional {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Num(1.5),
            Json::Num(-0.25),
            Json::Str("hello \"world\"\n\t\\".into()),
            Json::Str("unicode: λ → ∞".into()),
        ] {
            let text = v.pretty();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_max_survives_without_float_damage() {
        let text = Json::UInt(u64::MAX).pretty();
        assert_eq!(text.trim(), "18446744073709551615");
        assert_eq!(
            Json::parse(&text).unwrap().as_u64(),
            Some(u64::MAX),
            "must not detour through f64"
        );
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        // Shortest-round-trip Display + std parse: exact for every
        // finite double. Probe awkward values.
        let mut rng_state = 0x1234_5678_9abc_def0u64;
        let mut cases = vec![
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1e-300,
            2.225e-308,
            0.3 + 0.3 + 0.3,
        ];
        for _ in 0..200 {
            // xorshift-ish bits reinterpreted as a double, filtered to
            // finite values.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let x = f64::from_bits(rng_state);
            if x.is_finite() {
                cases.push(x);
            }
        }
        for x in cases {
            let text = Json::Num(x).pretty();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::str("campaign")),
            ("trials", Json::UInt(32)),
            (
                "episodes",
                Json::arr([
                    Json::obj([
                        ("kind", Json::str("loss-burst")),
                        ("extra", Json::Num(0.3217)),
                    ]),
                    Json::Null,
                ]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::Obj(Vec::new())),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn emission_is_deterministic() {
        let v = Json::obj([("b", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.pretty(), v.clone().pretty());
        // Key order is insertion order, not sorted.
        assert!(v.pretty().find("\"b\"").unwrap() < v.pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("x", Json::UInt(7)), ("s", Json::str("y"))]);
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("y"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::arr([Json::Null]).as_arr().map(<[Json]>::len), Some(1));
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"unterminated", "nul", "1.2.3", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_compact_forms() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , null ] } ").unwrap();
        assert_eq!(
            v,
            Json::obj([("a", Json::arr([Json::UInt(1), Json::Num(2.5), Json::Null]))])
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(Vec::new()));
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_num() {
        assert_eq!(Json::parse("-4").unwrap(), Json::Num(-4.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }
}
