//! A deterministic timestamped event queue.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-breaking via a monotonically increasing
//! sequence number). This makes simulation runs reproducible regardless of
//! how the queue's internal layout happens to order equal keys.
//!
//! # Implementation: a calendar queue
//!
//! The queue is the hottest container in the engine — a dense run pushes
//! and pops millions of events — so it is a *calendar queue* (a timing
//! wheel over absolute simulated time) rather than a binary heap. Time is
//! divided into fixed-width buckets; an event lands in the bucket its
//! timestamp falls into, and `pop` drains the wheel bucket by bucket.
//! Because simulation events overwhelmingly fire within milliseconds of
//! being scheduled (beacon intervals, MAC timers, backhaul latencies),
//! buckets hold only a handful of events each: a push is an O(1) append
//! and a pop is a short scan of one tiny bucket, where a heap pays a
//! multi-level sift through scattered cache lines on every operation.
//!
//! Events further ahead than one wheel revolution simply stay in their
//! bucket across laps; the drain loop skips anything outside the current
//! bucket's time window, so a long-horizon timer is rescanned once per
//! lap until its lap arrives. Such events are rare (housekeeping and
//! lease timers), which keeps the amortised cost flat.
//!
//! # Determinism
//!
//! `pop` always removes the entry minimising the key `(at, seq)`, and
//! that key is **total and unique** (`seq` never repeats). The pop
//! sequence is therefore fully determined by the schedule calls alone —
//! bucket layout, scan order, and `swap_remove` shuffling can never leak
//! into observable order.

use crate::time::SimTime;
use std::cmp::Ordering;

/// An event of type `E` scheduled to fire at [`ScheduledEvent::at`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling sequence number; earlier-scheduled events with the same
    /// timestamp fire first.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: convenient for max-heap containers that want
        // the earliest event (lowest time, then lowest seq) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the bucket width in microseconds (512 µs). Chosen so the mean
/// inter-event gap of a dense simulation (~400 µs) advances the wheel by
/// roughly one bucket per pop, and a bucket holds one or two events.
const BUCKET_SHIFT: u64 = 9;

/// Number of buckets in the wheel (must be a power of two). One
/// revolution spans `1024 × 512 µs ≈ 0.5 s` of simulated time, which
/// covers almost every scheduling horizon the simulator uses.
const NUM_BUCKETS: usize = 1024;

const BUCKET_MASK: u64 = (NUM_BUCKETS as u64) - 1;

/// A deterministic event queue (see the module docs for the calendar-
/// queue design and the determinism argument).
///
/// ```
/// use spider_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// q.schedule(SimTime::from_millis(10), "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().event, "c");
/// ```
// Clone is the checkpoint/fork hook (DESIGN.md §13): a cloned queue
// carries the full wheel — cursor, pending events, `next_seq`, and the
// causality clock — so a forked world replays the exact `(at, seq)` pop
// sequence the original would have produced.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The wheel. `buckets[(at_µs >> BUCKET_SHIFT) & BUCKET_MASK]` holds
    /// every pending event whose timestamp maps there, from any lap.
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// The bucket window currently being drained, as an absolute bucket
    /// number (`at_µs >> BUCKET_SHIFT`, *not* masked). Invariant: no
    /// pending event fires before this window opens.
    cursor: u64,
    /// Pending event count.
    len: usize,
    next_seq: u64,
    last_popped: SimTime,
    /// Key of the most recently popped event. The pop sequence must be
    /// strictly increasing in `(at, seq)`; anything else means bucket
    /// bookkeeping has corrupted the total order (DESIGN.md §11).
    #[cfg(feature = "validate")]
    last_popped_key: Option<(SimTime, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            #[cfg(feature = "validate")]
            last_popped_key: None,
        }
    }

    /// Create an empty queue sized for roughly `capacity` pending events.
    /// Worlds that know their steady-state event population (beacons in
    /// flight, pending downlinks, timers) pre-size the buckets once
    /// instead of growing them in the hot loop.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_bucket = capacity / NUM_BUCKETS + usize::from(capacity > 0);
        EventQueue {
            buckets: (0..NUM_BUCKETS)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            cursor: 0,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
            #[cfg(feature = "validate")]
            last_popped_key: None,
        }
    }

    /// Schedule `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the timestamp of the last event
    /// popped — scheduling into the past would violate causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.last_popped,
            "event scheduled into the past: {} < {}",
            at,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = ((at.as_micros() >> BUCKET_SHIFT) & BUCKET_MASK) as usize;
        self.buckets[idx].push(ScheduledEvent { at, seq, event });
        self.len += 1;
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // The current bucket's half-open time window ends where the
            // next bucket's begins; events in this bucket from a future
            // lap fall outside it and are skipped.
            let window_end = SimTime::from_micros((self.cursor + 1) << BUCKET_SHIFT);
            let bucket = &mut self.buckets[(self.cursor & BUCKET_MASK) as usize];
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in bucket.iter().enumerate() {
                if e.at < window_end && best.is_none_or(|(_, at, seq)| (e.at, e.seq) < (at, seq)) {
                    best = Some((i, e.at, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                // swap_remove is fine: selection is by the unique
                // (at, seq) key, never by position.
                let ev = bucket.swap_remove(i);
                self.len -= 1;
                self.last_popped = ev.at;
                #[cfg(feature = "validate")]
                {
                    let key = (ev.at, ev.seq);
                    assert!(
                        self.last_popped_key.is_none_or(|prev| key > prev),
                        "event queue popped out of order: ({}, seq {}) after {:?}",
                        ev.at,
                        ev.seq,
                        self.last_popped_key,
                    );
                    self.last_popped_key = Some(key);
                }
                return Some(ev);
            }
            self.cursor += 1;
        }
    }

    /// Remove and return the earliest event if it fires at or before
    /// `limit`; otherwise leave the queue untouched and return `None`.
    ///
    /// This is the bounded form of [`pop`](Self::pop) used by
    /// checkpointing: a world drains everything up to a snapshot point
    /// with `pop_before`, clones itself, and either copy can resume with
    /// plain `pop` — the wheel cursor only ever advances past windows
    /// proven empty, so the remaining pop sequence is identical to an
    /// uninterrupted run's.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Invariant: no pending event fires before the cursor's
            // window opens, so once the window starts after `limit` no
            // pending event can fire at or before it.
            let window_start = SimTime::from_micros(self.cursor << BUCKET_SHIFT);
            if window_start > limit {
                return None;
            }
            let window_end = SimTime::from_micros((self.cursor + 1) << BUCKET_SHIFT);
            let bucket = &mut self.buckets[(self.cursor & BUCKET_MASK) as usize];
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in bucket.iter().enumerate() {
                if e.at < window_end && best.is_none_or(|(_, at, seq)| (e.at, e.seq) < (at, seq)) {
                    best = Some((i, e.at, e.seq));
                }
            }
            if let Some((i, at, _)) = best {
                // The best event in the open window is the global
                // minimum (later windows hold strictly later events), so
                // if it fires after `limit` nothing eligible remains.
                // Leave it in place for a future `pop`.
                if at > limit {
                    return None;
                }
                let ev = bucket.swap_remove(i);
                self.len -= 1;
                self.last_popped = ev.at;
                #[cfg(feature = "validate")]
                {
                    let key = (ev.at, ev.seq);
                    assert!(
                        self.last_popped_key.is_none_or(|prev| key > prev),
                        "event queue popped out of order: ({}, seq {}) after {:?}",
                        ev.at,
                        ev.seq,
                        self.last_popped_key,
                    );
                    self.last_popped_key = Some(key);
                }
                return Some(ev);
            }
            self.cursor += 1;
        }
    }

    /// Timestamp of the earliest pending event.
    ///
    /// O(pending) — the calendar layout has no cheap global minimum.
    /// The simulator's hot loop never peeks (it pops), so this is only
    /// used by diagnostics and tests.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .flatten()
            .map(|e| (e.at, e.seq))
            .min()
            .map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Timestamp of the most recently popped event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drop every pending event and rewind the clock to t=0 (used when
    /// resetting a world between experiment repetitions without
    /// reallocating). Without the rewind, a reused queue would inherit
    /// the previous run's `now()` and reject perfectly valid schedules
    /// at the start of the next repetition as "into the past".
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
        self.len = 0;
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
        #[cfg(feature = "validate")]
        {
            self.last_popped_key = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(10), 2);
        q.schedule(SimTime::from_micros(40), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(2), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn rejects_causality_violation() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), 'x');
        q.schedule(SimTime::from_millis(3), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_the_clock_for_reuse() {
        // Regression: `clear()` used to leave `last_popped` at the old
        // run's final timestamp, so re-scheduling from t=0 on a reused
        // queue panicked with a spurious causality violation.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), ());
        q.pop();
        q.clear();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(1), ()); // must not panic
        assert_eq!(q.pop().unwrap().at, SimTime::from_millis(1));
        // Sequence numbers restart too, keeping reruns bit-identical.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(1), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn events_beyond_one_wheel_revolution() {
        // One revolution spans NUM_BUCKETS << BUCKET_SHIFT microseconds;
        // events several laps out must still come back in global order.
        let lap_us = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(3 * lap_us + 17), "far");
        q.schedule(SimTime::from_micros(17), "near"); // same bucket, lap 0
        q.schedule(SimTime::from_micros(lap_us + 17), "mid");
        assert_eq!(q.pop().unwrap().event, "near");
        assert_eq!(q.pop().unwrap().event, "mid");
        assert_eq!(q.pop().unwrap().event, "far");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_before_respects_the_limit_and_resumes() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(5), 5);
        q.schedule(SimTime::from_millis(5), 6);
        q.schedule(SimTime::from_secs(2), 9); // several laps ahead
        let limit = SimTime::from_millis(5);
        let drained: Vec<i32> =
            std::iter::from_fn(|| q.pop_before(limit).map(|e| e.event)).collect();
        assert_eq!(drained, vec![1, 5, 6]);
        assert_eq!(q.len(), 1);
        // A later event stays queued and comes out of a plain pop.
        assert_eq!(q.pop().unwrap().event, 9);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_before_limit_inside_a_bucket_window() {
        // Two events share a bucket; the limit falls between them. The
        // later one must survive in place, not be skipped past.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "early");
        q.schedule(SimTime::from_micros(200), "late"); // same 512 µs bucket
        assert_eq!(
            q.pop_before(SimTime::from_micros(150)).unwrap().event,
            "early"
        );
        assert_eq!(q.pop_before(SimTime::from_micros(150)), None);
        assert_eq!(q.pop().unwrap().event, "late");
    }

    #[test]
    fn cloned_queue_replays_the_same_pop_sequence() {
        let mut q = EventQueue::new();
        let lap_us = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        for (i, at) in [17u64, 17, 900, lap_us + 17, 3 * lap_us + 4]
            .into_iter()
            .enumerate()
        {
            q.schedule(SimTime::from_micros(at), i);
        }
        // Drain a prefix so the clone carries a mid-run cursor and clock.
        q.pop_before(SimTime::from_micros(1_000));
        let mut fork = q.clone();
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| (e.at, e.seq, e.event))).collect();
        let forked: Vec<_> =
            std::iter::from_fn(|| fork.pop().map(|e| (e.at, e.seq, e.event))).collect();
        assert_eq!(rest, forked);
        // Fresh schedules on the fork continue the same seq stream.
        fork.clear();
        q.clear();
        q.schedule(SimTime::from_millis(1), 99);
        fork.schedule(SimTime::from_millis(1), 99);
        assert_eq!(q.pop().unwrap().seq, fork.pop().unwrap().seq);
    }

    #[test]
    fn interleaved_schedule_and_pop_matches_reference() {
        // Differential test against a sorted-vec reference model, with
        // schedules interleaved between pops the way the simulator does
        // it (every dispatched event schedules follow-ups near `now`).
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (at_µs, seq)
        let mut seq = 0u64;
        let mut t = 0u64;
        // Deterministic pseudo-random walk (no external RNG needed).
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut step = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for _ in 0..64 {
            let at = t + step(2_000_000); // up to 2 s ahead (several laps)
            q.schedule(SimTime::from_micros(at), seq);
            reference.push((at, seq));
            seq += 1;
        }
        while let Some(ev) = q.pop() {
            reference.sort_unstable();
            let (at, s) = reference.remove(0);
            assert_eq!((ev.at.as_micros(), ev.seq), (at, s));
            assert_eq!(ev.event, s);
            t = at;
            // Sometimes schedule follow-ups relative to the popped time.
            if step(3) == 0 {
                for _ in 0..step(4) {
                    let at = t + step(300_000);
                    q.schedule(SimTime::from_micros(at), seq);
                    reference.push((at, seq));
                    seq += 1;
                }
            }
        }
        assert!(reference.is_empty());
    }

    /// The validate-build pop-order guard must demonstrably fire. The
    /// only way to violate the total order from safe code is to corrupt
    /// internal state, which only this module can do.
    #[cfg(feature = "validate")]
    #[test]
    #[should_panic(expected = "popped out of order")]
    fn validate_guard_catches_out_of_order_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        // Pretend a later event was already popped.
        q.last_popped_key = Some((SimTime::from_secs(1), u64::MAX));
        q.pop();
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Popping always yields a non-decreasing time sequence, and events
        /// scheduled at identical instants come out in scheduling order.
        #[test]
        fn pop_order_is_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut prev_time = SimTime::ZERO;
            let mut prev_seq_at_time: Option<usize> = None;
            while let Some(ev) = q.pop() {
                prop_assert!(ev.at >= prev_time);
                if ev.at == prev_time {
                    if let Some(ps) = prev_seq_at_time {
                        prop_assert!(ev.event > ps, "FIFO violated among equal timestamps");
                    }
                } else {
                    prev_time = ev.at;
                }
                prev_seq_at_time = Some(ev.event);
            }
        }
        }
    }
}
