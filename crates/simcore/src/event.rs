//! A deterministic timestamped event queue.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-breaking via a monotonically increasing
//! sequence number). This makes simulation runs reproducible regardless of
//! how the underlying binary heap happens to order equal keys.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of type `E` scheduled to fire at [`ScheduledEvent::at`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling sequence number; earlier-scheduled events with the same
    /// timestamp fire first.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap but we want the
        // earliest event (lowest time, then lowest seq) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue.
///
/// ```
/// use spider_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// q.schedule(SimTime::from_millis(10), "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().event, "c");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the timestamp of the last event
    /// popped — scheduling into the past would violate causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.last_popped,
            "event scheduled into the past: {} < {}",
            at,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop();
        if let Some(ev) = &ev {
            self.last_popped = ev.at;
        }
        ev
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the most recently popped event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drop every pending event (used when resetting a world between
    /// experiment repetitions without reallocating).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(10), 2);
        q.schedule(SimTime::from_micros(40), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(2), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn rejects_causality_violation() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), 'x');
        q.schedule(SimTime::from_millis(3), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// Popping always yields a non-decreasing time sequence, and events
        /// scheduled at identical instants come out in scheduling order.
        #[test]
        fn pop_order_is_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut prev_time = SimTime::ZERO;
            let mut prev_seq_at_time: Option<usize> = None;
            while let Some(ev) = q.pop() {
                prop_assert!(ev.at >= prev_time);
                if ev.at == prev_time {
                    if let Some(ps) = prev_seq_at_time {
                        prop_assert!(ev.event > ps, "FIFO violated among equal timestamps");
                    }
                } else {
                    prev_time = ev.at;
                }
                prev_seq_at_time = Some(ev.event);
            }
        }
        }
    }
}
