//! Deterministic, stream-splittable random number generation.
//!
//! Every experiment in this repository is a pure function of a single
//! `u64` seed. To keep independent parts of a simulation statistically
//! independent *and* insensitive to each other's consumption order, a
//! [`SimRng`] can be split into named sub-streams: drawing more numbers in
//! the "mobility" stream never perturbs the "dhcp" stream.
//!
//! The generator is an inline implementation of **xoshiro256++** seeded
//! through SplitMix64 (the construction its authors recommend). Owning the
//! generator keeps the bit stream — and therefore every simulation result
//! recorded in `EXPERIMENTS.md` — stable across dependency upgrades, and
//! makes the generator `Clone` so simulation state can be snapshotted.
//!
//! Every stream additionally records its **derivation path** — the root
//! seed plus the chain of `stream`/`stream_indexed` hops that produced
//! it — so a snapshotted stream can be re-derived under a different root
//! seed with [`SimRng::rebase_seed`]. That is what lets a constructed
//! `World` be forked into an N-seed fan instead of being rebuilt N times
//! (DESIGN.md §13). Rebasing is only sound **before the first draw**: a
//! stream that has stepped carries state that is a function of the old
//! seed *and* of how much was drawn, and there is no way to replay the
//! draws under the new seed without rerunning the consumer. Debug and
//! `validate` builds therefore track a per-stream drawn flag and panic on
//! a late rebase; plain release builds omit the flag so the hot path
//! stays at the measured engine floor.

/// Maximum recorded stream-derivation depth. Derivation chains in this
/// workspace are at most `root → stream → stream_indexed`; the inline
/// array keeps [`SimRng`] allocation-free (worlds clone per-AP streams
/// at every fork).
const MAX_DERIVATION_HOPS: usize = 4;

/// The recorded derivation path of a [`SimRng`]: the root seed plus the
/// `stream`/`stream_indexed` hop chain that produced the stream's seed.
///
/// Replaying the chain from [`Derivation::root_seed`] reproduces the
/// stream's seed bit-exactly; replaying it from a *different* root is
/// exactly [`SimRng::rebase_seed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Derivation {
    root: u64,
    /// `(label hash, mixed index)` per hop. The mixed index is
    /// `splitmix64(index + 1)` for `stream_indexed` and `0` for
    /// `stream` — XOR with zero is the identity, so both hop kinds
    /// replay through the single formula in [`Derivation::derived_seed`].
    hops: [(u64, u64); MAX_DERIVATION_HOPS],
    depth: u8,
}

impl Derivation {
    /// A depth-zero derivation: the stream *is* the root.
    fn root(seed: u64) -> Derivation {
        Derivation {
            root: seed,
            hops: [(0, 0); MAX_DERIVATION_HOPS],
            depth: 0,
        }
    }

    /// Extend the chain by one hop.
    fn child(mut self, label_hash: u64, index_mix: u64) -> Derivation {
        assert!(
            (self.depth as usize) < MAX_DERIVATION_HOPS,
            "SimRng derivation chain deeper than {MAX_DERIVATION_HOPS} hops; \
             raise MAX_DERIVATION_HOPS if this is intentional"
        );
        self.hops[self.depth as usize] = (label_hash, index_mix);
        self.depth += 1;
        self
    }

    /// Replay the hop chain from the recorded root seed.
    fn derived_seed(&self) -> u64 {
        let mut seed = self.root;
        for &(label, idx) in &self.hops[..self.depth as usize] {
            seed = splitmix64(seed ^ label ^ idx);
        }
        seed
    }

    /// The root seed the chain starts from.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// Number of `stream`/`stream_indexed` hops from the root.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }
}

/// A seeded random number generator with named sub-stream derivation.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
    derivation: Derivation,
    /// Set on the first draw; [`SimRng::rebase_seed`] is only sound
    /// before it. Tracked only where the guard can fire.
    #[cfg(any(debug_assertions, feature = "validate"))]
    drawn: bool,
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng::from_derivation(Derivation::root(seed))
    }

    /// Build a generator whose seed is the replay of `derivation`. The
    /// single constructor every public path funnels through — it is what
    /// keeps the recorded chain and the actual seed in lockstep.
    fn from_derivation(derivation: Derivation) -> Self {
        let seed = derivation.derived_seed();
        // Expand the 64-bit seed into 256 bits of state with SplitMix64,
        // per the xoshiro reference implementation's seeding advice.
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            *s = splitmix64(sm);
        }
        // xoshiro must not start from the all-zero state.
        if state == [0; 4] {
            state = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        SimRng {
            seed,
            state,
            derivation,
            #[cfg(any(debug_assertions, feature = "validate"))]
            drawn: false,
        }
    }

    /// The seed this generator was derived with (for a sub-stream this is
    /// the derived seed, not the root — see [`SimRng::derivation`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The recorded derivation path (root seed + hop chain) of this
    /// stream.
    pub fn derivation(&self) -> Derivation {
        self.derivation
    }

    /// Re-derive this stream under a new root seed, replaying its
    /// recorded `stream`/`stream_indexed` hop chain from `new_root` and
    /// resetting the generator state — bit-identical to having built the
    /// same chain from `SimRng::new(new_root)` in the first place.
    ///
    /// Only sound **before the first draw**: once a stream has stepped,
    /// its state is a function of the old seed and the consumption so
    /// far, and re-deriving would silently decouple it from both. Debug
    /// and `validate` builds panic on a late rebase.
    pub fn rebase_seed(&mut self, new_root: u64) {
        #[cfg(any(debug_assertions, feature = "validate"))]
        assert!(
            !self.drawn,
            "rebase_seed on a stream that has already drawn: seed rebasing \
             is only sound before the first draw (DESIGN.md §13)"
        );
        let mut derivation = self.derivation;
        derivation.root = new_root;
        *self = SimRng::from_derivation(derivation);
    }

    /// Derive an independent sub-stream identified by `label`.
    ///
    /// Derivation depends only on the root seed and the label — not on how
    /// many values have been drawn — so call order cannot introduce
    /// cross-stream coupling.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::from_derivation(self.derivation.child(fnv1a(label.as_bytes()), 0))
    }

    /// Derive an independent sub-stream identified by a numeric index
    /// (e.g. one stream per AP).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::from_derivation(
            self.derivation
                .child(fnv1a(label.as_bytes()), splitmix64(index.wrapping_add(1))),
        )
    }

    /// Next raw 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        #[cfg(any(debug_assertions, feature = "validate"))]
        {
            self.drawn = true;
        }
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)` (`lo` if the range is empty).
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)` (`lo` if the range is empty).
    /// Uses Lemire-style rejection to avoid modulo bias.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        // Rejection sampling over the widened product.
        loop {
            let x = self.next_u64();
            let (hi_mul, lo_mul) = {
                let m = (x as u128) * (span as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo_mul >= span || lo_mul >= (u64::MAX - span + 1) % span.max(1) {
                return lo + hi_mul;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.uniform_u64(0, n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal distribution parameterised by the underlying normal's
    /// `mu` and `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Pareto distribution with scale `x_m > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(x_m > 0.0 && alpha > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        x_m / u.powf(1.0 / alpha)
    }

    /// Pick a uniformly random element of a slice. Panics on empty input.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.index(items.len())]
    }

    /// Sample an index according to (not necessarily normalised)
    /// non-negative weights. Panics if all weights are zero or the slice is
    /// empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weights must be non-empty with positive sum"
        );
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// FNV-1a hash, used for stable label-to-seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finaliser: a cheap bijective mixer with good avalanche
/// properties, used for seeding and derived-seed decorrelation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_snapshots_state() {
        let mut a = SimRng::new(3);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_order_insensitive() {
        let root = SimRng::new(7);
        // Consume from one stream; an identically labelled stream derived
        // later must be unaffected.
        let mut s1 = root.stream("mobility");
        for _ in 0..10 {
            s1.next_u64();
        }
        let mut s2 = root.stream("dhcp");
        let mut s2b = SimRng::new(7).stream("dhcp");
        for _ in 0..100 {
            assert_eq!(s2.next_u64(), s2b.next_u64());
        }
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let root = SimRng::new(99);
        let mut a = root.stream_indexed("ap", 0);
        let mut b = root.stream_indexed("ap", 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = root.stream("ap");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_u64_covers_range_uniformly() {
        let mut rng = SimRng::new(12);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.uniform_u64(0, 10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn pick_weighted_prefers_heavy_weight() {
        let mut rng = SimRng::new(8);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn derivation_replays_to_the_streams_seed() {
        let root = SimRng::new(41);
        for rng in [
            root.clone(),
            root.stream("loss"),
            root.stream_indexed("dhcp", 17),
            root.stream("a").stream_indexed("b", 3),
        ] {
            assert_eq!(rng.derivation().root_seed(), 41);
            // The recorded chain replayed from the root must land on the
            // exact seed the stream was actually built with.
            let mut rebased = rng.clone();
            rebased.rebase_seed(41);
            assert_eq!(rebased.seed(), rng.seed());
        }
    }

    #[test]
    fn rebase_matches_cold_derivation() {
        // Rebasing a chain built under root 1 onto root 2 must be
        // bit-identical to deriving the same chain from root 2 cold.
        let mut rebased = SimRng::new(1).stream_indexed("beacon-phase", 9);
        rebased.rebase_seed(2);
        let mut cold = SimRng::new(2).stream_indexed("beacon-phase", 9);
        assert_eq!(rebased.derivation(), cold.derivation());
        for _ in 0..100 {
            assert_eq!(rebased.next_u64(), cold.next_u64());
        }
    }

    #[test]
    fn rebase_resets_generator_state_before_any_draw() {
        // rebase to the *same* root is the identity on an undrawn stream.
        let reference = SimRng::new(5).stream("loss");
        let mut rebased = reference.clone();
        rebased.rebase_seed(5);
        let mut a = reference;
        let mut b = rebased;
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "validate"))]
    #[should_panic(expected = "rebase_seed on a stream that has already drawn")]
    fn rebase_after_draw_panics() {
        let mut rng = SimRng::new(3).stream("loss");
        rng.next_u64();
        rng.rebase_seed(4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn uniform_in_respects_bounds(lo in -1e6f64..1e6, span in 0.0f64..1e6, seed in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let hi = lo + span;
            let x = rng.uniform_in(lo, hi);
            prop_assert!(x >= lo);
            prop_assert!(x <= hi);
        }

        #[test]
        fn uniform_u64_respects_bounds(lo in 0u64..1000, span in 1u64..1000, seed in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let x = rng.uniform_u64(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }

        #[test]
        fn pareto_respects_scale(seed in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let x = rng.pareto(2.0, 1.5);
            prop_assert!(x >= 2.0);
        }
        }
    }
}
