//! Statistics collectors used by the evaluation harness.
//!
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford).
//! * [`Cdf`] — empirical cumulative distribution over `f64` samples; this
//!   is what every "CDF of ..." figure in the paper is built from.
//! * [`IntervalTracker`] — records when a boolean condition (e.g. "client
//!   has end-to-end connectivity") is on or off and produces the
//!   connection-duration / disruption-length distributions and the overall
//!   connectivity fraction reported in the paper's Tables 2 and 4.
//! * [`RateMeter`] — bins byte deliveries into fixed windows to produce
//!   the instantaneous-bandwidth distribution of Figure 13.

use crate::time::{SimDuration, SimTime};

/// Streaming summary statistics (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum sample (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum sample (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Create an empty distribution.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Build from a vector of samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let mut c = Cdf {
            samples,
            sorted: false,
        };
        c.ensure_sorted();
        c
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Empirical CDF value: fraction of samples `<= x` (0 if empty).
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank). `NaN` if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of all samples (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Evaluate the CDF at `n` evenly spaced points between the min and
    /// max sample, returning `(x, F(x))` pairs — the series the paper's
    /// CDF figures plot.
    pub fn series(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        if n == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                let idx = self.samples.partition_point(|&s| s <= x);
                (x, idx as f64 / self.samples.len() as f64)
            })
            .collect()
    }

    /// Access the sorted samples.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Merge all samples from another distribution.
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Tracks alternating on/off intervals of a boolean condition over
/// simulated time.
#[derive(Debug, Clone)]
pub struct IntervalTracker {
    on: bool,
    last_transition: SimTime,
    started: SimTime,
    on_durations: Vec<SimDuration>,
    off_durations: Vec<SimDuration>,
    total_on: SimDuration,
}

impl IntervalTracker {
    /// Start tracking at `start`, with the condition initially `initial`.
    pub fn new(start: SimTime, initial: bool) -> Self {
        IntervalTracker {
            on: initial,
            last_transition: start,
            started: start,
            on_durations: Vec::new(),
            off_durations: Vec::new(),
            total_on: SimDuration::ZERO,
        }
    }

    /// Report the condition's value at time `now`. Transitions close the
    /// current interval; repeated identical reports are idempotent.
    pub fn set(&mut self, now: SimTime, value: bool) {
        if value == self.on {
            return;
        }
        let span = now.saturating_since(self.last_transition);
        if self.on {
            self.on_durations.push(span);
            self.total_on += span;
        } else {
            self.off_durations.push(span);
        }
        self.on = value;
        self.last_transition = now;
    }

    /// Close the final interval at `end` and return
    /// `(on_durations, off_durations, connectivity_fraction)`.
    pub fn finish(mut self, end: SimTime) -> IntervalReport {
        let span = end.saturating_since(self.last_transition);
        if self.on {
            self.on_durations.push(span);
            self.total_on += span;
        } else if !span.is_zero() {
            self.off_durations.push(span);
        }
        let total = end.saturating_since(self.started);
        let fraction = if total.is_zero() {
            0.0
        } else {
            self.total_on / total
        };
        IntervalReport {
            on_durations: self.on_durations,
            off_durations: self.off_durations,
            on_fraction: fraction,
        }
    }

    /// Current state of the tracked condition.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

/// Result of an [`IntervalTracker`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalReport {
    /// Lengths of every maximal interval during which the condition held.
    pub on_durations: Vec<SimDuration>,
    /// Lengths of every maximal interval during which it did not.
    pub off_durations: Vec<SimDuration>,
    /// Fraction of total tracked time the condition held.
    pub on_fraction: f64,
}

impl IntervalReport {
    /// On-interval lengths in seconds, as a CDF.
    pub fn on_cdf(&self) -> Cdf {
        Cdf::from_samples(self.on_durations.iter().map(|d| d.as_secs_f64()).collect())
    }

    /// Off-interval lengths in seconds, as a CDF.
    pub fn off_cdf(&self) -> Cdf {
        Cdf::from_samples(self.off_durations.iter().map(|d| d.as_secs_f64()).collect())
    }
}

/// Bins byte deliveries into fixed windows of simulated time.
///
/// The per-window rates (for windows in which any data arrived) form the
/// "instantaneous bandwidth" distribution of the paper's Figure 13; the
/// fraction of non-empty windows is its "average connectivity" metric.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    start: SimTime,
    current_window: u64,
    current_bytes: u64,
    /// Bytes per completed window, indexed by window number.
    windows: Vec<(u64, u64)>,
    total_bytes: u64,
}

impl RateMeter {
    /// Create a meter with the given window length, starting at `start`.
    pub fn new(start: SimTime, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        RateMeter {
            window,
            start,
            current_window: 0,
            current_bytes: 0,
            windows: Vec::new(),
            total_bytes: 0,
        }
    }

    /// Record `bytes` delivered at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        let w = now.saturating_since(self.start).as_micros() / self.window.as_micros();
        if w != self.current_window {
            if self.current_bytes > 0 {
                self.windows.push((self.current_window, self.current_bytes));
            }
            self.current_window = w;
            self.current_bytes = 0;
        }
        self.current_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average throughput in bytes/second over `[start, end]`.
    pub fn average_throughput(&self, end: SimTime) -> f64 {
        let span = end.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / span
        }
    }

    /// Fraction of windows in `[start, end]` during which any data
    /// arrived — the paper's "average connectivity".
    pub fn connectivity_fraction(&self, end: SimTime) -> f64 {
        let total_windows = end.saturating_since(self.start).as_micros() / self.window.as_micros();
        if total_windows == 0 {
            return 0.0;
        }
        let mut active = self.windows.len() as u64;
        if self.current_bytes > 0 {
            active += 1;
        }
        (active as f64 / total_windows as f64).min(1.0)
    }

    /// Per-window throughput (bytes/second) for every window with data —
    /// the instantaneous-bandwidth samples of Figure 13.
    pub fn instantaneous_rates(&self) -> Vec<f64> {
        let wsecs = self.window.as_secs_f64();
        let mut rates: Vec<f64> = self
            .windows
            .iter()
            .map(|&(_, b)| b as f64 / wsecs)
            .collect();
        if self.current_bytes > 0 {
            rates.push(self.current_bytes as f64 / wsecs);
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.quantile(0.2), 1.0);
        assert!((c.fraction_le(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(10.0), 1.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let mut c = Cdf::from_samples(vec![5.0, 1.0, 3.0, 3.0, 9.0, 2.0]);
        let series = c.series(20);
        assert_eq!(series.len(), 20);
        for pair in series.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
            assert!(pair[1].0 >= pair[0].0);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn interval_tracker_splits_time() {
        let mut t = IntervalTracker::new(SimTime::ZERO, false);
        t.set(SimTime::from_secs(2), true); // 2s off
        t.set(SimTime::from_secs(5), false); // 3s on
        t.set(SimTime::from_secs(5), false); // idempotent
        t.set(SimTime::from_secs(6), true); // 1s off
        let report = t.finish(SimTime::from_secs(10)); // 4s on
        assert_eq!(
            report.on_durations,
            vec![SimDuration::from_secs(3), SimDuration::from_secs(4)]
        );
        assert_eq!(
            report.off_durations,
            vec![SimDuration::from_secs(2), SimDuration::from_secs(1)]
        );
        assert!((report.on_fraction - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rate_meter_throughput_and_connectivity() {
        let mut m = RateMeter::new(SimTime::ZERO, SimDuration::from_secs(1));
        m.record(SimTime::from_millis(100), 1000);
        m.record(SimTime::from_millis(900), 1000);
        // nothing in window 1
        m.record(SimTime::from_millis(2_500), 500);
        let end = SimTime::from_secs(4);
        assert_eq!(m.total_bytes(), 2500);
        assert!((m.average_throughput(end) - 625.0).abs() < 1e-9);
        // windows 0 and 2 active out of 4
        assert!((m.connectivity_fraction(end) - 0.5).abs() < 1e-9);
        let rates = m.instantaneous_rates();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 2000.0).abs() < 1e-9);
        assert!((rates[1] - 500.0).abs() < 1e-9);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// The empirical CDF is monotone non-decreasing in its argument.
        #[test]
        fn cdf_monotone(mut xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                        a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let mut c = Cdf::from_samples(std::mem::take(&mut xs));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.fraction_le(lo) <= c.fraction_le(hi));
        }

        /// Quantile of fraction_le(x) recovers a value <= ... sanity: for
        /// every sample s, fraction_le(s) > 0 and quantile(1.0) >= s.
        #[test]
        fn quantile_bounds(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
            let mut c = Cdf::from_samples(xs.clone());
            let top = c.quantile(1.0);
            for &s in &xs {
                prop_assert!(top >= s);
                prop_assert!(c.fraction_le(s) > 0.0);
            }
        }

        /// Interval tracker conserves time: on + off durations == total.
        #[test]
        fn interval_conservation(transitions in prop::collection::vec(1u64..1000, 0..40)) {
            let mut t = IntervalTracker::new(SimTime::ZERO, false);
            let mut now = 0u64;
            let mut state = false;
            for step in &transitions {
                now += step;
                state = !state;
                t.set(SimTime::from_millis(now), state);
            }
            let end = now + 10;
            let report = t.finish(SimTime::from_millis(end));
            let sum: u64 = report
                .on_durations
                .iter()
                .chain(report.off_durations.iter())
                .map(|d| d.as_micros())
                .sum();
            prop_assert_eq!(sum, end * 1000);
        }
        }
    }
}
