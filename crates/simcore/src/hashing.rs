//! A fast, fully deterministic hasher for simulation-internal maps.
//!
//! `std`'s default `RandomState` seeds SipHash from process entropy:
//! strong against collision flooding, but (a) needlessly slow for the
//! tiny keys the simulator hashes millions of times per run (MAC
//! addresses, ports, AP indices), and (b) *per-process* random — two
//! processes iterate the "same" map in different orders. No simulation
//! result may depend on iteration order anyway, but a fixed-seed hasher
//! turns that rule from a convention into a property of the build:
//! every run of every binary hashes, and therefore iterates,
//! identically.
//!
//! The mix function is the multiply-xor scheme popularised by the
//! Firefox/rustc "FxHash": fold each word into the state with a rotate,
//! xor, and multiply by a constant derived from the golden ratio. Keys
//! here are trusted simulation state, not attacker input, so HashDoS
//! resistance is not required.

// This is the definition site of the deterministic aliases themselves:
// the std types are re-parameterised with a fixed-seed hasher, never
// used with RandomState. lint:allow-file(default-hash)
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: 2^64 / φ, forced odd.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// The deterministic multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" + "c" and "a" + "bc" differ.
            self.add_word(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"spider"), hash_of(&"spider"));
        assert_eq!(
            hash_of(&[1u8, 2, 3, 4, 5, 6]),
            hash_of(&[1u8, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&[0u8; 6]), hash_of(&[0u8, 0, 0, 0, 0, 1]));
        // Length folding keeps different splits of the same bytes apart.
        assert_ne!(hash_of(&&b"ab"[..]), hash_of(&&b"ab\0"[..]));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<u16, u32> = FxHashMap::default();
        for i in 0..1000u16 {
            m.insert(i, u32::from(i) * 7);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&6993));
        let s: FxHashSet<u16> = m.keys().copied().collect();
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn iteration_order_is_stable_for_equal_content() {
        let build = |order: &[u16]| -> Vec<u16> {
            let mut m: FxHashMap<u16, ()> = FxHashMap::default();
            for &k in order {
                m.insert(k, ());
            }
            m.keys().copied().collect()
        };
        // Same content inserted in the same order iterates identically —
        // the property seeded reruns rely on.
        assert_eq!(build(&[3, 1, 2]), build(&[3, 1, 2]));
    }
}
