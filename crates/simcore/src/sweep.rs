//! Deterministic parallel sweep runner.
//!
//! Every `World` run in this workspace is a pure function of its
//! configuration and seed (enforced by the bit-identity rerun test in
//! `tests/chaos.rs`), which makes experiment suites embarrassingly
//! parallel: a sweep is just `jobs.iter().map(run)` where the iterations
//! share nothing. [`sweep`] evaluates that map across OS threads while
//! guaranteeing the *result vector is byte-identical to the serial path*:
//!
//! * each result is written into a pre-sized slot at its job's index, so
//!   output order is a property of the job list, never of thread
//!   scheduling;
//! * jobs are handed out through a single atomic counter (work stealing
//!   by index), so there is no partitioning heuristic to tune and tail
//!   latency is bounded by the single slowest job;
//! * the closure receives `&Job` exactly as a serial loop would — any
//!   RNG it uses must be derived per job (from the job's own seed), which
//!   is already the convention everywhere in this repo.
//!
//! Worker count comes from [`worker_count`]: the `SPIDER_JOBS` env var if
//! set, else [`std::thread::available_parallelism`]. `SPIDER_JOBS=1`
//! selects the exact serial path (no threads spawned at all), which is
//! what the determinism tests compare against.
//!
//! Only `std` is used — scoped threads, no external dependencies.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Resolve the worker count for [`sweep`].
///
/// Order of precedence:
/// 1. `SPIDER_JOBS` env var (parsed as a positive integer; `0` or
///    garbage falls through),
/// 2. [`std::thread::available_parallelism`],
/// 3. `1` if the platform cannot report parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("SPIDER_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `run` over every job, in parallel, returning results in job order.
///
/// Equivalent to `jobs.iter().map(run).collect()` — same results, same
/// order — but spread over [`worker_count`] threads. See the module docs
/// for the determinism contract.
///
/// Panics in `run` are propagated to the caller (first one observed wins;
/// remaining jobs may be skipped once a worker has panicked).
pub fn sweep<J: Sync, R: Send>(jobs: &[J], run: impl Fn(&J) -> R + Sync) -> Vec<R> {
    sweep_with(jobs, run, worker_count())
}

/// [`sweep`] with an explicit worker count (used by tests so they don't
/// have to mutate the process environment).
pub fn sweep_with<J: Sync, R: Send>(
    jobs: &[J],
    run: impl Fn(&J) -> R + Sync,
    workers: usize,
) -> Vec<R> {
    if workers <= 1 || jobs.len() <= 1 {
        // Exact serial path: no threads, no atomics.
        return jobs.iter().map(run).collect();
    }
    let workers = workers.min(jobs.len());

    // Pre-sized slots: worker i writes result k into slots[k], so the
    // final order depends only on the job list.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let next = AtomicUsize::new(0);
    let run = &run;

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            // Each worker collects (index, result) pairs and the merge
            // below writes them into their slots; job granularity is
            // whole-World runs, so the extra Vec is noise.
            handles.push(scope.spawn(|| {
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| run(&jobs[i]))) {
                        Ok(r) => out.push((i, r)),
                        Err(payload) => {
                            // Park the counter past the end so siblings
                            // stop picking up new work, then re-raise.
                            next.store(usize::MAX, Ordering::Relaxed);
                            return Err(payload);
                        }
                    }
                }
                Ok(out)
            }));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(out)) => {
                    for (i, r) in out {
                        slots[i] = Some(r);
                    }
                }
                Ok(Err(payload)) => panic = panic.or(Some(payload)),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("sweep: every job index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..257).collect();
        let run = |j: &u64| {
            // Cheap but order-sensitive work: a small deterministic hash.
            let mut x = j.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 31;
            (x, *j)
        };
        let serial = sweep_with(&jobs, run, 1);
        for workers in [2, 3, 4, 7, 16] {
            assert_eq!(serial, sweep_with(&jobs, run, workers));
        }
    }

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<usize> = (0..64).rev().collect();
        let out = sweep_with(&jobs, |j| *j, 4);
        assert_eq!(out, jobs);
    }

    #[test]
    fn many_tiny_jobs_stress_worker_handoff() {
        // Thousands of near-empty jobs: the atomic handoff dominates, so
        // any double-claim or lost index shows up as a wrong slot.
        let jobs: Vec<u32> = (0..10_000).collect();
        let out = sweep_with(&jobs, |j| j + 1, 8);
        assert_eq!(out.len(), jobs.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        let none: Vec<u8> = Vec::new();
        assert!(sweep_with(&none, |j| *j, 4).is_empty());
        assert_eq!(sweep_with(&[9u8], |j| *j, 4), vec![9]);
    }

    #[test]
    fn panic_in_job_propagates() {
        let jobs: Vec<u32> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep_with(
                &jobs,
                |j| {
                    if *j == 37 {
                        panic!("job 37 failed");
                    }
                    *j
                },
                4,
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(worker_count() >= 1);
    }
}
